//! Online-adaptation baseline: closes the drive-cycle train/serve gap that
//! `scenario_baseline` exposed, and records the receipts.
//!
//! The flow mirrors production: the lab-trained demo serving model runs a
//! closed-loop `drifting-fleet` session (aged mixed-EV fleet, mid-run cold
//! snap) while a `pinnsoc-adapt` [`AdaptationEngine`] rides along as a
//! fleet observer — harvesting EKF-labeled windows, detecting drift,
//! fine-tuning candidates in the background, and hot-swapping the gate
//! winner mid-session. The frozen lab model and the adapted model are then
//! both scored on **held-out** drive-cycle scenarios (same specs, different
//! fleet seeds), and the adapted network's MAE must be strictly below the
//! frozen network's on every one.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin adapt_baseline` to
//! regenerate `BENCH_adapt.json`. Pass `--smoke` for the CI-sized gate:
//! shrunken fleets and epochs, the same end-to-end loop and the same
//! adapted-beats-frozen assertions, the adaptation session asserted
//! **bit-identical** between worker counts 0 and 2, and no file written.

use pinnsoc::SocModel;
use pinnsoc_adapt::{
    AdaptEvent, AdaptReport, AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig,
    HarvestConfig,
};
use pinnsoc_bench::{demo_serving_model, demo_training_dataset, host_info, HostInfo};
use pinnsoc_scenario::{
    gate_suite, run_scenario_observed, standard_suite, EngineSpec, Scenario, ScenarioRunner,
};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

/// Suite seed — keep stable across PRs so the recorded numbers stay
/// comparable (same seed as `scenario_baseline`).
const SUITE_SEED: u64 = 42;
/// Offset for the held-out scoring fleets: same scenario specs, fleets the
/// adaptation session never saw.
const HELD_OUT_OFFSET: u64 = 1000;

/// The drive-cycle scenarios the adapted model is judged on.
const DRIVE_SCENARIOS: [&str; 4] = [
    "drive-udds",
    "drive-us06-hot",
    "ev-mixed-random",
    "drifting-fleet",
];

#[derive(Debug, Serialize)]
struct ScenarioComparison {
    name: String,
    frozen_network_mae: f64,
    adapted_network_mae: f64,
    frozen_best_mae: f64,
    adapted_best_mae: f64,
    ekf_mae: f64,
    network_improvement_pct: f64,
}

#[derive(Debug, Serialize)]
struct AdaptationSession {
    scenario: String,
    promoted_label: String,
    report: AdaptReport,
    events: Vec<AdaptEvent>,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    suite_seed: u64,
    held_out_seed_offset: u64,
    /// Worker counts whose full adaptation sessions were compared
    /// bit-for-bit.
    determinism_checked_workers: [usize; 2],
    host: HostInfo,
    session: AdaptationSession,
    scenarios: Vec<ScenarioComparison>,
}

/// The closed-loop session scenario: `drifting-fleet` from the standard
/// suite (aged mixed-EV fleet), with the ambient widened to a hot-to-cold
/// sweep — a production fleet harvests across its whole operating envelope,
/// not one cabin temperature, and the adapted model is judged on held-out
/// scenarios spanning that envelope. Shrunk in smoke mode.
fn session_scenario(smoke: bool) -> Scenario {
    let mut scenario = standard_suite(SUITE_SEED)
        .into_iter()
        .find(|s| s.name == "drifting-fleet")
        .expect("standard suite carries the drift scenario");
    scenario.environment = pinnsoc_scenario::EnvSchedule::Ramp {
        from_c: 40.0,
        to_c: -5.0,
    };
    if smoke {
        scenario.population.cells = 8;
        scenario.timing.duration_s = 600.0;
    }
    scenario
}

/// Held-out drive-cycle scenarios for frozen-vs-adapted scoring.
fn scoring_suite(smoke: bool) -> Vec<Scenario> {
    standard_suite(SUITE_SEED.wrapping_add(HELD_OUT_OFFSET))
        .into_iter()
        .filter(|s| DRIVE_SCENARIOS.contains(&s.name.as_str()))
        .map(|mut s| {
            if smoke {
                s.population.cells = 8;
                s.timing.duration_s = 300.0;
            }
            s
        })
        .collect()
}

fn adaptation_config(smoke: bool, workers: usize) -> AdaptationConfig {
    let gate = gate_suite(SUITE_SEED)
        .into_iter()
        .map(|mut s| {
            if smoke {
                s.population.cells = 4;
                s.timing.duration_s = 120.0;
            }
            s
        })
        .collect();
    AdaptationConfig {
        drift: DriftConfig {
            window: 256,
            threshold: 0.08,
            min_samples: 64,
        },
        harvest: HarvestConfig {
            reservoir_capacity: 2048,
            seed: SUITE_SEED,
            min_dt_s: 2.0,
            rated_capacity_ah: 3.0,
            ..HarvestConfig::default()
        },
        fine_tune: pinnsoc::TrainConfig {
            b1_epochs: if smoke { 30 } else { 40 },
            b2_epochs: 0, // harvested windows carry no horizon labels
            batch_size: 64,
            learning_rate: 1e-3,
            ..pinnsoc::TrainConfig::sandia(pinnsoc::PinnVariant::NoPinn, 0)
        },
        candidate_seeds: vec![1, 2],
        gate: GateConfig {
            suite: gate,
            runner_workers: workers,
            engine: EngineSpec {
                shards: 2,
                micro_batch: 32,
                workers,
            },
            min_improvement: 0.0,
        },
        train_workers: workers,
        lab_cycles: 4,
        min_reservoir: if smoke { 64 } else { 256 },
        // Short enough for several rounds per session: each later round
        // fine-tunes on a fuller reservoir and must beat the previous
        // promotion at the gate to swap again.
        cooldown_ticks: if smoke { 10 } else { 25 },
        quantize: None,
    }
}

/// Runs the full adaptation session at one worker count and returns the
/// engine (promoted model, report, events inside).
fn run_session(smoke: bool, workers: usize, model: &SocModel) -> AdaptationEngine {
    let lab = Arc::new(demo_training_dataset());
    let mut adapt = AdaptationEngine::new(adaptation_config(smoke, workers), lab);
    let scenario = session_scenario(smoke);
    run_scenario_observed(
        &scenario,
        model,
        &EngineSpec {
            shards: 4,
            micro_batch: 64,
            workers,
        },
        &mut adapt,
    );
    adapt
}

/// JSON fingerprint of everything deterministic about a session.
fn session_fingerprint(adapt: &AdaptationEngine) -> String {
    let promoted = adapt
        .promoted()
        .map(|m| serde_json::to_string(&**m).expect("serializable"))
        .unwrap_or_default();
    let events = serde_json::to_string(&adapt.events().to_vec()).expect("serializable");
    let report = serde_json::to_string(&adapt.report()).expect("serializable");
    format!("{promoted}|{events}|{report}")
}

fn score(suite: &[Scenario], model: &SocModel) -> Vec<pinnsoc_scenario::ScenarioResult> {
    ScenarioRunner {
        workers: 2,
        ..ScenarioRunner::default()
    }
    .run(suite, model)
    .report
    .scenarios
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let workers = [0usize, 2];
    println!(
        "training the frozen lab model ({})...",
        if smoke { "smoke size" } else { "full size" }
    );
    let frozen = demo_serving_model(smoke);

    // The adaptation session, twice: the loop's determinism contract says
    // worker counts change throughput, never results.
    println!("running the closed-loop adaptation session (workers {workers:?})...");
    let fingerprint0 = session_fingerprint(&run_session(smoke, workers[0], &frozen));
    let adapt = run_session(smoke, workers[1], &frozen);
    assert_eq!(
        fingerprint0,
        session_fingerprint(&adapt),
        "adaptation session must be bit-identical across worker counts {workers:?}"
    );
    println!("determinism check OK: workers {workers:?} produced bit-identical sessions");

    let report = adapt.report();
    println!(
        "session: {} ticks, {} windows harvested, {} trigger(s), {} gate pass(es), {} swap(s)",
        report.ticks_observed,
        report.harvest.harvested,
        report.triggers,
        report.gate_passes,
        report.swaps
    );
    assert!(
        report.swaps >= 1,
        "the drifting session must promote at least one adapted model"
    );
    let adapted = Arc::clone(adapt.promoted().expect("swaps >= 1"));

    // Frozen vs adapted on held-out drive-cycle fleets.
    println!("scoring frozen vs adapted on held-out drive scenarios...");
    let suite = scoring_suite(smoke);
    let frozen_results = score(&suite, &frozen);
    let adapted_results = score(&suite, &adapted);
    let mut comparisons = Vec::new();
    println!(
        "\n{:<18} {:>12} {:>12} {:>9} {:>12}",
        "scenario", "frozen net", "adapted net", "ekf", "improvement"
    );
    for (f, a) in frozen_results.iter().zip(&adapted_results) {
        let improvement = 100.0 * (f.network.mae - a.network.mae) / f.network.mae;
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>9.4} {:>11.1}%",
            f.name, f.network.mae, a.network.mae, f.ekf.mae, improvement
        );
        assert!(
            a.network.mae < f.network.mae,
            "{}: adapted network MAE {} must be strictly below frozen {}",
            f.name,
            a.network.mae,
            f.network.mae
        );
        comparisons.push(ScenarioComparison {
            name: f.name.clone(),
            frozen_network_mae: f.network.mae,
            adapted_network_mae: a.network.mae,
            frozen_best_mae: f.best.mae,
            adapted_best_mae: a.best.mae,
            ekf_mae: f.ekf.mae,
            network_improvement_pct: improvement,
        });
    }

    if smoke {
        println!("\nsmoke run OK (BENCH_adapt.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Closed-loop online adaptation: a drifting-fleet session harvests \
                      EKF-labeled windows from a live FleetEngine, fine-tunes warm-started \
                      candidates on the shared worker pool, gates them on closed-loop \
                      scenarios, and hot-swaps the winner; frozen vs adapted network SoC MAE \
                      on held-out drive-cycle fleets"
            .into(),
        model: "two-branch PINN-All (2,322 params), Sandia-reduced training, seed 7".into(),
        suite_seed: SUITE_SEED,
        held_out_seed_offset: HELD_OUT_OFFSET,
        determinism_checked_workers: workers,
        host: host_info(workers[1]),
        session: AdaptationSession {
            scenario: session_scenario(false).name,
            promoted_label: adapted.label.clone(),
            report,
            events: adapt.events().to_vec(),
        },
        scenarios: comparisons,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adapt.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_adapt.json");
    println!("\nwrote BENCH_adapt.json");
}
