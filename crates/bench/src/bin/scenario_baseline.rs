//! Closed-loop scenario baseline: runs the standard validation suite
//! (ground-truth simulators feeding a live fleet engine through fault
//! channels) and writes per-scenario accuracy and throughput to
//! `BENCH_scenarios.json` at the workspace root.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin scenario_baseline`.
//! Pass `--smoke` for the CI-sized gate: the smoke suite runs end to end,
//! and the report is asserted **bit-identical** between runner worker
//! counts 0 and 2 (the suite's determinism contract) without touching
//! `BENCH_scenarios.json`. The full run performs the same determinism check
//! before writing the file.

use pinnsoc_bench::{demo_serving_model, host_info, HostInfo};
use pinnsoc_scenario::{smoke_suite, standard_suite, Scenario, ScenarioRunner, SuiteRun};
use serde::Serialize;
use std::path::Path;

/// Suite seed — keep stable across PRs so the recorded accuracy numbers
/// stay comparable.
const SUITE_SEED: u64 = 42;

#[derive(Debug, Serialize)]
struct ScenarioBench {
    result: pinnsoc_scenario::ScenarioResult,
    wall_s: f64,
    cell_ticks_per_s: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    suite_seed: u64,
    /// Runner worker counts whose reports were compared bit-for-bit.
    determinism_checked_workers: [usize; 2],
    host: HostInfo,
    scenarios: Vec<ScenarioBench>,
}

/// Runs the suite at two worker counts and asserts the deterministic
/// reports are bit-identical; returns the second run (whose timings are
/// the ones recorded).
fn run_with_determinism_check(
    suite: &[Scenario],
    model: &pinnsoc::SocModel,
    workers: [usize; 2],
) -> SuiteRun {
    let mut json: Vec<String> = Vec::new();
    let mut last = None;
    for &w in &workers {
        let run = ScenarioRunner {
            workers: w,
            ..ScenarioRunner::default()
        }
        .run(suite, model);
        json.push(serde_json::to_string(&run.report).expect("serializable"));
        last = Some(run);
    }
    assert_eq!(
        json[0], json[1],
        "ScenarioReport must be bit-identical across worker counts {workers:?}"
    );
    println!(
        "determinism check OK: workers {:?} produced bit-identical reports",
        workers
    );
    last.expect("two runs")
}

fn print_table(run: &SuiteRun) {
    println!(
        "\n{:<20} {:>9} {:>9} {:>9} {:>9} {:>10} {:>11} {:>10}",
        "scenario",
        "best MAE",
        "net MAE",
        "clmb MAE",
        "ekf MAE",
        "tte err s",
        "rejected",
        "kcell-t/s"
    );
    for (r, t) in run.report.scenarios.iter().zip(&run.timings) {
        println!(
            "{:<20} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.1} {:>11} {:>10.1}",
            r.name,
            r.best.mae,
            r.network.mae,
            r.coulomb.mae,
            r.ekf.mae,
            r.time_to_empty.mean_abs_error_s,
            r.telemetry.rejected(),
            t.cell_ticks_per_s / 1e3,
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let workers = [0usize, 2];
    println!(
        "training the serving model ({})...",
        if smoke { "smoke size" } else { "full size" }
    );
    let model = demo_serving_model(smoke);

    if smoke {
        let suite = smoke_suite(SUITE_SEED);
        let run = run_with_determinism_check(&suite, &model, workers);
        for r in &run.report.scenarios {
            assert!(
                r.ticks > 0 && r.best.count > 0,
                "{}: scored nothing",
                r.name
            );
            assert!(
                r.best.mae.is_finite() && r.best.max_abs <= 1.0 + 1e-12,
                "{}: implausible accuracy",
                r.name
            );
        }
        print_table(&run);
        println!("\nsmoke run OK (BENCH_scenarios.json untouched)");
        return;
    }

    let suite = standard_suite(SUITE_SEED);
    let run = run_with_determinism_check(&suite, &model, workers);
    print_table(&run);

    let SuiteRun { report, timings } = run;
    let scenarios = report
        .scenarios
        .into_iter()
        .zip(timings)
        .map(|(result, timing)| ScenarioBench {
            wall_s: timing.wall_s,
            cell_ticks_per_s: timing.cell_ticks_per_s,
            result,
        })
        .collect();
    let baseline = Baseline {
        description: "Closed-loop validation: ground-truth CellSim fleets feed a live \
                      FleetEngine through seeded fault channels; per-estimator SoC MAE vs \
                      simulator truth, time-to-empty error, and engine telemetry accounting \
                      per scenario"
            .into(),
        model: "two-branch PINN-All (2,322 params), Sandia-reduced training, seed 7".into(),
        suite_seed: SUITE_SEED,
        determinism_checked_workers: workers,
        host: host_info(workers[1]),
        scenarios,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scenarios.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_scenarios.json");
    println!("\nwrote BENCH_scenarios.json");
}
