//! Serve-tier latency baseline: ingest-to-estimate percentiles under
//! three traffic shapes, reader non-interference, and topology
//! bit-identity for the multi-engine deployment layer (`pinnsoc-serve`).
//!
//! Five checks, mirroring the tier's contract:
//!
//! 1. **Ingest-to-estimate latency** — producers enqueue telemetry on the
//!    lock-free per-engine rings; each frame's latency runs from its
//!    enqueue to the tick's snapshot publish. Measured as p50/p99 under
//!    *steady* (one report per cell per tick), *bursty* (3× bursts
//!    alternating with idle ticks), and *adversarial* traffic (every
//!    report routed through a `pinnsoc_scenario` [`FaultChannel`]:
//!    sensor noise, dropouts, duplicates, reordering, NaN injection).
//!    The p99 must stay under an absolute budget.
//! 2. **Backpressure accounting** — across every shape, ring-refused
//!    frames (explicit backpressure, never silent drops) plus drained
//!    frames must equal the frames offered.
//! 3. **Reader non-interference** — the same tick sequence is timed with
//!    zero and then a core-scaled set of snapshot-reader threads running
//!    dashboard-rate histogram / threshold / per-cell queries; the
//!    readers-on median tick must stay within noise of readers-off,
//!    because readers only clone an `Arc` and query off-lock.
//! 4. **Topology bit-identity** — identical traffic through different
//!    engine counts, per-engine shard counts, and worker counts must
//!    produce bit-identical snapshots.
//! 5. **SLO alerting cycle** — the tier's burn-rate SLO engine is driven
//!    through healthy traffic, a sustained backpressure flood, and
//!    recovery; the delivery SLO must page during the flood and drain
//!    back to ok, and the full transition log lands in the output's
//!    `slo` block.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin serve_baseline`
//! to regenerate `BENCH_serve.json` (router engine count and ring
//! capacity are stamped next to the host metadata). Pass `--smoke` for
//! the CI-sized gate: same assertions, smaller fleet, no file written.

use pinnsoc_bench::{host_info, HostInfo};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, Telemetry};
use pinnsoc_obs::{AlertState, ObsHub, SloSpec};
use pinnsoc_scenario::{FaultChannel, FaultModel};
use pinnsoc_serve::{ServeConfig, ServeTier, SloConfig, SloReport};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engines the latency tiers shard across (the acceptance floor is 2).
const ENGINES: usize = 4;
/// Per-engine fleet shards.
const SHARDS: usize = 8;
/// Absolute ingest-to-estimate p99 budget, seconds. Generous: the bound
/// exists to catch pathologies (a blocked tick loop, an unbounded drain),
/// not to race the hardware.
const P99_BUDGET_S: f64 = 1.0;
const P99_BUDGET_SMOKE_S: f64 = 0.25;
/// Reader overhead budget on the median tick, plus an absolute noise
/// floor under which scheduler jitter dominates.
const MAX_READER_OVERHEAD_FRAC: f64 = 0.20;
const NOISE_FLOOR_S: f64 = 1e-3;

#[derive(Debug, Serialize)]
struct ShapeLatency {
    shape: &'static str,
    ticks: usize,
    frames_offered: usize,
    frames_drained: usize,
    backpressure: u64,
    accepted: u64,
    rejected: u64,
    p50_s: f64,
    p99_s: f64,
    max_s: f64,
}

#[derive(Debug, Serialize)]
struct ReaderContention {
    ticks: usize,
    readers: usize,
    reader_queries: u64,
    readers_off_median_tick_s: f64,
    readers_on_median_tick_s: f64,
    overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    host: HostInfo,
    /// Router shard (engine) count the latency tiers ran with.
    router_engines: usize,
    /// Ingest ring slots per engine.
    ring_capacity: usize,
    cells: usize,
    p99_budget_s: f64,
    shapes: Vec<ShapeLatency>,
    reader_contention: ReaderContention,
    topology_bit_identical: bool,
    /// SLO engine summary from the healthy → flood → recovery session:
    /// window configuration, worst burn rates, and every alert
    /// transition.
    slo: SloReport,
}

fn telemetry(step: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: step as f64 * 10.0,
        voltage_v: 3.5 + 0.01 * ((id % 7) as f64) + 0.001 * (step as f64),
        current_a: 0.8 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn build_tier(cells: usize, engines: usize, ring_capacity: usize) -> ServeTier {
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines,
            ring_capacity,
            fleet: FleetConfig {
                shards: SHARDS,
                micro_batch: 512,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
            durability: None,
        },
    )
    .expect("plain tier never does IO");
    for id in 0..cells as u64 {
        tier.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    tier
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drives one traffic shape through a fresh tier and folds every tick's
/// per-frame latencies into percentiles.
fn run_shape(
    shape: &'static str,
    cells: usize,
    ring_capacity: usize,
    ticks: usize,
    mut produce: impl FnMut(&pinnsoc_serve::IngestHandle, usize) -> usize,
) -> ShapeLatency {
    let mut tier = build_tier(cells, ENGINES, ring_capacity);
    let handle = tier.handle();
    let mut latencies: Vec<f64> = Vec::new();
    let mut offered = 0usize;
    let mut drained = 0usize;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for tick in 0..ticks {
        offered += produce(&handle, tick);
        let report = tier.tick().expect("plain tick");
        drained += report.drained;
        accepted += report.telemetry.accepted;
        rejected += report.telemetry.rejected();
        latencies.extend_from_slice(&report.latencies_s);
    }
    let backpressure = tier.backpressure_total();
    assert_eq!(
        drained as u64 + backpressure,
        offered as u64,
        "{shape}: offered frames must reconcile as drained + backpressure"
    );
    latencies.sort_by(f64::total_cmp);
    let result = ShapeLatency {
        shape,
        ticks,
        frames_offered: offered,
        frames_drained: drained,
        backpressure,
        accepted,
        rejected,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        max_s: *latencies.last().expect("at least one frame"),
    };
    println!(
        "  {shape:<12} {} frames | p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms | backpressure {}",
        result.frames_drained,
        result.p50_s * 1e3,
        result.p99_s * 1e3,
        result.max_s * 1e3,
        result.backpressure,
    );
    result
}

fn latency_shapes(cells: usize, ring_capacity: usize, smoke: bool) -> Vec<ShapeLatency> {
    let ticks = if smoke { 8 } else { 16 };
    println!("latency: {cells} cells across {ENGINES} engines, {ticks} ticks per shape...");

    let steady = run_shape("steady", cells, ring_capacity, ticks, |handle, tick| {
        for id in 0..cells as u64 {
            handle.ingest(id, telemetry(tick as u64 + 1, id));
        }
        cells
    });

    // Bursty: every fourth tick delivers a 3-report burst per cell
    // (monotonic timestamps within the burst); the rest are idle.
    let mut step = 0u64;
    let bursty = run_shape(
        "bursty",
        cells,
        ring_capacity,
        ticks,
        move |handle, tick| {
            if tick % 4 != 0 {
                return 0;
            }
            let mut offered = 0;
            for burst in 0..3u64 {
                let _ = burst;
                step += 1;
                for id in 0..cells as u64 {
                    handle.ingest(id, telemetry(step, id));
                }
                offered += cells;
            }
            offered
        },
    );

    // Adversarial: every report crosses a per-cell fault channel — noise,
    // dropouts, duplicates, reordering, clock jitter, NaN injection. The
    // engines' absorb accounting (not the latency path) sorts the mess.
    let model = FaultModel {
        dropout: 0.02,
        duplicate: 0.03,
        reorder: 0.05,
        clock_jitter_s: 0.5,
        non_finite: 0.01,
        ..FaultModel::sensor_noise()
    };
    let mut channels: Vec<FaultChannel> = (0..cells as u64)
        .map(|id| FaultChannel::new(model, 0x5E47E ^ id))
        .collect();
    let mut out: Vec<Telemetry> = Vec::new();
    let adversarial = run_shape(
        "adversarial",
        cells,
        ring_capacity,
        ticks,
        move |handle, tick| {
            let mut offered = 0;
            for id in 0..cells as u64 {
                out.clear();
                channels[id as usize].transmit(telemetry(tick as u64 + 1, id), &mut out);
                for faulted in out.drain(..) {
                    handle.ingest(id, faulted);
                    offered += 1;
                }
            }
            offered
        },
    );
    assert!(
        adversarial.rejected > 0,
        "the adversarial channel should trip engine-side rejections"
    );

    vec![steady, bursty, adversarial]
}

/// Readers-on vs readers-off tick timing over identical traffic.
///
/// Readers run full-scan queries (histogram, threshold scan, point
/// lookup) on their pinned snapshot, throttled to a dashboard-like rate
/// (one round per 25 ms each). The throttle keeps the measurement about
/// *blocking* — a reader holding the publish lock through its scans
/// would stall ticks even at this rate — rather than about raw core
/// time-slicing, which on a small host any concurrent thread loses.
/// Reader count scales to the spare cores, floor one.
fn reader_contention_check(cells: usize, ring_capacity: usize, smoke: bool) -> ReaderContention {
    let ticks = if smoke { 9 } else { 21 };
    let reader_threads = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .saturating_sub(1)
        .clamp(1, 4);
    println!("reader contention: {ticks} timed ticks, 0 vs {reader_threads} reader threads...");

    let run = |readers: usize| -> (Vec<f64>, u64) {
        let mut tier = build_tier(cells, ENGINES, ring_capacity);
        let handle = tier.handle();
        let reader = tier.reader();
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..readers)
            .map(|_| {
                let reader = reader.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut queries = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = reader.snapshot();
                        std::hint::black_box(snapshot.soc_histogram(32));
                        std::hint::black_box(snapshot.cells_below(0.5));
                        std::hint::black_box(snapshot.breakdown(queries % cells as u64));
                        queries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(25));
                    }
                    queries
                })
            })
            .collect();

        // One warm-up tick, then the timed run.
        for id in 0..cells as u64 {
            handle.ingest(id, telemetry(1, id));
        }
        tier.tick().expect("warm-up");
        let mut samples = Vec::with_capacity(ticks);
        for tick in 0..ticks {
            for id in 0..cells as u64 {
                handle.ingest(id, telemetry(tick as u64 + 2, id));
            }
            let start = Instant::now();
            tier.tick().expect("timed tick");
            samples.push(start.elapsed().as_secs_f64());
        }
        stop.store(true, Ordering::Relaxed);
        let queries = threads
            .into_iter()
            .map(|t| t.join().expect("reader thread"))
            .sum();
        (samples, queries)
    };

    let (mut off, _) = run(0);
    let (mut on, queries) = run(reader_threads);
    off.sort_by(f64::total_cmp);
    on.sort_by(f64::total_cmp);
    let off_median = off[off.len() / 2];
    let on_median = on[on.len() / 2];
    let overhead = (on_median - off_median) / off_median;
    println!(
        "  off {:.3} ms | on {:.3} ms ({:+.2}%) | {queries} reader queries",
        off_median * 1e3,
        on_median * 1e3,
        overhead * 100.0,
    );
    assert!(
        queries > 0,
        "readers must actually have queried while ticking"
    );
    assert!(
        overhead < MAX_READER_OVERHEAD_FRAC || (on_median - off_median) < NOISE_FLOOR_S,
        "snapshot readers slowed the tick loop by {:.2}% ({:.3} ms vs {:.3} ms) — \
         reads are contending with ticks",
        overhead * 100.0,
        on_median * 1e3,
        off_median * 1e3,
    );
    ReaderContention {
        ticks,
        readers: reader_threads,
        reader_queries: queries,
        readers_off_median_tick_s: off_median,
        readers_on_median_tick_s: on_median,
        overhead_pct: overhead * 100.0,
    }
}

/// Drives the SLO engine through a full alerting cycle — healthy traffic,
/// a sustained backpressure flood (several ring-loads offered per tick,
/// so most frames are refused), then recovery — and returns the tier's
/// end-of-run SLO summary. The delivery SLO must escalate to `page`
/// during the flood and drain back to `ok` with slow-window hysteresis.
fn slo_session(cells: usize, ring_capacity: usize) -> SloReport {
    // Short windows so the cycle resolves in bench-sized tick counts.
    let fast = 2;
    let slow = 8;
    println!(
        "slo session: healthy -> backpressure flood -> recovery ({fast}/{slow}-tick windows)..."
    );
    let mut tier = build_tier(cells, ENGINES, ring_capacity);
    let hub = ObsHub::new();
    tier.attach_obs(&hub);
    tier.attach_slo(
        &hub,
        SloConfig {
            latency_threshold_s: 0.5,
            latency: SloSpec {
                fast_window: fast,
                slow_window: slow,
                ..SloSpec::latency_default()
            },
            delivery: SloSpec {
                fast_window: fast,
                slow_window: slow,
                ..SloSpec::delivery_default()
            },
        },
    );
    let handle = tier.handle();
    let mut step = 0u64;
    let mut drive = |tier: &mut ServeTier, ticks: usize, bursts: u64| {
        for _ in 0..ticks {
            for _ in 0..bursts {
                step += 1;
                for id in 0..cells as u64 {
                    handle.ingest(id, telemetry(step, id));
                }
            }
            tier.tick().expect("plain tick");
        }
    };
    // Enough ring-loads per tick that most offered frames are refused.
    let flood_bursts = (2 * ring_capacity as u64 * ENGINES as u64 / cells as u64).max(2);
    drive(&mut tier, 6, 1);
    drive(&mut tier, 6, flood_bursts);
    drive(&mut tier, 2 * slow, 1);

    let report = tier.slo_report().expect("slo attached");
    let delivery = report
        .slos
        .iter()
        .find(|s| s.spec.name == "delivery")
        .expect("delivery slo");
    assert!(
        delivery
            .transitions
            .iter()
            .any(|t| t.to == AlertState::Page),
        "the backpressure flood must page the delivery SLO"
    );
    assert_eq!(
        delivery.final_state,
        AlertState::Ok,
        "recovery ticks must drain the delivery SLO back to ok"
    );
    assert!(delivery.worst_fast_burn > delivery.spec.page_burn);
    println!(
        "  delivery: {} transition(s), worst fast burn {:.1}, final {}",
        delivery.transitions.len(),
        delivery.worst_fast_burn,
        delivery.final_state.as_str(),
    );
    report
}

/// Identical traffic through three tier topologies must produce
/// bit-identical snapshots.
fn topology_bit_identity_check() {
    const CELLS: u64 = 2_000;
    const TICKS: u64 = 6;
    println!("topology bit-identity: {CELLS} cells, engines/shards/workers varied...");

    let run = |engines: usize, shards: usize, workers: usize| -> Vec<(u64, u64)> {
        let mut tier = ServeTier::new(
            untrained_model(),
            ServeConfig {
                engines,
                ring_capacity: 2 * CELLS as usize,
                fleet: FleetConfig {
                    shards,
                    micro_batch: 64,
                    workers,
                    ekf_fallback: None,
                    ..FleetConfig::default()
                },
                durability: None,
            },
        )
        .expect("plain tier");
        for id in 0..CELLS {
            tier.register(
                id,
                CellConfig {
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            );
        }
        let handle = tier.handle();
        for tick in 1..=TICKS {
            for id in 0..CELLS {
                assert!(handle.ingest(id, telemetry(tick, id)).enqueued());
            }
            tier.tick().expect("tick");
        }
        let snapshot = tier.reader().snapshot();
        assert_eq!(snapshot.cells.len() as u64, CELLS);
        snapshot
            .cells
            .iter()
            .map(|(id, b)| (*id, b.best.0.to_bits()))
            .collect()
    };

    let reference = run(2, 3, 0);
    for (engines, shards, workers) in [(1, 8, 0), (3, 2, 2)] {
        assert_eq!(
            run(engines, shards, workers),
            reference,
            "{engines} engines / {shards} shards / {workers} workers diverged"
        );
    }
    println!("  OK: snapshots bit-identical across 3 topologies");
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let cells = if smoke { 4_000 } else { 100_000 };
    let ring_capacity = if smoke { 1 << 13 } else { 1 << 17 };
    let budget = if smoke {
        P99_BUDGET_SMOKE_S
    } else {
        P99_BUDGET_S
    };

    let shapes = latency_shapes(cells, ring_capacity, smoke);
    for shape in &shapes {
        assert!(
            shape.p99_s < budget,
            "{}: p99 ingest-to-estimate {:.1} ms blows the {:.0} ms budget",
            shape.shape,
            shape.p99_s * 1e3,
            budget * 1e3,
        );
    }
    let reader_contention = reader_contention_check(cells, ring_capacity, smoke);
    topology_bit_identity_check();
    let slo = slo_session(cells, ring_capacity);

    if smoke {
        println!("\nsmoke run OK (BENCH_serve.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Serve-tier deployment baseline: ingest-to-estimate latency \
                      percentiles (producer ring enqueue to snapshot publish) under \
                      steady, bursty, and fault-channel adversarial traffic across a \
                      rendezvous-routed multi-engine tier; snapshot readers timed \
                      against the tick loop (must be non-interfering); snapshots \
                      bit-identical across engine/shard/worker topologies; plus the \
                      SLO engine driven through a healthy -> backpressure-flood -> \
                      recovery alerting cycle"
            .into(),
        host: host_info(0),
        router_engines: ENGINES,
        ring_capacity,
        cells,
        p99_budget_s: budget,
        shapes,
        reader_contention,
        topology_bit_identical: true,
        slo,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
