//! Fig. 5 — autoregressive full-discharge prediction on the LG test cycles
//! at 25 °C: Branch 1 runs once at t = 0, then the second stage chains
//! forward to the end of the cycle. Voltage is never consulted after the
//! first sample.
//!
//! Paper reference points: No-PINN drifts badly on 3 of 4 cycles (mean
//! final SoC 0.234 against a ground truth of ≈0); Physics-Only consistently
//! worst in level but right in shape; the best PINN reaches a mean final
//! SoC error of 0.089.
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin fig5_rollout
//! ```

use pinnsoc::{autoregressive_rollout, train, PinnVariant, Rollout, TrainConfig};
use pinnsoc_bench::{mean, write_results_json};
use pinnsoc_data::{generate_lg, LgConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct CycleTrace {
    cycle: String,
    rollouts: Vec<Rollout>,
}

fn main() {
    println!("=== Fig. 5: autoregressive full-discharge prediction (LG, 25 °C) ===\n");
    let lg = generate_lg(&LgConfig::default());

    // Each configuration rolls at its best single-step horizon (Fig. 4):
    // 30 s for everything on this dataset, matching the paper's choice for
    // No-PINN / Physics-Only / PINN-30s; the other PINNs use their own Np.
    let variants: Vec<(PinnVariant, f64)> = vec![
        (PinnVariant::NoPinn, 30.0),
        (PinnVariant::PhysicsOnly, 30.0),
        (PinnVariant::pinn_single(30.0), 30.0),
        (PinnVariant::pinn_single(50.0), 50.0),
        (PinnVariant::pinn_single(70.0), 70.0),
        (PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), 30.0),
    ];

    // Autoregressive drift amplifies per-step bias by hundreds of steps, so
    // single-seed final errors are noisy; average over several seeds (the
    // JSON traces keep seed 0 for plotting).
    let seeds: [u64; 3] = [0, 1, 2];
    println!("training the six configurations x {} seeds...", seeds.len());
    let test_cycles: Vec<_> = lg.test_at_temperature(25.0).into_iter().cloned().collect();
    let mut traces = Vec::new();
    let mut final_errors: Vec<(String, Vec<f64>)> = variants
        .iter()
        .map(|(v, _)| (v.to_string(), Vec::new()))
        .collect();

    for &seed in &seeds {
        let models: Vec<_> = variants
            .iter()
            .map(|(v, step)| {
                let (model, _) = train(&lg, &TrainConfig::lg(v.clone(), seed));
                (model, *step)
            })
            .collect();
        if seed == seeds[0] {
            println!(
                "\n{:<12} {:>12} {:>12} {:>12} {:>9}  (seed {seed})",
                "cycle", "model", "final SoC", "final err", "traj MAE"
            );
            println!("{}", "-".repeat(64));
        }
        for cycle in &test_cycles {
            let mut rollouts = Vec::new();
            for (k, (model, step)) in models.iter().enumerate() {
                let r = autoregressive_rollout(model, cycle, *step);
                if seed == seeds[0] {
                    println!(
                        "{:<12} {:>12} {:>12.3} {:>12.3} {:>9.3}",
                        cycle.meta.kind.to_string(),
                        model.label,
                        r.predicted.last().unwrap(),
                        r.final_error(),
                        r.trajectory_mae()
                    );
                }
                final_errors[k].1.push(r.final_error());
                rollouts.push(r);
            }
            if seed == seeds[0] {
                traces.push(CycleTrace {
                    cycle: cycle.meta.kind.to_string(),
                    rollouts,
                });
                println!();
            }
        }
    }

    println!(
        "mean final-SoC error across cycles and {} seeds \
         (paper: No-PINN 0.234 -> PINN-30s 0.089):",
        seeds.len()
    );
    for (label, errs) in &final_errors {
        println!("  {:<14} {:.3}", label, mean(errs));
    }

    write_results_json("fig5_rollout", &traces).expect("write results");
}
