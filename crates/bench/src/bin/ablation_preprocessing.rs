//! Ablation: the 30 s moving average (§V-C).
//!
//! The paper attributes its win over the DE models of \[7\] to the moving-
//! average preprocessing: "This allows the network to account for I, V, and
//! T information of the last 30 seconds instead of their noisy instantaneous
//! values." This harness trains the same PINN-All model on the LG data with
//! different smoothing windows and reports estimation and prediction MAE.
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin ablation_preprocessing
//! ```

use pinnsoc::{eval_estimation, eval_prediction, train, PinnVariant, TrainConfig};
use pinnsoc_bench::{mean, write_results_json};
use pinnsoc_data::{generate_lg, LgConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    window_s: f64,
    estimation_mae: f64,
    prediction_mae_30s: f64,
}

fn main() {
    println!("=== Ablation: moving-average window on the LG dataset (§V-C) ===\n");
    let seeds = [0u64, 1];
    let mut rows = Vec::new();
    for window_s in [1.0, 10.0, 30.0, 90.0] {
        let dataset = generate_lg(&LgConfig {
            moving_avg_s: window_s,
            test_temps_c: vec![25.0],
            ..LgConfig::default()
        });
        let mut est = Vec::new();
        let mut pred = Vec::new();
        for &seed in &seeds {
            let (model, _) = train(
                &dataset,
                &TrainConfig::lg(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), seed),
            );
            est.push(eval_estimation(&model, &dataset.test).mae);
            pred.push(eval_prediction(&model, &dataset.test, 30.0).mae);
        }
        rows.push(Row {
            window_s,
            estimation_mae: mean(&est),
            prediction_mae_30s: mean(&pred),
        });
    }

    println!(
        "{:<12} {:>16} {:>18}",
        "window [s]", "SoC(t) MAE", "SoC(t+30s) MAE"
    );
    println!("{}", "-".repeat(48));
    for r in &rows {
        println!(
            "{:<12} {:>16.4} {:>18.4}",
            r.window_s, r.estimation_mae, r.prediction_mae_30s
        );
    }
    println!("\n(window = 1 s is the identity: raw instantaneous inputs)");
    write_results_json("ablation_preprocessing", &rows).expect("write results");
}
