//! Ablation: how much physics is the right amount?
//!
//! Two sweeps the paper's design implies but does not report:
//!
//! 1. **Physics weight** — Eq. 2 weights the data and physics MAE terms
//!    equally; sweep the physics weight from 0 (= No-PINN) to 4.
//! 2. **Physics current sampling** — empirical pool vs. the full C-rate
//!    envelope (the design choice that lets the PINN extrapolate to the
//!    Sandia test rates; see DESIGN.md §5).
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin ablation_physics
//! ```

use pinnsoc::{eval_prediction, train, PinnVariant, TrainConfig};
use pinnsoc_bench::{mean, std_dev, write_results_json};
use pinnsoc_data::{generate_sandia, PhysicsCurrentMode, SandiaConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    setting: String,
    mae_120: f64,
    mae_240: f64,
    mae_360: f64,
    std_360: f64,
}

fn eval_setting(
    dataset: &pinnsoc_data::SocDataset,
    setting: String,
    make: impl Fn(u64) -> TrainConfig,
) -> AblationRow {
    let seeds = [0u64, 1, 2];
    let mut maes: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for &seed in &seeds {
        let (model, _) = train(dataset, &make(seed));
        for (k, h) in [120.0, 240.0, 360.0].iter().enumerate() {
            maes[k].push(eval_prediction(&model, &dataset.test, *h).mae);
        }
    }
    AblationRow {
        setting,
        mae_120: mean(&maes[0]),
        mae_240: mean(&maes[1]),
        mae_360: mean(&maes[2]),
        std_360: std_dev(&maes[2]),
    }
}

fn main() {
    println!("=== Ablation: physics-loss weight and current sampling (Sandia) ===\n");
    let dataset = generate_sandia(&SandiaConfig::default());
    let horizons = [120.0, 240.0, 360.0];
    let mut rows = Vec::new();

    // Sweep 1: physics weight.
    for weight in [0.0f32, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let row = eval_setting(&dataset, format!("weight={weight}"), |seed| {
            let variant = if weight == 0.0 {
                PinnVariant::NoPinn
            } else {
                PinnVariant::pinn_all(&horizons)
            };
            TrainConfig {
                physics_weight: weight.max(1e-6),
                ..TrainConfig::sandia(variant, seed)
            }
        });
        rows.push(row);
    }

    // Sweep 2: current sampling mode at the paper's weight.
    for (name, mode) in [
        ("currents=pool", PhysicsCurrentMode::Pool),
        (
            "currents=c-rate[-0.6,3.2]",
            PhysicsCurrentMode::CRateUniform {
                min_c: -0.6,
                max_c: 3.2,
            },
        ),
        (
            "currents=c-rate[-0.6,1.2] (train range only)",
            PhysicsCurrentMode::CRateUniform {
                min_c: -0.6,
                max_c: 1.2,
            },
        ),
    ] {
        let row = eval_setting(&dataset, name.to_string(), |seed| TrainConfig {
            physics_current: mode,
            ..TrainConfig::sandia(PinnVariant::pinn_all(&horizons), seed)
        });
        rows.push(row);
    }

    println!(
        "{:<46} {:>9} {:>9} {:>9} {:>9}",
        "setting", "MAE@120s", "MAE@240s", "MAE@360s", "±360s"
    );
    println!("{}", "-".repeat(86));
    for r in &rows {
        println!(
            "{:<46} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            r.setting, r.mae_120, r.mae_240, r.mae_360, r.std_360
        );
    }
    write_results_json("ablation_physics", &rows).expect("write results");
}
