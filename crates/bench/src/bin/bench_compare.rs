//! Bench-trajectory gate: diff the workspace's current `BENCH_*.json`
//! results against the archived baselines in `bench_history/`, write
//! `BENCH_trajectory.json`, and exit non-zero when a watched metric
//! regressed beyond its noise budget (see `pinnsoc_bench::trajectory`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pinnsoc-bench --bin bench_compare [-- --smoke]
//! ```
//!
//! Normal mode requires `bench_history/` to exist and errors when a
//! current bench file has no archived counterpart. `--smoke` (the CI
//! gate) tolerates missing history — absent baselines report every metric
//! as `Added` and pass — so the gate degrades gracefully on a fresh
//! checkout while still failing loudly on any real regression.

use pinnsoc_bench::trajectory::{
    compare_file, default_policies, FileTrajectory, MetricStatus, TrajectoryReport,
};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Where archived baselines live, relative to the workspace root.
const HISTORY_DIR: &str = "bench_history";

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read_json(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: parse error: {e:?}", path.display()))
}

fn bench_files(root: &Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(root)
        .expect("workspace root readable")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let stem = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .to_string();
            // The gate's own output never gates itself.
            (stem != "trajectory").then_some((name, stem))
        })
        .collect();
    files.sort();
    files
}

fn print_file(t: &FileTrajectory) {
    println!(
        "  {:<22} {} compared | {} regressed | {} improved | {} added | {} removed",
        t.file, t.compared, t.regressed, t.improved, t.added, t.removed
    );
    for delta in &t.deltas {
        let marker = match delta.status {
            MetricStatus::Regressed => "REGRESSED",
            MetricStatus::Improved => "improved",
            _ => continue,
        };
        println!(
            "    {marker:<9} {} : {:.6} -> {:.6} ({})",
            delta.path,
            delta.baseline.unwrap_or(f64::NAN),
            delta.current.unwrap_or(f64::NAN),
            delta
                .rel_change_pct
                .map_or("n/a".to_string(), |p| format!("{p:+.1}%")),
        );
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let root = workspace_root();
    let history = root.join(HISTORY_DIR);
    let policies = default_policies();

    if !history.is_dir() && !smoke {
        eprintln!(
            "bench_compare: no {HISTORY_DIR}/ directory at the workspace root \
             (seed it from the committed BENCH_*.json, or pass --smoke)"
        );
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    let mut gated_regressions = 0usize;
    println!("bench trajectory vs {HISTORY_DIR}/:");
    for (name, stem) in bench_files(&root) {
        let current = match read_json(&root.join(&name)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_compare: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline_path = history.join(&name);
        let baseline = if baseline_path.is_file() {
            match read_json(&baseline_path) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("bench_compare: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if smoke {
            // No archive yet: everything is Added, nothing can regress.
            Value::Object(Vec::new())
        } else {
            eprintln!("bench_compare: {} has no baseline in {HISTORY_DIR}/", name);
            return ExitCode::FAILURE;
        };
        let t = compare_file(&name, &stem, &baseline, &current, &policies);
        print_file(&t);
        gated_regressions += t.regressed;
        files.push(t);
    }

    let report = TrajectoryReport {
        git_rev: pinnsoc_bench::git_rev(),
        files,
        gated_regressions,
    };
    let out = root.join("BENCH_trajectory.json");
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, json).expect("write BENCH_trajectory.json");
    println!("\nwrote BENCH_trajectory.json ({gated_regressions} gated regression(s))");

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_compare: FAILED — {gated_regressions} watched metric(s) regressed beyond budget"
        );
        ExitCode::FAILURE
    }
}
