//! # pinnsoc-bench
//!
//! Experiment harness reproducing every figure and table of the paper's
//! evaluation (§V), plus shared utilities for the Criterion benches.
//!
//! Each experiment has a binary that regenerates the corresponding rows:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig3_sandia` | Fig. 3 — Sandia MAE across horizons and variants |
//! | `fig4_lg` | Fig. 4 — LG MAE across horizons and variants |
//! | `table1_comparison` | Table I — SoA comparison (MAE / memory / ops) |
//! | `fig5_rollout` | Fig. 5 — autoregressive full-discharge traces |
//!
//! Results are printed as text tables and written as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trajectory;

use pinnsoc::{eval_prediction, train, PinnVariant, SocModel, TrainConfig};
use pinnsoc_data::SocDataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// The lab dataset behind [`demo_serving_model`]: the reduced Sandia
/// protocol (one NMC cell, one temperature, no noise). Also the
/// anti-forgetting replay source of the `adapt_baseline` online-adaptation
/// session — mixing *the same lab cycles the serving model trained on* into
/// every fine-tune is what keeps adaptation from trading lab accuracy for
/// drive-cycle accuracy.
pub fn demo_training_dataset() -> SocDataset {
    pinnsoc_data::generate_sandia(&pinnsoc_data::SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: pinnsoc_data::NoiseConfig::none(),
        ..pinnsoc_data::SandiaConfig::default()
    })
}

/// The demo serving model used by the fleet/scenario walkthroughs and
/// `scenario_baseline`: a Branch-1-focused PINN trained on
/// [`demo_training_dataset`] at seed 7, deterministic and quick to train.
/// One definition keeps the example walkthroughs and the recorded
/// `BENCH_scenarios.json` numbers in lockstep; `smoke` shrinks the epoch
/// counts for CI gates.
pub fn demo_serving_model(smoke: bool) -> SocModel {
    let dataset = demo_training_dataset();
    let config = TrainConfig {
        b1_epochs: if smoke { 20 } else { 60 },
        b2_epochs: if smoke { 10 } else { 30 },
        batch_size: 16,
        ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0]), 7)
    };
    train(&dataset, &config).0
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation of a slice (0 for a single element).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// MAE results of one variant across test horizons, over several seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantResult {
    /// Variant label ("No-PINN", "PINN-All", ...).
    pub label: String,
    /// Per-horizon MAE samples: key = horizon in seconds (stringified for
    /// JSON friendliness), value = one MAE per seed.
    pub mae_per_horizon: BTreeMap<String, Vec<f64>>,
}

impl VariantResult {
    /// Mean MAE at a horizon.
    pub fn mean_mae(&self, horizon_s: f64) -> f64 {
        mean(&self.mae_per_horizon[&horizon_key(horizon_s)])
    }

    /// Standard deviation of the MAE at a horizon.
    pub fn std_mae(&self, horizon_s: f64) -> f64 {
        std_dev(&self.mae_per_horizon[&horizon_key(horizon_s)])
    }
}

/// Canonical map key for a horizon.
pub fn horizon_key(horizon_s: f64) -> String {
    format!("{horizon_s:.0}")
}

/// Specification of a Fig. 3 / Fig. 4-style experiment.
pub struct HorizonSweep<'a> {
    /// Dataset (Sandia-like or LG-like).
    pub dataset: &'a SocDataset,
    /// Variants to compare (the six bars of each group).
    pub variants: Vec<PinnVariant>,
    /// Test horizons (the bar groups).
    pub test_horizons_s: Vec<f64>,
    /// Seeds to average over (the paper uses 5).
    pub seeds: Vec<u64>,
    /// Config factory: `(variant, seed) → TrainConfig`.
    pub make_config: fn(PinnVariant, u64) -> TrainConfig,
}

impl HorizonSweep<'_> {
    /// Trains every `(variant, seed)` pair (in parallel across scoped
    /// threads) and evaluates MAE at every test horizon.
    pub fn run(&self) -> Vec<VariantResult> {
        let jobs: Vec<(usize, PinnVariant, u64)> = self
            .variants
            .iter()
            .enumerate()
            .flat_map(|(vi, v)| self.seeds.iter().map(move |&s| (vi, v.clone(), s)))
            .collect();
        let results: Vec<(usize, Vec<(f64, f64)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(vi, variant, seed)| {
                    let dataset = self.dataset;
                    let horizons = &self.test_horizons_s;
                    let make_config = self.make_config;
                    let variant = variant.clone();
                    let vi = *vi;
                    let seed = *seed;
                    scope.spawn(move || {
                        let config = make_config(variant, seed);
                        let (model, _) = train(dataset, &config);
                        let maes: Vec<(f64, f64)> = horizons
                            .iter()
                            .map(|&h| (h, eval_prediction(&model, &dataset.test, h).mae))
                            .collect();
                        (vi, maes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut out: Vec<VariantResult> = self
            .variants
            .iter()
            .map(|v| VariantResult {
                label: v.to_string(),
                mae_per_horizon: BTreeMap::new(),
            })
            .collect();
        for (vi, maes) in results {
            for (h, mae) in maes {
                out[vi]
                    .mae_per_horizon
                    .entry(horizon_key(h))
                    .or_default()
                    .push(mae);
            }
        }
        out
    }
}

/// Trains a single `(variant, seed)` model with the given factory — shared
/// by Table I and Fig. 5 harnesses.
pub fn train_variant(
    dataset: &SocDataset,
    variant: PinnVariant,
    seed: u64,
    make_config: fn(PinnVariant, u64) -> TrainConfig,
) -> SocModel {
    let config = make_config(variant, seed);
    train(dataset, &config).0
}

/// Prints a Fig. 3 / Fig. 4-style table: one row per variant, one column
/// per horizon, with the relative improvement vs. the first row (No-PINN).
pub fn print_horizon_table(results: &[VariantResult], horizons_s: &[f64]) {
    print!("{:<14}", "variant");
    for h in horizons_s {
        print!(" | Test@{:<5.0}s          ", h);
    }
    println!();
    println!("{}", "-".repeat(14 + horizons_s.len() * 26));
    let baseline = &results[0];
    for r in results {
        print!("{:<14}", r.label);
        for &h in horizons_s {
            let m = r.mean_mae(h);
            let s = r.std_mae(h);
            let delta = 100.0 * (baseline.mean_mae(h) - m) / baseline.mean_mae(h);
            print!(" | {m:.4} ±{s:.4} ({delta:+5.1}%)");
        }
        println!();
    }
}

/// Host metadata stamped into every `BENCH_*.json` at the workspace root so
/// the perf trajectory across PRs stays comparable. One definition shared
/// by all baseline bins (they used to carry diverging copies).
#[derive(Debug, Clone, Serialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism` on the measuring host.
    pub threads: usize,
    /// Worker threads the measured pool resolved; the meaning is
    /// per-bench (engine workers, runner workers, training workers, ...).
    pub workers: usize,
    /// `std::env::consts::OS`.
    pub os: &'static str,
    /// `std::env::consts::ARCH`.
    pub arch: &'static str,
    /// Short git revision of the measured tree, or `"unknown"`.
    pub git_rev: String,
    /// Active GEMM kernel path on the measuring host (`avx2` / `sse2` /
    /// `scalar`), as resolved by `pinnsoc_nn::kernel::active` — forced
    /// paths (`PINNSOC_FORCE_KERNEL`) are reported as forced, so bench
    /// JSONs from different hosts or forcing modes stay comparable.
    pub kernel_path: &'static str,
    /// Int8 accumulate flavor the quantized GEMMs sub-dispatch to under
    /// `kernel_path` (`avx512-vnni` / `avx-vnni` / `avx2-madd` / ...) —
    /// int8 speedups depend on it, the f32 numbers do not.
    pub int8_kernel: &'static str,
    /// Numeric serving mode of the measured path: `"f32"` for the
    /// baseline pipelines, `"int8"` when the bench measured quantized
    /// serving.
    pub quantization: &'static str,
}

/// Captures [`HostInfo`] for a bench whose measured pool resolved `workers`
/// worker threads, serving f32 (the default mode).
pub fn host_info(workers: usize) -> HostInfo {
    host_info_with_mode(workers, "f32")
}

/// [`host_info`] with an explicit quantization mode label.
pub fn host_info_with_mode(workers: usize, quantization: &'static str) -> HostInfo {
    HostInfo {
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        workers,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        git_rev: git_rev(),
        kernel_path: pinnsoc_nn::kernel::active().as_str(),
        int8_kernel: pinnsoc_nn::kernel::int8_flavor(),
        quantization,
    }
}

/// Short git revision of the workspace checkout, or `"unknown"` when git or
/// the repository is unavailable (e.g. a source tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Writes any serializable result to `results/<name>.json` under the
/// workspace root (creating the directory if needed).
///
/// # Errors
///
/// Returns an I/O error when the directory or file cannot be written.
pub fn write_results_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    println!("\nwrote results/{name}.json");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn horizon_keys_are_stable() {
        assert_eq!(horizon_key(120.0), "120");
        assert_eq!(horizon_key(30.0), "30");
    }

    #[test]
    fn variant_result_stats() {
        let mut m = BTreeMap::new();
        m.insert("120".to_string(), vec![0.1, 0.2]);
        let r = VariantResult {
            label: "x".into(),
            mae_per_horizon: m,
        };
        assert!((r.mean_mae(120.0) - 0.15).abs() < 1e-12);
        assert!(r.std_mae(120.0) > 0.0);
    }
}
