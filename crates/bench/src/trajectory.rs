//! Bench-trajectory gate: diff current `BENCH_*.json` results against
//! archived baselines and fail on regressions beyond per-metric noise
//! budgets.
//!
//! Each `BENCH_*.json` at the workspace root is flattened to dotted
//! numeric paths (`serve.shapes.0.p99_s`, `obs.fleet.overhead_pct`, ...)
//! and compared leaf-by-leaf against the same file archived under
//! `bench_history/`. A curated [watchlist](default_policies) decides
//! which paths *gate*: each watched metric carries a direction
//! (lower/higher is better), a relative noise threshold sized to how
//! jittery the metric is on shared CI hosts (timing metrics get generous
//! budgets, deterministic accuracy metrics get tight ones), and an
//! absolute floor below which changes never count. Unwatched paths are
//! still reported — as [`MetricStatus::Drift`] when they move — but never
//! fail the gate, so adding fields to a bench JSON is cheap while
//! regressing a watched latency is loud.
//!
//! The `bench_compare` binary drives this module: it emits
//! `BENCH_trajectory.json` and exits non-zero when any gated metric
//! regressed beyond budget.

use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;

/// Which way a watched metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, overheads, error rates: up is a regression.
    LowerIsBetter,
    /// Throughputs, speedups, pass booleans: down is a regression.
    HigherIsBetter,
}

/// One watchlist entry: a dotted-path pattern plus the noise budget that
/// separates drift from regression.
#[derive(Debug, Clone)]
pub struct MetricPolicy {
    /// Dotted path pattern; `*` matches exactly one segment
    /// (`serve.shapes.*.p99_s` matches every traffic shape's p99).
    pub pattern: &'static str,
    /// Which direction is good.
    pub direction: Direction,
    /// Relative change (vs. the baseline's magnitude) above which a
    /// bad-direction move is a regression. `0.5` = 50%.
    pub rel_threshold: f64,
    /// Absolute change below which the move never counts, whatever the
    /// relative looks like — keeps near-zero baselines (an overhead of
    /// 0.3%) from turning scheduler jitter into a 300% "regression".
    pub abs_floor: f64,
}

impl MetricPolicy {
    const fn new(
        pattern: &'static str,
        direction: Direction,
        rel_threshold: f64,
        abs_floor: f64,
    ) -> Self {
        MetricPolicy {
            pattern,
            direction,
            rel_threshold,
            abs_floor,
        }
    }

    /// Whether this policy's pattern matches a flattened dotted path.
    pub fn matches(&self, path: &str) -> bool {
        let mut want = self.pattern.split('.');
        let mut have = path.split('.');
        loop {
            match (want.next(), have.next()) {
                (None, None) => return true,
                (Some(w), Some(h)) => {
                    if w != "*" && w != h {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

/// The curated gate watchlist for the workspace's `BENCH_*.json` files.
/// Paths are namespaced by file stem (`BENCH_serve.json` → `serve.`).
///
/// Threshold philosophy: wall-clock metrics on shared hosts are noisy, so
/// their budgets are wide (30–100%) and exist to catch order-of-magnitude
/// pathologies, not 10% wobbles; deterministic metrics (MAE, bit-identity
/// booleans, allocation counts) are tight because any motion there is a
/// real code change.
pub fn default_policies() -> Vec<MetricPolicy> {
    use Direction::{HigherIsBetter, LowerIsBetter};
    vec![
        // serve: ingest-to-estimate latency and tick-loop independence.
        MetricPolicy::new("serve.shapes.*.p50_s", LowerIsBetter, 1.0, 5e-3),
        MetricPolicy::new("serve.shapes.*.p99_s", LowerIsBetter, 1.0, 5e-3),
        MetricPolicy::new("serve.topology_bit_identical", HigherIsBetter, 0.5, 0.0),
        // obs: the zero-overhead-when-off contract.
        MetricPolicy::new("obs.fleet.overhead_pct", LowerIsBetter, 1.0, 3.0),
        MetricPolicy::new(
            "obs.scenario_reports_bit_identical",
            HigherIsBetter,
            0.5,
            0.0,
        ),
        MetricPolicy::new("obs.adapt_sessions_bit_identical", HigherIsBetter, 0.5, 0.0),
        // fleet: serving throughput floors.
        MetricPolicy::new(
            "fleet.results.*.batched_cells_per_sec",
            HigherIsBetter,
            0.5,
            0.0,
        ),
        MetricPolicy::new(
            "fleet.results.*.engine_process_cells_per_sec",
            HigherIsBetter,
            0.5,
            0.0,
        ),
        MetricPolicy::new("fleet.results.*.speedup", HigherIsBetter, 0.5, 1.0),
        // simd: kernel speedups over scalar.
        MetricPolicy::new(
            "simd.forward.simd_speedup_vs_scalar",
            HigherIsBetter,
            0.4,
            0.3,
        ),
        MetricPolicy::new(
            "simd.forward.gemm_simd_speedup_vs_scalar",
            HigherIsBetter,
            0.4,
            0.3,
        ),
        // durable: WAL hot-path overhead and recovery wall time.
        MetricPolicy::new("durable.wal.hot_overhead_pct", LowerIsBetter, 1.0, 5.0),
        MetricPolicy::new("durable.recovery.*.recover_wall_s", LowerIsBetter, 2.0, 0.5),
        MetricPolicy::new("durable.crash_loop_bit_identical", HigherIsBetter, 0.5, 0.0),
        // train: the zero-allocation step contract is deterministic.
        MetricPolicy::new(
            "train.step_allocations.*.engine_per_step",
            LowerIsBetter,
            0.1,
            0.5,
        ),
        // Accuracy: deterministic, so tight budgets. The adapted model
        // must keep beating the frozen one by roughly the recorded margin.
        MetricPolicy::new(
            "adapt.scenarios.*.adapted_network_mae",
            LowerIsBetter,
            0.10,
            0.002,
        ),
        MetricPolicy::new(
            "scenarios.scenarios.*.result.best.mae",
            LowerIsBetter,
            0.10,
            0.002,
        ),
    ]
}

/// What happened to one flattened metric between baseline and current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MetricStatus {
    /// Watched, moved in the good direction beyond its noise budget.
    Improved,
    /// Present in both and within noise (watched or not).
    Flat,
    /// Unwatched but moved — reported, never gates.
    Drift,
    /// Watched and moved in the bad direction beyond its noise budget.
    Regressed,
    /// Present only in the current results.
    Added,
    /// Present only in the baseline.
    Removed,
}

/// One metric's comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDelta {
    /// Flattened dotted path, namespaced by file stem.
    pub path: String,
    /// Baseline value (absent for [`MetricStatus::Added`]).
    pub baseline: Option<f64>,
    /// Current value (absent for [`MetricStatus::Removed`]).
    pub current: Option<f64>,
    /// Relative change in percent, when both sides exist and the baseline
    /// is non-zero.
    pub rel_change_pct: Option<f64>,
    /// Verdict.
    pub status: MetricStatus,
    /// Whether a watchlist policy governs this path (only gated paths can
    /// be `Regressed` or `Improved`).
    pub gated: bool,
}

/// Comparison of one `BENCH_*.json` against its archived baseline.
#[derive(Debug, Clone, Serialize)]
pub struct FileTrajectory {
    /// File name (`BENCH_serve.json`).
    pub file: String,
    /// Metrics present in both sides.
    pub compared: usize,
    /// Gated regressions in this file.
    pub regressed: usize,
    /// Gated improvements.
    pub improved: usize,
    /// Current-only metrics.
    pub added: usize,
    /// Baseline-only metrics.
    pub removed: usize,
    /// Every non-[`Flat`](MetricStatus::Flat) row, regressions first.
    pub deltas: Vec<MetricDelta>,
}

/// The full gate verdict across every bench file, written as
/// `BENCH_trajectory.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryReport {
    /// Short git revision of the compared tree.
    pub git_rev: String,
    /// Per-file comparisons.
    pub files: Vec<FileTrajectory>,
    /// Total gated regressions — non-zero fails CI.
    pub gated_regressions: usize,
}

impl TrajectoryReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.gated_regressions == 0
    }
}

/// Flattens every numeric (and boolean, as 0/1) leaf of a JSON tree into
/// `prefix.path.to.leaf → f64`, skipping `host` metadata subtrees and
/// string leaves (descriptions, labels, git revisions).
pub fn flatten_numeric(value: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Number(_) => {
            if let Some(x) = value.as_f64() {
                out.insert(prefix.to_string(), x);
            }
        }
        Value::Bool(b) => {
            out.insert(prefix.to_string(), if *b { 1.0 } else { 0.0 });
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_numeric(item, &format!("{prefix}.{i}"), out);
            }
        }
        Value::Object(entries) => {
            for (key, item) in entries {
                // Host metadata (thread counts, kernel paths, git revs)
                // legitimately differs across machines and commits.
                if key == "host" {
                    continue;
                }
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten_numeric(item, &path, out);
            }
        }
        Value::Null | Value::String(_) => {}
    }
}

/// Relative-change tolerance under which two values are the same metric
/// reading (covers float formatting round-trips).
const FLAT_EPS: f64 = 1e-9;

fn classify(
    path: &str,
    baseline: f64,
    current: f64,
    policies: &[MetricPolicy],
) -> (MetricStatus, bool, Option<f64>) {
    let abs_change = current - baseline;
    let rel_change = if baseline.abs() > 0.0 {
        abs_change / baseline.abs()
    } else if abs_change == 0.0 {
        0.0
    } else {
        f64::INFINITY.copysign(abs_change)
    };
    let rel_pct = rel_change.is_finite().then_some(rel_change * 100.0);
    let Some(policy) = policies.iter().find(|p| p.matches(path)) else {
        let status = if rel_change.abs() <= FLAT_EPS && abs_change.abs() <= FLAT_EPS {
            MetricStatus::Flat
        } else {
            MetricStatus::Drift
        };
        return (status, false, rel_pct);
    };
    let worse = match policy.direction {
        Direction::LowerIsBetter => abs_change > 0.0,
        Direction::HigherIsBetter => abs_change < 0.0,
    };
    let beyond = rel_change.abs() > policy.rel_threshold && abs_change.abs() > policy.abs_floor;
    let status = if !beyond {
        MetricStatus::Flat
    } else if worse {
        MetricStatus::Regressed
    } else {
        MetricStatus::Improved
    };
    (status, true, rel_pct)
}

/// Compares one bench file's flattened metrics against its baseline.
/// `stem` namespaces the paths (`serve`, `obs`, ...); `file` is the
/// reported file name.
pub fn compare_file(
    file: &str,
    stem: &str,
    baseline: &Value,
    current: &Value,
    policies: &[MetricPolicy],
) -> FileTrajectory {
    let mut base = BTreeMap::new();
    let mut cur = BTreeMap::new();
    flatten_numeric(baseline, stem, &mut base);
    flatten_numeric(current, stem, &mut cur);

    let mut deltas = Vec::new();
    let mut compared = 0;
    let mut regressed = 0;
    let mut improved = 0;
    let mut added = 0;
    let mut removed = 0;
    for (path, &b) in &base {
        match cur.get(path) {
            Some(&c) => {
                compared += 1;
                let (status, gated, rel_pct) = classify(path, b, c, policies);
                match status {
                    MetricStatus::Regressed => regressed += 1,
                    MetricStatus::Improved => improved += 1,
                    _ => {}
                }
                if status != MetricStatus::Flat {
                    deltas.push(MetricDelta {
                        path: path.clone(),
                        baseline: Some(b),
                        current: Some(c),
                        rel_change_pct: rel_pct,
                        status,
                        gated,
                    });
                }
            }
            None => {
                removed += 1;
                deltas.push(MetricDelta {
                    path: path.clone(),
                    baseline: Some(b),
                    current: None,
                    rel_change_pct: None,
                    status: MetricStatus::Removed,
                    gated: false,
                });
            }
        }
    }
    for (path, &c) in &cur {
        if !base.contains_key(path) {
            added += 1;
            deltas.push(MetricDelta {
                path: path.clone(),
                baseline: None,
                current: Some(c),
                rel_change_pct: None,
                status: MetricStatus::Added,
                gated: false,
            });
        }
    }
    // Regressions first, then improvements, then churn.
    deltas.sort_by_key(|d| match d.status {
        MetricStatus::Regressed => 0,
        MetricStatus::Improved => 1,
        MetricStatus::Drift => 2,
        MetricStatus::Added => 3,
        MetricStatus::Removed => 4,
        MetricStatus::Flat => 5,
    });
    FileTrajectory {
        file: file.to_string(),
        compared,
        regressed,
        improved,
        added,
        removed,
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    fn num(x: f64) -> Value {
        Value::Number(serde_json::Number::Float(x))
    }

    #[test]
    fn pattern_matching_is_segment_wise() {
        let p = MetricPolicy::new("serve.shapes.*.p99_s", Direction::LowerIsBetter, 0.5, 0.0);
        assert!(p.matches("serve.shapes.0.p99_s"));
        assert!(p.matches("serve.shapes.17.p99_s"));
        assert!(!p.matches("serve.shapes.0.p50_s"));
        assert!(!p.matches("serve.shapes.p99_s"));
        assert!(!p.matches("serve.shapes.0.extra.p99_s"));
    }

    #[test]
    fn flatten_skips_host_and_strings_keeps_bools() {
        let doc = obj(&[
            ("description", Value::String("text".into())),
            ("host", obj(&[("threads", num(8.0))])),
            ("ok", Value::Bool(true)),
            ("nested", obj(&[("x", num(2.5))])),
            ("arr", Value::Array(vec![num(1.0), num(2.0)])),
        ]);
        let mut out = BTreeMap::new();
        flatten_numeric(&doc, "t", &mut out);
        assert_eq!(out.get("t.ok"), Some(&1.0));
        assert_eq!(out.get("t.nested.x"), Some(&2.5));
        assert_eq!(out.get("t.arr.1"), Some(&2.0));
        assert!(!out.keys().any(|k| k.contains("host")));
        assert!(!out.keys().any(|k| k.contains("description")));
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let baseline = obj(&[("shapes", Value::Array(vec![obj(&[("p99_s", num(0.04))])]))]);
        // p99 blows up 10×: far beyond the 100% budget and the 5 ms floor.
        let current = obj(&[("shapes", Value::Array(vec![obj(&[("p99_s", num(0.4))])]))]);
        let t = compare_file(
            "BENCH_serve.json",
            "serve",
            &baseline,
            &current,
            &default_policies(),
        );
        assert_eq!(t.regressed, 1, "the injected p99 regression must gate");
        let delta = &t.deltas[0];
        assert_eq!(delta.status, MetricStatus::Regressed);
        assert!(delta.gated);
        assert_eq!(delta.path, "serve.shapes.0.p99_s");
    }

    #[test]
    fn improvement_and_noise_do_not_gate() {
        let baseline = obj(&[("shapes", Value::Array(vec![obj(&[("p99_s", num(0.04))])]))]);
        // 20% slower: within the 100% noise budget.
        let noisy = obj(&[("shapes", Value::Array(vec![obj(&[("p99_s", num(0.048))])]))]);
        let t = compare_file("f", "serve", &baseline, &noisy, &default_policies());
        assert_eq!(t.regressed, 0);
        // A watched speedup more than doubling: improvement, not failure.
        let base_speed = obj(&[("forward", obj(&[("simd_speedup_vs_scalar", num(1.9))]))]);
        let fast = obj(&[("forward", obj(&[("simd_speedup_vs_scalar", num(4.2))]))]);
        let t = compare_file("f", "simd", &base_speed, &fast, &default_policies());
        assert_eq!(t.regressed, 0);
        assert_eq!(t.improved, 1);
    }

    #[test]
    fn abs_floor_suppresses_relative_blowups_near_zero() {
        // overhead_pct 0.1 → 2.9: +2800% relative but under the 3-point
        // absolute floor — scheduler jitter, not a regression.
        let baseline = obj(&[("fleet", obj(&[("overhead_pct", num(0.1))]))]);
        let current = obj(&[("fleet", obj(&[("overhead_pct", num(2.9))]))]);
        let t = compare_file("f", "obs", &baseline, &current, &default_policies());
        assert_eq!(t.regressed, 0);
        // 0.1 → 8.0 clears both the relative budget and the floor.
        let bad = obj(&[("fleet", obj(&[("overhead_pct", num(8.0))]))]);
        let t = compare_file("f", "obs", &baseline, &bad, &default_policies());
        assert_eq!(t.regressed, 1);
    }

    #[test]
    fn bit_identity_flip_gates() {
        let baseline = obj(&[("topology_bit_identical", Value::Bool(true))]);
        let current = obj(&[("topology_bit_identical", Value::Bool(false))]);
        let t = compare_file("f", "serve", &baseline, &current, &default_policies());
        assert_eq!(t.regressed, 1, "a bit-identity flip must gate");
    }

    #[test]
    fn added_and_removed_are_reported_not_gated() {
        let baseline = obj(&[("old_metric", num(1.0)), ("kept", num(2.0))]);
        let current = obj(&[("new_metric", num(3.0)), ("kept", num(2.0))]);
        let t = compare_file("f", "x", &baseline, &current, &default_policies());
        assert_eq!(t.regressed, 0);
        assert_eq!(t.added, 1);
        assert_eq!(t.removed, 1);
        assert_eq!(t.compared, 1);
        assert!(t
            .deltas
            .iter()
            .any(|d| d.status == MetricStatus::Added && d.path == "x.new_metric"));
        assert!(t
            .deltas
            .iter()
            .any(|d| d.status == MetricStatus::Removed && d.path == "x.old_metric"));
    }

    #[test]
    fn unwatched_drift_is_visible_but_never_fails() {
        let baseline = obj(&[("ring_capacity", num(131072.0))]);
        let current = obj(&[("ring_capacity", num(262144.0))]);
        let t = compare_file("f", "serve", &baseline, &current, &default_policies());
        assert_eq!(t.regressed, 0);
        assert_eq!(t.deltas[0].status, MetricStatus::Drift);
        assert!(!t.deltas[0].gated);
    }
}
