//! Substrate throughput: cell simulation, drive-cycle generation, and
//! dataset synthesis. These bound how fast the experiment harness can
//! regenerate the paper's figures.

use criterion::{criterion_group, criterion_main, Criterion};
use pinnsoc_battery::{CellParams, CellSim, Soc};
use pinnsoc_cycles::{DriveSchedule, MixedCycleBuilder, Vehicle};
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");

    group.bench_function("ecm_step_1s", |b| {
        let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::new(0.8).expect("valid"), 25.0);
        b.iter(|| black_box(sim.step(black_box(3.0), 1.0)))
    });

    group.bench_function("discharge_to_cutoff_1c", |b| {
        b.iter(|| {
            let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::FULL, 25.0);
            black_box(sim.discharge_to_cutoff(1.0, 1.0, 120.0).records.len())
        })
    });

    group.bench_function("udds_generation_0p1s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(DriveSchedule::Udds.generate(seed).speeds().len())
        })
    });

    group.bench_function("mixed_cycle_to_cell_currents", |b| {
        let vehicle = Vehicle::compact_ev();
        let builder = MixedCycleBuilder::new().segments(2).dt_s(1.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let speeds = builder.build(seed);
            black_box(vehicle.current_profile(&speeds).currents().len())
        })
    });

    group.bench_function("sandia_dataset_one_condition", |b| {
        let config = SandiaConfig {
            chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        };
        b.iter(|| black_box(generate_sandia(&config).train_len()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation
}
criterion_main!(benches);
