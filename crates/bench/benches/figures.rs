//! Scaled-down versions of each paper artifact wired into `cargo bench`, so
//! the benchmark run exercises the exact code paths that regenerate
//! Figs. 3–5 and Table I. (The full-scale numbers come from the binaries:
//! `fig3_sandia`, `fig4_lg`, `table1_comparison`, `fig5_rollout`.)

use criterion::{criterion_group, criterion_main, Criterion};
use pinnsoc::{
    autoregressive_rollout, eval_estimation, eval_prediction, train, PinnVariant, TrainConfig,
};
use pinnsoc_data::{generate_lg, generate_sandia, LgConfig, NoiseConfig, SandiaConfig};
use std::hint::black_box;

fn sandia_small() -> pinnsoc_data::SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![15.0, 35.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    })
}

fn lg_small() -> pinnsoc_data::SocDataset {
    generate_lg(&LgConfig {
        train_mixed: 2,
        train_temps_c: vec![25.0],
        test_temps_c: vec![25.0],
        mixed_segments: 2,
        ..LgConfig::default()
    })
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Fig. 3 path: train a Sandia PINN and sweep the three horizons.
    let sandia = sandia_small();
    group.bench_function("fig3_train_and_sweep_one_variant", |b| {
        let config = TrainConfig {
            b1_epochs: 8,
            b2_epochs: 8,
            ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]), 0)
        };
        b.iter(|| {
            let (model, _) = train(&sandia, &config);
            let maes: Vec<f64> = [120.0, 240.0, 360.0]
                .iter()
                .map(|&h| eval_prediction(&model, &sandia.test, h).mae)
                .collect();
            black_box(maes)
        })
    });

    // Fig. 4 path: LG training plus horizon evaluation.
    let lg = lg_small();
    group.bench_function("fig4_train_and_sweep_one_variant", |b| {
        let config = TrainConfig {
            b1_epochs: 2,
            b2_epochs: 2,
            ..TrainConfig::lg(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), 0)
        };
        b.iter(|| {
            let (model, _) = train(&lg, &config);
            black_box(eval_prediction(&model, &lg.test, 70.0).mae)
        })
    });

    // Table I path: estimation + prediction eval at one temperature.
    let (table_model, _) = train(
        &lg,
        &TrainConfig {
            b1_epochs: 3,
            b2_epochs: 3,
            ..TrainConfig::lg(PinnVariant::NoPinn, 0)
        },
    );
    group.bench_function("table1_eval_both_columns", |b| {
        b.iter(|| {
            let est = eval_estimation(&table_model, &lg.test).mae;
            let pred = eval_prediction(&table_model, &lg.test, 30.0).mae;
            black_box((est, pred))
        })
    });

    // Fig. 5 path: one full autoregressive rollout.
    group.bench_function("fig5_full_discharge_rollout", |b| {
        b.iter(|| {
            let r = autoregressive_rollout(&table_model, &lg.test[0], 30.0);
            black_box(r.final_error())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_figures
}
criterion_main!(benches);
