//! Inference latency benches backing the paper's deployment claims
//! (§III-A / Table I: the two-branch model is "suited for performing
//! low-cost runtime predictions on-board a BMS or a PMIC").
//!
//! Compares one query of each estimator/predictor: Branch 1, the full
//! two-branch pipeline, the raw Coulomb stage, the EKF, and the LSTM
//! baseline over its input window.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pinnsoc::{train, LstmBaselineConfig, LstmEstimator, PinnVariant, TrainConfig};
use pinnsoc_battery::{CellParams, EkfEstimator, Soc};
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use std::hint::black_box;

fn quick_dataset() -> pinnsoc_data::SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    })
}

fn bench_inference(c: &mut Criterion) {
    let ds = quick_dataset();
    let config = TrainConfig {
        b1_epochs: 5,
        b2_epochs: 5,
        ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0]), 0)
    };
    let (model, _) = train(&ds, &config);

    let mut group = c.benchmark_group("inference");
    group.bench_function("branch1_estimate", |b| {
        b.iter(|| black_box(model.estimate(black_box(3.7), black_box(3.0), black_box(25.0))))
    });
    group.bench_function("full_pipeline_predict", |b| {
        b.iter(|| {
            black_box(model.predict(
                black_box(3.7),
                black_box(3.0),
                black_box(25.0),
                black_box(6.0),
                black_box(25.0),
                black_box(120.0),
            ))
        })
    });
    group.bench_function("branch2_only_predict_from", |b| {
        b.iter(|| {
            black_box(model.predict_from(
                black_box(0.8),
                black_box(6.0),
                black_box(25.0),
                black_box(120.0),
            ))
        })
    });

    let (physics, _) = train(
        &ds,
        &TrainConfig {
            b1_epochs: 5,
            ..TrainConfig::sandia(PinnVariant::PhysicsOnly, 0)
        },
    );
    group.bench_function("coulomb_stage_predict_from", |b| {
        b.iter(|| {
            black_box(physics.predict_from(
                black_box(0.8),
                black_box(6.0),
                black_box(25.0),
                black_box(120.0),
            ))
        })
    });

    group.bench_function("ekf_update", |b| {
        b.iter_batched(
            || EkfEstimator::new(CellParams::lg_hg2(), Soc::new(0.8).expect("valid")),
            |mut ekf| black_box(ekf.update(3.0, 3.7, 25.0, 1.0)),
            BatchSize::SmallInput,
        )
    });

    // LSTM baseline: one query = the whole input window (Table I ops column).
    let lstm = LstmEstimator::train(
        &ds.train,
        &LstmBaselineConfig {
            hidden: 48,
            window: 60,
            iterations: 3,
            batch_size: 8,
            ..LstmBaselineConfig::default()
        },
    );
    let window_cycle = &ds.train[0];
    group.bench_function("lstm_window_query_h48", |b| {
        b.iter(|| black_box(lstm.estimate_cycle(black_box(window_cycle)).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_inference
}
criterion_main!(benches);
