//! Fleet inference throughput: batched forward passes vs. the naive
//! per-cell predict loop, plus the full engine pipeline.
//!
//! The headline number backing the fleet subsystem: at fleet size 10k, one
//! `predict_batch` pass must beat 10k scalar `predict` calls by ≥ 5×.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pinnsoc::{BatchScratch, PredictQuery, SocModel};
use pinnsoc_fleet::{
    testing::untrained_model, CellConfig, FleetConfig, FleetEngine, Telemetry, WorkloadQuery,
};
use std::hint::black_box;

fn queries(n: usize) -> Vec<PredictQuery> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            PredictQuery {
                voltage_v: 3.0 + 1.1 * t,
                current_a: 5.0 * t,
                temperature_c: 15.0 + 20.0 * t,
                avg_current_a: 4.0 * t,
                avg_temperature_c: 20.0 + 10.0 * t,
                horizon_s: 30.0 + 300.0 * t,
            }
        })
        .collect()
}

fn per_cell_loop(model: &SocModel, queries: &[PredictQuery]) -> f64 {
    let mut acc = 0.0;
    for q in queries {
        acc += model.predict(
            q.voltage_v,
            q.current_a,
            q.temperature_c,
            q.avg_current_a,
            q.avg_temperature_c,
            q.horizon_s,
        );
    }
    acc
}

fn bench_fleet(c: &mut Criterion) {
    let model = untrained_model();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    for &n in &[1_000usize, 10_000] {
        let qs = queries(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(&format!("per_cell_loop_{n}"), |b| {
            b.iter(|| black_box(per_cell_loop(&model, black_box(&qs))))
        });
        group.bench_function(&format!("batched_micro256_{n}"), |b| {
            let mut scratch = BatchScratch::default();
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                for chunk in black_box(&qs).chunks(256) {
                    model.predict_batch_into(chunk, &mut scratch, &mut out);
                }
                black_box(out.last().copied())
            })
        });
    }

    // Full engine pass at 10k cells: ingest a report per cell, drain, and
    // refresh every estimate through sharded micro-batched workers.
    let n = 10_000u64;
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 8,
            micro_batch: 512,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..n {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    group.throughput(Throughput::Elements(n));
    let mut tick = 0.0f64;
    group.bench_function("engine_ingest_process_10k", |b| {
        b.iter(|| {
            tick += 1.0;
            for id in 0..n {
                engine.ingest(
                    id,
                    Telemetry {
                        time_s: tick,
                        voltage_v: 3.7,
                        current_a: 1.0,
                        temperature_c: 25.0,
                    },
                );
            }
            black_box(engine.process_pending())
        })
    });
    group.bench_function("engine_predict_all_10k", |b| {
        b.iter(|| {
            black_box(engine.predict_all(WorkloadQuery {
                avg_current_a: 3.0,
                avg_temperature_c: 25.0,
                horizon_s: 120.0,
            }))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
