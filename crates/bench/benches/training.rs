//! Training throughput benches, including the cost of the physics loss:
//! a PINN epoch processes twice the batch volume of a No-PINN epoch
//! (§III-B), which is the entire training-time price of the method.

use criterion::{criterion_group, criterion_main, Criterion};
use pinnsoc::{train, PinnVariant, TrainConfig};
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use std::hint::black_box;

fn quick_dataset() -> pinnsoc_data::SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    })
}

fn short(variant: PinnVariant) -> TrainConfig {
    TrainConfig {
        b1_epochs: 3,
        b2_epochs: 3,
        ..TrainConfig::sandia(variant, 0)
    }
}

fn bench_training(c: &mut Criterion) {
    let ds = quick_dataset();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("no_pinn_3_epochs", |b| {
        b.iter(|| black_box(train(&ds, &short(PinnVariant::NoPinn))))
    });
    group.bench_function("pinn_single_3_epochs", |b| {
        b.iter(|| black_box(train(&ds, &short(PinnVariant::pinn_single(120.0)))))
    });
    group.bench_function("pinn_all_3_epochs", |b| {
        b.iter(|| {
            black_box(train(
                &ds,
                &short(PinnVariant::pinn_all(&[120.0, 240.0, 360.0])),
            ))
        })
    });
    group.bench_function("physics_only_branch1_only", |b| {
        b.iter(|| black_box(train(&ds, &short(PinnVariant::PhysicsOnly))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_training
}
criterion_main!(benches);
