//! Adaptation-loop observability: drift scores per cohort, harvest books
//! by cause, gate verdicts, promotions, and rollbacks as
//! `pinnsoc_adapt_*` series plus ring events for round-level outcomes.
//!
//! The adaptation tick is a control-plane event (one call per engine
//! processing pass, bounded work), so recording goes straight through the
//! registry's locked entry points — no per-worker local accumulation is
//! needed here, and registration is idempotent so dynamic cohort gauges can
//! be minted as cohorts first appear.

use crate::drift::{CohortId, DriftStatus};
use crate::engine::AdaptOutcome;
use crate::harvest::HarvestStats;
use pinnsoc_obs::{MetricId, ObsHub};
use std::collections::HashMap;
use std::sync::Arc;

/// Histogram bounds for adaptation rounds: fine-tune + gate suites run for
/// seconds to minutes, far past the microsecond-scale default buckets.
const ROUND_BUCKETS: &[f64] = &[
    1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// Per-engine handle on the `pinnsoc_adapt_*` series.
#[derive(Debug)]
pub(crate) struct AdaptObs {
    hub: Arc<ObsHub>,
    ticks: MetricId,
    triggers: MetricId,
    insufficient: MetricId,
    gate_passes: MetricId,
    gate_failures: MetricId,
    swaps: MetricId,
    rollbacks: MetricId,
    candidates: MetricId,
    round_seconds: MetricId,
    reservoir: MetricId,
    incumbent_mae: MetricId,
    best_candidate_mae: MetricId,
    quantize_pass: MetricId,
    quantize_fail: MetricId,
    quantize_skip: MetricId,
    harvested: MetricId,
    rejected_uncertain: MetricId,
    skipped_stale: MetricId,
    skipped_faulty: MetricId,
    /// `(mean_disagreement, samples)` gauges per cohort, minted on first
    /// sighting.
    cohort_gauges: HashMap<CohortId, (MetricId, MetricId)>,
    /// Harvest books at the previous tick, for per-tick deltas.
    last_harvest: HarvestStats,
}

impl AdaptObs {
    pub(crate) fn new(hub: &Arc<ObsHub>) -> Self {
        let reg = hub.registry();
        let window = |outcome: &str| -> MetricId {
            reg.counter_with(
                "pinnsoc_adapt_harvest_windows_total",
                "Harvest decisions by outcome (skipped_faulty_tick counts \
                 whole skipped ticks, not windows).",
                &[("outcome", outcome)],
            )
        };
        let quantize = |verdict: &str| -> MetricId {
            reg.counter_with(
                "pinnsoc_adapt_quantized_gate_total",
                "Post-promotion quantize rounds by verdict (skipped = no \
                 gate ran: degenerate calibration or a stale registry).",
                &[("verdict", verdict)],
            )
        };
        Self {
            ticks: reg.counter(
                "pinnsoc_adapt_ticks_total",
                "Adaptation observation ticks processed.",
            ),
            triggers: reg.counter(
                "pinnsoc_adapt_triggers_total",
                "Drift triggers that ran a full adaptation round.",
            ),
            insufficient: reg.counter(
                "pinnsoc_adapt_insufficient_data_total",
                "Triggers starved by a too-small reservoir.",
            ),
            gate_passes: reg.counter(
                "pinnsoc_adapt_gate_passes_total",
                "Rounds whose best candidate passed the promotion gate.",
            ),
            gate_failures: reg.counter(
                "pinnsoc_adapt_gate_failures_total",
                "Rounds whose candidates all failed the promotion gate.",
            ),
            swaps: reg.counter(
                "pinnsoc_adapt_swaps_total",
                "Hot-swaps performed by promotions.",
            ),
            rollbacks: reg.counter(
                "pinnsoc_adapt_rollbacks_total",
                "Operator rollbacks to the displaced model.",
            ),
            candidates: reg.counter(
                "pinnsoc_adapt_candidates_total",
                "Candidate models fine-tuned.",
            ),
            round_seconds: reg.histogram(
                "pinnsoc_adapt_round_seconds",
                "Wall time of one adaptation round (fine-tune + gate).",
                ROUND_BUCKETS,
            ),
            reservoir: reg.gauge(
                "pinnsoc_adapt_reservoir_windows",
                "Windows currently in the replay reservoir.",
            ),
            incumbent_mae: reg.gauge(
                "pinnsoc_adapt_gate_incumbent_mae",
                "Incumbent's gate score in the most recent round.",
            ),
            best_candidate_mae: reg.gauge(
                "pinnsoc_adapt_gate_best_candidate_mae",
                "Best candidate's gate score in the most recent round.",
            ),
            quantize_pass: quantize("pass"),
            quantize_fail: quantize("fail"),
            quantize_skip: quantize("skipped"),
            harvested: window("harvested"),
            rejected_uncertain: window("rejected_uncertain_teacher"),
            skipped_stale: window("skipped_stale"),
            skipped_faulty: window("skipped_faulty_tick"),
            cohort_gauges: HashMap::new(),
            last_harvest: HarvestStats::default(),
            hub: Arc::clone(hub),
        }
    }

    pub(crate) fn hub(&self) -> &Arc<ObsHub> {
        &self.hub
    }

    /// Folds one observation tick into the hub: tick/harvest counters,
    /// reservoir and per-cohort drift gauges, and the outcome's books plus
    /// a ring event for anything round-level.
    pub(crate) fn record_tick(
        &mut self,
        statuses: &[DriftStatus],
        harvest: &HarvestStats,
        reservoir: usize,
        outcome: &AdaptOutcome,
    ) {
        let reg = self.hub.registry();
        reg.add(self.ticks, 1);
        reg.set(self.reservoir, reservoir as f64);
        let tick_books = harvest.delta(&self.last_harvest);
        self.last_harvest = *harvest;
        reg.add(self.harvested, tick_books.harvested);
        reg.add(
            self.rejected_uncertain,
            tick_books.rejected_uncertain_teacher,
        );
        reg.add(self.skipped_stale, tick_books.skipped_stale);
        reg.add(self.skipped_faulty, tick_books.skipped_faulty_ticks);
        for status in statuses {
            let (mean, samples) = *self.cohort_gauges.entry(status.cohort).or_insert_with(|| {
                let cohort = status.cohort.to_string();
                let labels: &[(&str, &str)] = &[("cohort", &cohort)];
                (
                    reg.gauge_with(
                        "pinnsoc_adapt_drift_mean_disagreement",
                        "Rolling mean network-vs-teacher SoC disagreement.",
                        labels,
                    ),
                    reg.gauge_with(
                        "pinnsoc_adapt_drift_samples",
                        "Samples in the cohort's rolling drift window.",
                        labels,
                    ),
                )
            });
            reg.set(mean, status.mean_disagreement);
            reg.set(samples, status.samples as f64);
        }
        match outcome {
            AdaptOutcome::Observed | AdaptOutcome::Cooldown => {}
            AdaptOutcome::InsufficientData { reservoir } => {
                reg.add(self.insufficient, 1);
                self.hub.emit(
                    "adapt",
                    format!("drift trigger starved: reservoir holds {reservoir} window(s)"),
                );
            }
            AdaptOutcome::Promoted {
                cohort,
                version,
                incumbent_mae,
                candidate_mae,
            } => {
                reg.add(self.triggers, 1);
                reg.add(self.gate_passes, 1);
                reg.add(self.swaps, 1);
                reg.set(self.incumbent_mae, *incumbent_mae);
                reg.set(self.best_candidate_mae, *candidate_mae);
                self.hub.emit(
                    "adapt",
                    format!(
                        "promoted v{version} for cohort {cohort}: candidate MAE \
                         {candidate_mae:.4} vs incumbent {incumbent_mae:.4}"
                    ),
                );
            }
            AdaptOutcome::Rejected {
                cohort,
                incumbent_mae,
                best_candidate_mae,
            } => {
                reg.add(self.triggers, 1);
                reg.add(self.gate_failures, 1);
                reg.set(self.incumbent_mae, *incumbent_mae);
                reg.set(self.best_candidate_mae, *best_candidate_mae);
                self.hub.emit(
                    "adapt",
                    format!(
                        "gate rejected every candidate for cohort {cohort}: best \
                         {best_candidate_mae:.4} vs incumbent {incumbent_mae:.4}"
                    ),
                );
            }
            // Quantize follow-ups are separate events recorded through
            // `record_quantize`; they never arrive as a tick's outcome.
            AdaptOutcome::QuantizedInstalled { .. }
            | AdaptOutcome::QuantizedRejected { .. }
            | AdaptOutcome::QuantizedSkipped { .. } => {}
        }
    }

    /// Books one post-promotion quantize round by verdict.
    pub(crate) fn record_quantize(&self, outcome: &AdaptOutcome) {
        let reg = self.hub.registry();
        match outcome {
            AdaptOutcome::QuantizedInstalled {
                version,
                incumbent_mae,
                quantized_mae,
            } => {
                reg.add(self.quantize_pass, 1);
                self.hub.emit(
                    "adapt",
                    format!(
                        "quantized shadow installed at v{version}: int8 MAE \
                         {quantized_mae:.4} vs f32 {incumbent_mae:.4}"
                    ),
                );
            }
            AdaptOutcome::QuantizedRejected {
                incumbent_mae,
                quantized_mae,
            } => {
                reg.add(self.quantize_fail, 1);
                self.hub.emit(
                    "adapt",
                    format!(
                        "quantized gate rejected the int8 build: MAE \
                         {quantized_mae:.4} vs f32 {incumbent_mae:.4}; serving stays f32"
                    ),
                );
            }
            AdaptOutcome::QuantizedSkipped { reason } => {
                reg.add(self.quantize_skip, 1);
                self.hub
                    .emit("adapt", format!("quantize round skipped: {reason}"));
            }
            _ => {}
        }
    }

    /// Books one completed adaptation round (wall time and how many
    /// candidates it fine-tuned).
    pub(crate) fn record_round(&self, wall_s: f64, candidates: u64) {
        let reg = self.hub.registry();
        reg.observe(self.round_seconds, wall_s);
        reg.add(self.candidates, candidates);
    }

    /// Books one operator rollback.
    pub(crate) fn record_rollback(&self, version: u64) {
        self.hub.registry().add(self.rollbacks, 1);
        self.hub
            .emit("adapt", format!("rollback: registry back to v{version}"));
    }
}
