//! The adaptation engine: trigger → fine-tune → gate → hot-swap.
//!
//! [`AdaptationEngine::observe_tick`] is the whole loop, called once per
//! fleet processing pass (directly, or through the
//! [`pinnsoc_scenario::FleetObserver`] impl):
//!
//! 1. **Harvest** — the [`Harvester`] walks the fleet, captures gated
//!    pseudo-labeled windows into the replay reservoir, and scores
//!    per-cohort network-vs-teacher disagreement into the
//!    [`DriftDetector`].
//! 2. **Trigger** — when a cohort's rolling disagreement clears the drift
//!    threshold (and the reservoir holds enough windows to be worth
//!    training on), an adaptation round starts.
//! 3. **Fine-tune** — candidate models warm-start from the *currently
//!    served* snapshot and train on the replay mix (harvested windows +
//!    original lab cycles, so the network cannot forget the lab regime)
//!    via [`pinnsoc::train_many_with`] on the engine's persistent
//!    [`pinnsoc_runtime::WorkerPool`] — the same machinery, and the same
//!    bit-identical-across-worker-counts contract, as everything else in
//!    the workspace.
//! 4. **Gate** — every candidate and the incumbent are scored on the
//!    promotion suite (closed-loop scenarios via
//!    [`pinnsoc_scenario::ScenarioRunner`]); only a candidate that beats
//!    the incumbent's network MAE by the configured margin may promote.
//! 5. **Hot-swap** — the winner swaps into the fleet's
//!    [`pinnsoc_fleet::ModelRegistry`] mid-tick (it serves from the next
//!    batch pass), the incumbent is retained for [`AdaptationEngine::
//!    rollback`], and the drift windows reset so the new model earns its
//!    own history. A failed gate changes nothing: the serving model is
//!    untouched, by construction.

use crate::drift::{CohortId, CohortWindow, DriftConfig, DriftDetector, DriftStatus};
use crate::harvest::{HarvestConfig, HarvestStats, Harvester, HarvesterSession};
use crate::obs::AdaptObs;
use pinnsoc::{
    train_many_with, Matrix, QuantizedSocModel, SecondStage, SocModel, TrainConfig, TrainTask,
};
use pinnsoc_data::{Cycle, SocDataset};
use pinnsoc_fleet::{FleetEngine, GateTolerance};
use pinnsoc_obs::ObsHub;
use pinnsoc_runtime::{NoContext, WorkerPool};
use pinnsoc_scenario::{
    gate_quantized, EngineSpec, FleetObserver, QuantizedGateConfig, Scenario, ScenarioRunner,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Promotion-gate configuration: the scenario suite a candidate must beat
/// the incumbent on, and by how much.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Scenarios the gate scores models on (e.g.
    /// [`pinnsoc_scenario::gate_suite`]). Scoring uses the network
    /// estimator's MAE averaged across the suite.
    pub suite: Vec<Scenario>,
    /// Worker threads of the gate's scenario runner (throughput only — the
    /// scores are bit-identical for any value, per the scenario contract).
    pub runner_workers: usize,
    /// Engine configuration of the gate's scenario fleets.
    pub engine: EngineSpec,
    /// Required relative improvement: a candidate promotes only when
    /// `candidate_mae < incumbent_mae * (1 - min_improvement)`. `0` demands
    /// strict improvement; `1` makes the gate impassable.
    pub min_improvement: f64,
}

impl GateConfig {
    fn validate(&self) {
        assert!(!self.suite.is_empty(), "promotion gate needs scenarios");
        for scenario in &self.suite {
            scenario.validate();
        }
        assert!(
            (0.0..=1.0).contains(&self.min_improvement),
            "gate margin must be in [0, 1]"
        );
    }
}

/// Post-promotion int8 quantization. When configured, every promotion is
/// followed by a quantize round: the freshly promoted model is int8-
/// quantized against calibration data drawn from the lab replay cycles
/// plus the harvest reservoir (the same mix it was fine-tuned on), scored
/// through [`pinnsoc_scenario::gate_quantized`] on the promotion suite,
/// and — only on a gate pass — installed as the registry's serving shadow
/// via the minted [`pinnsoc_fleet::GateCertificate`]. A gate failure (or
/// degenerate calibration) changes nothing: serving stays f32.
#[derive(Debug, Clone)]
pub struct QuantizeConfig {
    /// How much accuracy the int8 build may lose versus its f32 source on
    /// the gate suite before it is rejected.
    pub tolerance: GateTolerance,
    /// Calibration rows (one per telemetry record) drawn for activation-
    /// scale calibration, capped across lab and harvested cycles.
    pub calibration_rows: usize,
}

impl QuantizeConfig {
    fn validate(&self) {
        assert!(
            self.calibration_rows > 0,
            "quantization needs at least one calibration row"
        );
    }
}

/// Everything an [`AdaptationEngine`] needs to know.
#[derive(Debug, Clone)]
pub struct AdaptationConfig {
    /// Drift-detector thresholds.
    pub drift: DriftConfig,
    /// Harvesting gates and reservoir sizing.
    pub harvest: HarvestConfig,
    /// Fine-tuning hyper-parameters. Typical online use: the serving
    /// variant with a reduced learning rate, a handful of `b1_epochs`, and
    /// `b2_epochs: 0` (Branch-1-only fine-tune — harvested windows carry no
    /// horizon labels).
    pub fine_tune: TrainConfig,
    /// One fine-tune candidate is trained per seed (each overrides
    /// `fine_tune.seed`); the gate picks the best.
    pub candidate_seeds: Vec<u64>,
    /// The promotion gate.
    pub gate: GateConfig,
    /// Worker threads of the persistent fine-tuning pool (throughput only;
    /// results are bit-identical for any value).
    pub train_workers: usize,
    /// Lab training cycles mixed into every fine-tuning dataset so the
    /// network keeps its lab-regime accuracy (anti-forgetting replay).
    pub lab_cycles: usize,
    /// Minimum harvested windows before a trigger may start a round.
    pub min_reservoir: usize,
    /// Observation ticks to wait after a round (promoted or rejected)
    /// before the next may start.
    pub cooldown_ticks: u64,
    /// When set, every promotion is followed by an int8 quantize round
    /// (see [`QuantizeConfig`]). `None` serves promoted models f32-only.
    pub quantize: Option<QuantizeConfig>,
}

impl AdaptationConfig {
    /// Validates every sub-configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any invalid field.
    pub fn validate(&self) {
        self.drift.validate();
        self.harvest.validate();
        self.fine_tune.validate();
        assert!(
            !self.candidate_seeds.is_empty(),
            "need at least one fine-tune candidate seed"
        );
        self.gate.validate();
        assert!(self.min_reservoir > 0, "min_reservoir must be positive");
        if let Some(quantize) = &self.quantize {
            quantize.validate();
        }
    }
}

/// What one [`AdaptationEngine::observe_tick`] call did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdaptOutcome {
    /// Harvested and scored; no cohort is drifting.
    Observed,
    /// A round just ran; triggers are suppressed for the cooldown window.
    Cooldown,
    /// A cohort is drifting but the reservoir is still too small to train
    /// on.
    InsufficientData {
        /// Windows currently in the reservoir.
        reservoir: usize,
    },
    /// A candidate beat the incumbent and was hot-swapped into the
    /// registry.
    Promoted {
        /// The cohort whose drift triggered the round.
        cohort: CohortId,
        /// Registry version now serving.
        version: u64,
        /// Incumbent's gate score (mean network MAE).
        incumbent_mae: f64,
        /// Promoted candidate's gate score.
        candidate_mae: f64,
    },
    /// Every candidate failed the gate; the serving model is untouched.
    Rejected {
        /// The cohort whose drift triggered the round.
        cohort: CohortId,
        /// Incumbent's gate score (mean network MAE).
        incumbent_mae: f64,
        /// Best candidate's gate score.
        best_candidate_mae: f64,
    },
    /// The just-promoted model's int8 build passed the quantized gate and
    /// was installed as the registry's serving shadow.
    QuantizedInstalled {
        /// Registry version the shadow was installed under.
        version: u64,
        /// The f32 incumbent's mean network MAE on the gate suite.
        incumbent_mae: f64,
        /// The int8 shadow's mean network MAE on the gate suite.
        quantized_mae: f64,
    },
    /// The just-promoted model's int8 build failed the quantized gate; no
    /// certificate was minted and serving stays f32.
    QuantizedRejected {
        /// The f32 incumbent's mean network MAE on the gate suite.
        incumbent_mae: f64,
        /// The rejected int8 build's mean network MAE on the gate suite.
        quantized_mae: f64,
    },
    /// Quantization could not even produce a candidate (degenerate
    /// calibration, or the registry moved mid-round); no gate ran.
    QuantizedSkipped {
        /// Why the round stopped short of the gate.
        reason: String,
    },
}

/// One noteworthy tick in an adaptation session (round-level outcomes:
/// triggers that ran or were starved for data, promotions, rejections —
/// not the per-tick `Observed`/`Cooldown` filler).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptEvent {
    /// Observation tick (1-based, counting [`AdaptationEngine::
    /// observe_tick`] calls).
    pub tick: u64,
    /// What happened.
    pub outcome: AdaptOutcome,
}

/// Cumulative counters of one adaptation session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Observation ticks processed.
    pub ticks_observed: u64,
    /// Drift triggers that started a round.
    pub triggers: u64,
    /// Candidate models fine-tuned.
    pub fine_tuned_candidates: u64,
    /// Rounds whose best candidate passed the gate.
    pub gate_passes: u64,
    /// Rounds whose candidates all failed the gate.
    pub gate_failures: u64,
    /// Hot-swaps performed.
    pub swaps: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Post-promotion quantize rounds whose int8 build passed the
    /// quantized gate and installed as the serving shadow.
    #[serde(default)]
    pub quantize_gate_passes: u64,
    /// Post-promotion quantize rounds whose int8 build failed the
    /// quantized gate (degenerate-calibration skips count here too).
    #[serde(default)]
    pub quantize_gate_failures: u64,
    /// Harvesting accounting.
    pub harvest: HarvestStats,
}

/// Everything of an adaptation session that must survive a process
/// restart: the replay reservoir and its gate baselines, the per-cohort
/// drift windows, the cooldown counter, and the round-level history. The
/// `pinnsoc-durable` snapshot carries it as a named extension blob (see
/// [`AdaptationEngine::export_session_blob`]), so a recovered fleet
/// resumes adapting exactly where the crashed process stopped.
///
/// Models are deliberately **not** in the session: the serving model is
/// already persisted (and recovered) by the fleet snapshot itself, and the
/// rollback/promotion history of `Arc<SocModel>` handles does not outlive
/// the process — after a restart the recovered serving model is the new
/// incumbent with a clean rollback slate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptSession {
    /// Harvester state: reservoir, per-cell timestamps, telemetry books,
    /// accounting.
    pub harvester: HarvesterSession,
    /// Per-cohort drift windows, ascending by cohort.
    pub drift: Vec<CohortWindow>,
    /// Observation ticks still to wait before the next round may trigger.
    pub cooldown: u64,
    /// Session counters.
    pub report: AdaptReport,
    /// Round-level event log.
    pub events: Vec<AdaptEvent>,
}

/// The closed-loop online-adaptation engine. See the module docs.
pub struct AdaptationEngine {
    config: AdaptationConfig,
    harvester: Harvester,
    drift: DriftDetector,
    /// Persistent fine-tuning pool: workers park between rounds.
    pool: WorkerPool<NoContext, TrainTask>,
    /// Original lab data, mixed into every fine-tuning dataset.
    lab: Arc<SocDataset>,
    /// The model displaced by the latest promotion, for [`Self::rollback`].
    previous: Option<Arc<SocModel>>,
    /// The most recently promoted model (survives the serving fleet — the
    /// bench harness scores it against held-out scenarios after the
    /// session's engine is gone).
    promoted: Option<Arc<SocModel>>,
    cooldown: u64,
    report: AdaptReport,
    events: Vec<AdaptEvent>,
    /// Observability handle; `None` runs the loop fully uninstrumented.
    obs: Option<AdaptObs>,
}

impl AdaptationEngine {
    /// An engine adapting against `lab` as the anti-forgetting replay
    /// source.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `lab` has no training
    /// cycles.
    pub fn new(config: AdaptationConfig, lab: Arc<SocDataset>) -> Self {
        config.validate();
        assert!(
            config.lab_cycles == 0 || !lab.train.is_empty(),
            "lab replay requested but the lab dataset has no training cycles"
        );
        let harvester = Harvester::new(config.harvest.clone());
        let drift = DriftDetector::new(config.drift);
        let pool = WorkerPool::new(Arc::new(NoContext), config.train_workers);
        Self {
            config,
            harvester,
            drift,
            pool,
            lab,
            previous: None,
            promoted: None,
            cooldown: 0,
            report: AdaptReport::default(),
            events: Vec::new(),
            obs: None,
        }
    }

    /// Attaches observability: every tick updates `pinnsoc_adapt_*` series
    /// (drift gauges per cohort, harvest books by cause, gate verdicts,
    /// promotion/rollback counters) in `hub`, round-level outcomes land in
    /// the ring log, fine-tune candidates report their `pinnsoc_train_*`
    /// epochs, and the gate's scenario runs record `pinnsoc_scenario_*`
    /// series. Outcomes, promoted weights, and every report stay
    /// **bit-identical** to an unobserved engine — recording only reads
    /// what the loop already computed.
    pub fn attach_obs(&mut self, hub: &Arc<ObsHub>) {
        self.obs = Some(AdaptObs::new(hub));
    }

    /// The attached hub, if any.
    pub fn obs_hub(&self) -> Option<&Arc<ObsHub>> {
        self.obs.as_ref().map(AdaptObs::hub)
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptationConfig {
        &self.config
    }

    /// The harvester (replay buffer + accounting).
    pub fn harvester(&self) -> &Harvester {
        &self.harvester
    }

    /// The drift detector's current per-cohort view.
    pub fn drift_statuses(&self) -> Vec<DriftStatus> {
        self.drift.statuses()
    }

    /// Session counters (harvest stats folded in).
    pub fn report(&self) -> AdaptReport {
        AdaptReport {
            harvest: self.harvester.stats(),
            ..self.report
        }
    }

    /// Every non-trivial tick outcome so far, in tick order.
    pub fn events(&self) -> &[AdaptEvent] {
        &self.events
    }

    /// The most recently promoted model, if any round passed the gate.
    pub fn promoted(&self) -> Option<&Arc<SocModel>> {
        self.promoted.as_ref()
    }

    /// Exports the session state a restart needs (see [`AdaptSession`]).
    pub fn export_session(&self) -> AdaptSession {
        AdaptSession {
            harvester: self.harvester.export_session(),
            drift: self.drift.export_windows(),
            cooldown: self.cooldown,
            report: self.report,
            events: self.events.clone(),
        }
    }

    /// Replaces this engine's session state with a previously exported one.
    /// The engine must be configured identically to the exporter (the
    /// configuration is not part of the session); the fleet it subsequently
    /// observes must be the recovered continuation of the one the exporter
    /// observed, or the carried-over gate baselines are meaningless.
    ///
    /// # Panics
    ///
    /// Panics if the persisted state is inconsistent with this engine's
    /// configuration (reservoir capacity or drift window mismatch).
    pub fn restore_session(&mut self, session: AdaptSession) {
        self.harvester.restore_session(session.harvester);
        self.drift.import_windows(session.drift);
        self.cooldown = session.cooldown;
        self.report = session.report;
        self.events = session.events;
    }

    /// [`Self::export_session`] as a self-describing JSON blob — the
    /// payload for `DurableFleet::set_extension("adapt-session", ...)`.
    pub fn export_session_blob(&self) -> Vec<u8> {
        serde_json::to_string(&self.export_session())
            .expect("adapt session is plain serializable data")
            .into_bytes()
    }

    /// Restores from a blob produced by [`Self::export_session_blob`]
    /// (typically read back through `DurableFleet::extension` after
    /// recovery). Returns an `InvalidData` error on a malformed blob
    /// without touching the engine's state.
    ///
    /// # Errors
    ///
    /// Fails when the blob is not UTF-8 JSON or does not decode to an
    /// [`AdaptSession`].
    pub fn restore_session_blob(&mut self, blob: &[u8]) -> std::io::Result<()> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let text = std::str::from_utf8(blob)
            .map_err(|e| invalid(format!("adapt session blob is not UTF-8: {e}")))?;
        let session: AdaptSession = serde_json::from_str(text)
            .map_err(|e| invalid(format!("adapt session blob does not decode: {e}")))?;
        self.restore_session(session);
        Ok(())
    }

    /// Runs one observation tick against the live fleet: harvest, drift
    /// check, and — when triggered — the full fine-tune → gate → swap
    /// round. A promotion swaps through [`FleetEngine::registry`] and
    /// serves from the fleet's next batch pass.
    ///
    /// The whole loop is deterministic: for a fixed fleet history and
    /// configuration, outcomes (and promoted weights) are bit-identical
    /// regardless of `train_workers`, gate `runner_workers`, or the fleet's
    /// own worker count.
    pub fn observe_tick(&mut self, fleet: &FleetEngine) -> AdaptOutcome {
        self.report.ticks_observed += 1;
        self.harvester.observe_fleet(fleet, &mut self.drift);
        let outcome = self.tick_outcome(fleet);
        // The event log keeps round-level history only; per-tick filler
        // (nothing drifting, cooldown counting down) would bury it.
        if !matches!(outcome, AdaptOutcome::Observed | AdaptOutcome::Cooldown) {
            self.events.push(AdaptEvent {
                tick: self.report.ticks_observed,
                outcome: outcome.clone(),
            });
        }
        if let Some(obs) = self.obs.as_mut() {
            let statuses = self.drift.statuses();
            let stats = self.harvester.stats();
            let reservoir = self.harvester.reservoir().len();
            obs.record_tick(&statuses, &stats, reservoir, &outcome);
        }
        // A promotion immediately tries to earn its int8 serving shadow:
        // the quantize round is its own event at the same tick, and its
        // only path into the registry is a quantized-gate certificate.
        if matches!(outcome, AdaptOutcome::Promoted { .. }) && self.config.quantize.is_some() {
            let followup = self.quantize_round(fleet);
            if let Some(obs) = self.obs.as_ref() {
                obs.record_quantize(&followup);
            }
            self.events.push(AdaptEvent {
                tick: self.report.ticks_observed,
                outcome: followup,
            });
        }
        outcome
    }

    fn tick_outcome(&mut self, fleet: &FleetEngine) -> AdaptOutcome {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return AdaptOutcome::Cooldown;
        }
        let Some(status) = self.drift.triggered() else {
            return AdaptOutcome::Observed;
        };
        if self.harvester.reservoir().len() < self.config.min_reservoir {
            return AdaptOutcome::InsufficientData {
                reservoir: self.harvester.reservoir().len(),
            };
        }
        self.adapt_round(fleet, status)
    }

    /// One full adaptation round against the drifting `status.cohort`.
    fn adapt_round(&mut self, fleet: &FleetEngine, status: DriftStatus) -> AdaptOutcome {
        let round_start = self.obs.as_ref().map(|_| Instant::now());
        self.report.triggers += 1;
        self.cooldown = self.config.cooldown_ticks;
        let incumbent = fleet.registry().current();
        let dataset = self.fine_tune_dataset();

        // Background fine-tune: every candidate warm-starts from the
        // serving snapshot; the persistent pool drains them.
        let tasks: Vec<TrainTask> = self
            .config
            .candidate_seeds
            .iter()
            .map(|&seed| {
                let config = TrainConfig {
                    seed,
                    ..self.config.fine_tune.clone()
                };
                let task = TrainTask::new(Arc::clone(&dataset), config)
                    .warm_started(Arc::clone(&incumbent));
                match &self.obs {
                    Some(obs) => task.observed(Arc::clone(obs.hub())),
                    None => task,
                }
            })
            .collect();
        let candidates = train_many_with(&mut self.pool, tasks);
        self.report.fine_tuned_candidates += candidates.len() as u64;

        // Gate: incumbent and candidates on the same suite; ties break to
        // the earliest seed (deterministic).
        let incumbent_mae = self.gate_score(&incumbent);
        let (best_idx, best_mae) = candidates
            .iter()
            .enumerate()
            .map(|(idx, (model, _))| (idx, self.gate_score(model)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gate scores"))
            .expect("at least one candidate");

        let fine_tuned = candidates.len() as u64;
        let outcome = if best_mae < incumbent_mae * (1.0 - self.config.gate.min_improvement) {
            let (mut promoted, _) = candidates.into_iter().nth(best_idx).expect("indexed");
            promoted.label = format!("{}+adapt{}", incumbent.label, self.report.swaps + 1);
            let promoted = Arc::new(promoted);
            self.promoted = Some(Arc::clone(&promoted));
            self.previous = Some(incumbent);
            let version = fleet.registry().swap((*promoted).clone());
            self.report.gate_passes += 1;
            self.report.swaps += 1;
            // The promoted model must earn its own drift history.
            self.drift.reset();
            AdaptOutcome::Promoted {
                cohort: status.cohort,
                version,
                incumbent_mae,
                candidate_mae: best_mae,
            }
        } else {
            self.report.gate_failures += 1;
            // Keep the windows (the drift is real and still unaddressed)
            // but let the cooldown pace retries.
            AdaptOutcome::Rejected {
                cohort: status.cohort,
                incumbent_mae,
                best_candidate_mae: best_mae,
            }
        };
        if let (Some(obs), Some(start)) = (self.obs.as_ref(), round_start) {
            obs.record_round(start.elapsed().as_secs_f64(), fine_tuned);
        }
        outcome
    }

    /// One post-promotion quantize round: calibrate → quantize → gate →
    /// (on a pass) install the shadow. Serving changes only through the
    /// minted certificate; every other path out of here leaves the
    /// registry's f32-only state untouched.
    fn quantize_round(&mut self, fleet: &FleetEngine) -> AdaptOutcome {
        let quantize = self.config.quantize.as_ref().expect("checked by caller");
        let registry = fleet.registry();
        let incumbent = registry.current();
        let Some((b1, b2)) = self.calibration_matrices(&incumbent, quantize.calibration_rows)
        else {
            self.report.quantize_gate_failures += 1;
            return AdaptOutcome::QuantizedSkipped {
                reason: "no calibration data: lab replay and reservoir are both empty".into(),
            };
        };
        let candidate = match QuantizedSocModel::quantize(Arc::clone(&incumbent), &b1, b2.as_ref())
        {
            Ok(candidate) => Arc::new(candidate),
            Err(error) => {
                self.report.quantize_gate_failures += 1;
                return AdaptOutcome::QuantizedSkipped {
                    reason: error.to_string(),
                };
            }
        };
        let outcome = gate_quantized(
            &candidate,
            &QuantizedGateConfig {
                suite: self.config.gate.suite.clone(),
                runner_workers: self.config.gate.runner_workers,
                engine: self.config.gate.engine,
                tolerance: quantize.tolerance,
                registry_version: registry.version(),
                obs: self.obs.as_ref().map(|obs| Arc::clone(obs.hub())),
            },
        );
        let Some(certificate) = outcome.certificate else {
            self.report.quantize_gate_failures += 1;
            return AdaptOutcome::QuantizedRejected {
                incumbent_mae: outcome.incumbent_mae,
                quantized_mae: outcome.quantized_mae,
            };
        };
        match registry.install_quantized(candidate, &certificate) {
            Ok(version) => {
                self.report.quantize_gate_passes += 1;
                AdaptOutcome::QuantizedInstalled {
                    version,
                    incumbent_mae: outcome.incumbent_mae,
                    quantized_mae: outcome.quantized_mae,
                }
            }
            Err(error) => {
                self.report.quantize_gate_failures += 1;
                AdaptOutcome::QuantizedSkipped {
                    reason: format!("registry refused the certificate: {error}"),
                }
            }
        }
    }

    /// Calibration rows for activation-scale quantization: real telemetry
    /// from the lab replay cycles plus the harvest reservoir — the same
    /// data mix fine-tuning trains on, so the int8 scales cover what the
    /// adapted model actually serves. Returns `None` when no records are
    /// available at all.
    fn calibration_matrices(
        &self,
        model: &SocModel,
        rows: usize,
    ) -> Option<(Matrix, Option<Matrix>)> {
        // Branch 2 predicts across horizons; cycle the calibration rows
        // through short / medium / long so the horizon feature's scale is
        // exercised, not just its shortest value.
        const HORIZONS_S: [f64; 3] = [15.0, 60.0, 300.0];
        let mut b1_rows: Vec<[f64; 3]> = Vec::with_capacity(rows.min(1024));
        let mut b2_rows: Vec<[f64; 4]> = Vec::with_capacity(rows.min(1024));
        let pseudo = self.harvester.pseudo_cycles();
        let lab = self.lab.train.iter().take(self.config.lab_cycles);
        'cycles: for cycle in lab.chain(pseudo.iter()) {
            for record in &cycle.records {
                if b1_rows.len() >= rows {
                    break 'cycles;
                }
                b1_rows.push([record.voltage_v, record.current_a, record.temperature_c]);
                let horizon = HORIZONS_S[b2_rows.len() % HORIZONS_S.len()];
                b2_rows.push([record.soc, record.current_a, record.temperature_c, horizon]);
            }
        }
        if b1_rows.is_empty() {
            return None;
        }
        let b1 = model.branch1.feature_matrix(&b1_rows);
        let b2 = match &model.stage2 {
            SecondStage::Network(branch2) => Some(branch2.feature_matrix(&b2_rows)),
            _ => None,
        };
        Some((b1, b2))
    }

    /// The replay mix: the first `lab_cycles` lab training cycles plus the
    /// reservoir packaged as pseudo-cycles.
    fn fine_tune_dataset(&self) -> Arc<SocDataset> {
        let mut train: Vec<Cycle> = self
            .lab
            .train
            .iter()
            .take(self.config.lab_cycles)
            .cloned()
            .collect();
        train.extend(self.harvester.pseudo_cycles());
        Arc::new(SocDataset {
            name: "adapt-replay".into(),
            train,
            test: Vec::new(),
        })
    }

    /// Mean network MAE of `model` over the gate suite.
    fn gate_score(&self, model: &SocModel) -> f64 {
        let run = ScenarioRunner {
            workers: self.config.gate.runner_workers,
            engine: self.config.gate.engine,
            obs: self.obs.as_ref().map(|obs| Arc::clone(obs.hub())),
        }
        .run(&self.config.gate.suite, model);
        let scenarios = &run.report.scenarios;
        scenarios.iter().map(|s| s.network.mae).sum::<f64>() / scenarios.len() as f64
    }

    /// Restores the model displaced by the latest promotion (the operator's
    /// escape hatch when a gate-passing model still regresses in
    /// production). Returns the new registry version, or `None` when there
    /// is nothing to roll back to.
    pub fn rollback(&mut self, fleet: &FleetEngine) -> Option<u64> {
        let previous = self.previous.take()?;
        self.report.rollbacks += 1;
        self.drift.reset();
        let version = fleet.registry().swap((*previous).clone());
        if let Some(obs) = &self.obs {
            obs.record_rollback(version);
        }
        Some(version)
    }
}

impl FleetObserver for AdaptationEngine {
    fn after_tick(&mut self, fleet: &FleetEngine, _tick: usize, _time_s: f64) {
        self.observe_tick(fleet);
    }
}
