//! Seeded reservoir sampling: the bounded replay buffer behind harvesting.
//!
//! The fleet produces pseudo-labeled windows indefinitely; fine-tuning wants
//! a bounded, *representative* sample of everything seen so far — not just
//! the most recent windows (pure recency forgets the start of a drift) and
//! not an unbounded log. Algorithm R gives exactly that: after `n` pushes
//! into a capacity-`k` reservoir, every pushed item is retained with
//! probability `k/n`, uniformly over the whole stream. All replacement draws
//! come from one seeded RNG, so the buffer's contents are a pure function of
//! `(seed, push sequence)` — the determinism contract the adaptation loop
//! inherits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bounded, seeded, uniformly sampling replay buffer (Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seed: u64,
    seen: u64,
    rng: StdRng,
}

impl<T> Reservoir<T> {
    /// An empty reservoir holding at most `capacity` items, with all
    /// replacement randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            seed,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Rebuilds a reservoir from persisted state: the retained `items` and
    /// the total offer count `seen`, as exported by [`Self::as_slice`] and
    /// [`Self::seen`]. The replacement RNG has no serialized form; instead
    /// its position is restored by replaying the draw sequence — one
    /// `gen_range(0..n)` per past-capacity push, a pure function of
    /// `(seed, push index)` — so a restored reservoir's future contents are
    /// bit-identical to one that never stopped.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `items.len() != min(seen, capacity)`
    /// (the invariant every live reservoir maintains).
    pub fn restore(capacity: usize, seed: u64, seen: u64, items: Vec<T>) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert_eq!(
            items.len() as u64,
            seen.min(capacity as u64),
            "persisted reservoir holds min(seen, capacity) items"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for n in (capacity as u64 + 1)..=seen {
            let _ = rng.gen_range(0..n);
        }
        Self {
            items,
            capacity,
            seed,
            seen,
            rng,
        }
    }

    /// The seed all replacement randomness derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Offers one item to the reservoir. The first `capacity` offers are
    /// always kept; afterwards the item replaces a uniformly drawn slot with
    /// probability `capacity / seen`.
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let j = self.rng.gen_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// Items currently retained (arbitrary but deterministic order).
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Retained item count (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total items ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The bound this reservoir never exceeds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_stays_bounded() {
        let mut r = Reservoir::new(8, 1);
        for k in 0..100u64 {
            r.push(k);
            assert!(r.len() <= 8);
            assert_eq!(r.seen(), k + 1);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn short_streams_keep_everything() {
        let mut r = Reservoir::new(16, 2);
        for k in 0..5u64 {
            r.push(k);
        }
        assert_eq!(r.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_seed_same_contents() {
        let mut a = Reservoir::new(10, 42);
        let mut b = Reservoir::new(10, 42);
        let mut c = Reservoir::new(10, 43);
        for k in 0..500u64 {
            a.push(k);
            b.push(k);
            c.push(k);
        }
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice(), "different seed, different draw");
    }

    #[test]
    fn restore_continues_bit_identically() {
        // Export mid-stream, rebuild, keep pushing into both: the restored
        // reservoir must track the uninterrupted control exactly — both
        // below capacity (no draws to replay) and deep past it.
        for cut in [3u64, 10, 250] {
            let mut control = Reservoir::new(10, 99);
            for k in 0..cut {
                control.push(k);
            }
            let mut restored = Reservoir::restore(
                control.capacity(),
                control.seed(),
                control.seen(),
                control.as_slice().to_vec(),
            );
            assert_eq!(restored.seed(), 99);
            for k in cut..cut + 400 {
                control.push(k);
                restored.push(k);
                assert_eq!(
                    control.as_slice(),
                    restored.as_slice(),
                    "cut {cut}, push {k}"
                );
            }
            assert_eq!(control.seen(), restored.seen());
        }
    }

    #[test]
    #[should_panic(expected = "min(seen, capacity)")]
    fn restore_rejects_inconsistent_state() {
        let _ = Reservoir::restore(4, 0, 100, vec![1u64, 2]);
    }

    #[test]
    fn inclusion_is_uniform_over_long_streams() {
        // After a 400-item stream into a 50-slot reservoir every item should
        // survive with probability 1/8. Check the empirical inclusion rate
        // of four stream strata over many seeds: each must land within a
        // generous band of the expected count (law-of-large-numbers check,
        // deterministic because the seeds are fixed).
        const CAP: usize = 50;
        const STREAM: u64 = 400;
        const SEEDS: u64 = 200;
        let mut stratum_hits = [0u64; 4];
        for seed in 0..SEEDS {
            let mut r = Reservoir::new(CAP, seed);
            for k in 0..STREAM {
                r.push(k);
            }
            for &item in r.as_slice() {
                stratum_hits[(item / (STREAM / 4)) as usize] += 1;
            }
        }
        let expected = (SEEDS * CAP as u64 / 4) as f64;
        for (stratum, &hits) in stratum_hits.iter().enumerate() {
            let ratio = hits as f64 / expected;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "stratum {stratum}: {hits} hits vs expected {expected} (ratio {ratio:.3})"
            );
        }
    }
}
