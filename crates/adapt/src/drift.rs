//! Drift detection: rolling network-vs-teacher disagreement per cohort.
//!
//! The network's estimate and the physics teachers' (EKF / Coulomb) estimate
//! of the *same cell at the same instant* should agree when the network is
//! in-domain; sustained disagreement is the train/serve distribution shift
//! signal. The detector keeps a fixed-size rolling window of absolute
//! disagreements per **cohort** (a SoH bucket — aged sub-fleets drift first)
//! and reports a cohort as drifting once its rolling mean clears a threshold
//! with enough samples behind it. Everything is plain accumulation in
//! deterministic order: same observations, same verdicts, on any host.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A cohort label: cells that drift together (the harvester buckets by
/// state of health).
pub type CohortId = u32;

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Rolling window length per cohort, samples.
    pub window: usize,
    /// Mean absolute network-vs-teacher disagreement (SoC fraction) at
    /// which a cohort counts as drifting.
    pub threshold: f64,
    /// Minimum samples in a cohort's window before it may trigger (a lone
    /// outlier is not drift).
    pub min_samples: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 256,
            threshold: 0.08,
            min_samples: 64,
        }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero window, a non-positive/non-finite threshold, or
    /// `min_samples` exceeding the window.
    pub fn validate(&self) {
        assert!(self.window > 0, "drift window must be positive");
        assert!(
            self.threshold.is_finite() && self.threshold > 0.0,
            "drift threshold must be positive and finite"
        );
        assert!(
            self.min_samples > 0 && self.min_samples <= self.window,
            "min_samples must lie in [1, window]"
        );
    }
}

/// One cohort's rolling disagreement window.
#[derive(Debug, Clone, Default)]
struct Window {
    ring: Vec<f64>,
    next: usize,
}

impl Window {
    fn observe(&mut self, value: f64, capacity: usize) {
        if self.ring.len() < capacity {
            self.ring.push(value);
            return;
        }
        self.ring[self.next] = value;
        self.next = (self.next + 1) % capacity;
    }

    /// Mean recomputed from the ring (a few hundred adds per query beats a
    /// running sum that accumulates float cancellation over months of
    /// uptime; queries happen once per engine tick, not per sample).
    fn mean(&self) -> f64 {
        self.ring.iter().sum::<f64>() / self.ring.len() as f64
    }
}

/// One cohort's rolling window, exported for persistence: the ring
/// contents in storage order plus the next replacement slot. Importing
/// this into a detector with the same [`DriftConfig`] reproduces the
/// original window bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortWindow {
    /// The cohort.
    pub cohort: CohortId,
    /// Ring contents in storage (not arrival) order.
    pub ring: Vec<f64>,
    /// Index the next past-capacity observation overwrites.
    pub next: usize,
}

/// What the detector currently believes about one cohort.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftStatus {
    /// The cohort.
    pub cohort: CohortId,
    /// Rolling mean absolute disagreement.
    pub mean_disagreement: f64,
    /// Samples currently in the window.
    pub samples: usize,
    /// Whether this cohort clears the trigger condition.
    pub drifting: bool,
}

/// Rolling per-cohort network-vs-teacher disagreement scorer.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    cohorts: BTreeMap<CohortId, Window>,
}

impl DriftDetector {
    /// A detector with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DriftConfig) -> Self {
        config.validate();
        Self {
            config,
            cohorts: BTreeMap::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Records one absolute network-vs-teacher disagreement for a cohort.
    /// Non-finite values are ignored (a corrupted estimate is a telemetry
    /// problem, not evidence of model drift).
    pub fn observe(&mut self, cohort: CohortId, disagreement: f64) {
        if !disagreement.is_finite() {
            return;
        }
        self.cohorts
            .entry(cohort)
            .or_default()
            .observe(disagreement.abs(), self.config.window);
    }

    /// Status of one cohort, if it has any samples.
    pub fn status(&self, cohort: CohortId) -> Option<DriftStatus> {
        self.cohorts.get(&cohort).map(|w| {
            let mean = w.mean();
            let samples = w.ring.len();
            DriftStatus {
                cohort,
                mean_disagreement: mean,
                samples,
                drifting: samples >= self.config.min_samples && mean >= self.config.threshold,
            }
        })
    }

    /// Every cohort's status, in ascending cohort order (deterministic).
    pub fn statuses(&self) -> Vec<DriftStatus> {
        self.cohorts
            .keys()
            .map(|&c| self.status(c).expect("cohort present"))
            .collect()
    }

    /// The lowest-numbered drifting cohort, if any — the adaptation
    /// engine's trigger.
    pub fn triggered(&self) -> Option<DriftStatus> {
        self.statuses().into_iter().find(|s| s.drifting)
    }

    /// Clears every cohort's window (called after an adaptation round: the
    /// new model must earn its own disagreement history).
    pub fn reset(&mut self) {
        self.cohorts.clear();
    }

    /// Every cohort's window in ascending cohort order, for persistence.
    pub fn export_windows(&self) -> Vec<CohortWindow> {
        self.cohorts
            .iter()
            .map(|(&cohort, w)| CohortWindow {
                cohort,
                ring: w.ring.clone(),
                next: w.next,
            })
            .collect()
    }

    /// Replaces the detector's state with previously exported windows. The
    /// importing detector must be configured with the same window length
    /// the exporter had, or the restored rings would break the ring-buffer
    /// invariants.
    ///
    /// # Panics
    ///
    /// Panics if a window exceeds the configured length, its `next` slot is
    /// out of range, or a ring value is non-finite (none of which a live
    /// detector can produce — a mismatch means the persisted state belongs
    /// to a different configuration).
    pub fn import_windows(&mut self, windows: Vec<CohortWindow>) {
        self.cohorts.clear();
        for w in windows {
            assert!(
                w.ring.len() <= self.config.window,
                "cohort {}: persisted ring ({}) exceeds configured window ({})",
                w.cohort,
                w.ring.len(),
                self.config.window
            );
            assert!(
                w.next < w.ring.len().max(1),
                "cohort {}: replacement slot {} out of range",
                w.cohort,
                w.next
            );
            assert!(
                w.ring.iter().all(|v| v.is_finite()),
                "cohort {}: persisted ring holds a non-finite value",
                w.cohort
            );
            self.cohorts.insert(
                w.cohort,
                Window {
                    ring: w.ring,
                    next: w.next,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: f64, min_samples: usize) -> DriftDetector {
        DriftDetector::new(DriftConfig {
            window: 16,
            threshold,
            min_samples,
        })
    }

    #[test]
    fn no_samples_no_status() {
        let d = detector(0.1, 4);
        assert_eq!(d.status(0), None);
        assert!(d.triggered().is_none());
        assert!(d.statuses().is_empty());
    }

    #[test]
    fn small_disagreement_never_triggers() {
        let mut d = detector(0.1, 4);
        for _ in 0..100 {
            d.observe(0, 0.01);
        }
        let s = d.status(0).unwrap();
        assert!(!s.drifting);
        assert!((s.mean_disagreement - 0.01).abs() < 1e-12);
        assert_eq!(s.samples, 16, "window caps retained samples");
    }

    #[test]
    fn sustained_disagreement_triggers_after_min_samples() {
        let mut d = detector(0.1, 4);
        for k in 0..3 {
            d.observe(2, 0.5);
            assert!(d.triggered().is_none(), "sample {k}: below min_samples");
        }
        d.observe(2, 0.5);
        let t = d.triggered().expect("drifting");
        assert_eq!(t.cohort, 2);
        assert!(t.drifting);
    }

    #[test]
    fn window_forgets_old_disagreement() {
        let mut d = detector(0.1, 4);
        for _ in 0..16 {
            d.observe(0, 0.9);
        }
        assert!(d.triggered().is_some());
        // A full window of agreement flushes the drift verdict.
        for _ in 0..16 {
            d.observe(0, 0.0);
        }
        assert!(d.triggered().is_none());
    }

    #[test]
    fn cohorts_are_independent_and_reset_clears() {
        let mut d = detector(0.1, 2);
        d.observe(1, 0.4);
        d.observe(1, 0.4);
        d.observe(7, 0.01);
        d.observe(7, 0.01);
        assert_eq!(d.triggered().unwrap().cohort, 1);
        assert!(!d.status(7).unwrap().drifting);
        assert_eq!(d.statuses().len(), 2);
        d.reset();
        assert!(d.statuses().is_empty());
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut d = detector(0.1, 1);
        d.observe(0, f64::NAN);
        d.observe(0, f64::INFINITY);
        assert_eq!(d.status(0), None);
        d.observe(0, -0.5); // magnitude counts, sign does not
        assert!(d.status(0).unwrap().drifting);
    }

    #[test]
    fn export_import_round_trips_and_continues_identically() {
        let mut control = detector(0.1, 4);
        for k in 0..40 {
            control.observe((k % 3) as CohortId, 0.02 * (k % 7) as f64);
        }
        let mut restored = detector(0.1, 4);
        restored.import_windows(control.export_windows());
        assert_eq!(restored.export_windows(), control.export_windows());
        assert_eq!(restored.statuses(), control.statuses());
        // Continuation: the rings wrap at the same slots.
        for k in 0..40 {
            control.observe((k % 3) as CohortId, 0.03 * (k % 5) as f64);
            restored.observe((k % 3) as CohortId, 0.03 * (k % 5) as f64);
        }
        assert_eq!(restored.export_windows(), control.export_windows());
        // Import replaces, never merges.
        restored.import_windows(Vec::new());
        assert!(restored.statuses().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds configured window")]
    fn import_rejects_oversized_windows() {
        let mut d = detector(0.1, 4); // window 16
        d.import_windows(vec![CohortWindow {
            cohort: 0,
            ring: vec![0.0; 17],
            next: 0,
        }]);
    }

    #[test]
    #[should_panic(expected = "min_samples")]
    fn min_samples_beyond_window_rejected() {
        DriftConfig {
            window: 8,
            threshold: 0.1,
            min_samples: 9,
        }
        .validate();
    }
}
