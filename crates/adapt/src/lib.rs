//! # pinnsoc-adapt
//!
//! Online fleet adaptation for the `pinnsoc` workspace: the closed loop
//! that turns the live fleet into its own training-data source.
//!
//! The scenario harness (`pinnsoc-scenario`) exposed the reproduction's
//! biggest gap: the lab-trained two-branch PINN scores an SoC MAE around
//! 0.2 on drive cycles while the onboard EKF sits near 0.01 — classic
//! train/serve distribution shift. A production fleet closes that gap by
//! retraining continuously from its own telemetry. This crate is that
//! loop, composed from every prior subsystem:
//!
//! - A [`Harvester`] taps a live [`pinnsoc_fleet::FleetEngine`] (per-cell
//!   estimator breakdowns, telemetry accounting) and captures `(V, I, T)`
//!   windows **pseudo-labeled by the physics teachers** — the EKF when its
//!   covariance vouches for the label, the Coulomb integral otherwise —
//!   with confidence gating against uncertain teachers and fault-poisoned
//!   ticks. Windows land in a bounded, seeded [`Reservoir`] (Algorithm R:
//!   uniform over the whole stream) and are replayed **mixed with the
//!   original lab data** so fine-tuning cannot forget the lab regime.
//! - A [`DriftDetector`] scores rolling network-vs-teacher disagreement
//!   per SoH **cohort** and decides *when* to adapt.
//! - An [`AdaptationEngine`] reacts to a trigger by fine-tuning candidate
//!   models — warm-started from the currently served snapshot via
//!   [`pinnsoc::train_from`] — on its persistent
//!   [`pinnsoc_runtime::WorkerPool`] in the background.
//! - A **promotion gate** scores incumbent and candidates on a closed-loop
//!   scenario suite ([`pinnsoc_scenario::gate_suite`]); only a candidate
//!   that beats the incumbent's network MAE hot-swaps into the
//!   [`pinnsoc_fleet::ModelRegistry`] mid-tick, with the incumbent kept
//!   for [`AdaptationEngine::rollback`]. A failed gate leaves the serving
//!   model untouched.
//! - An [`AdaptSession`] captures everything the loop must carry across a
//!   process restart — reservoir (RNG position restored by seed-replay),
//!   per-cohort drift windows, gate baselines, cooldown, round history —
//!   as a JSON blob sized for `pinnsoc-durable`'s named snapshot
//!   extensions, so a crash-recovered fleet resumes adapting
//!   bit-identically.
//!
//! Everything is seeded and deterministic: for a fixed fleet history and
//! configuration the harvested buffer, the trigger ticks, the fine-tuned
//! weights, the gate verdicts, and the promoted model are bit-identical
//! across any combination of worker counts — the same contract the fleet,
//! training, and scenario layers already hold.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_adapt::{DriftConfig, DriftDetector};
//!
//! let mut drift = DriftDetector::new(DriftConfig {
//!     window: 8,
//!     threshold: 0.1,
//!     min_samples: 4,
//! });
//! for _ in 0..4 {
//!     drift.observe(0, 0.3); // network and teacher disagree by 0.3 SoC
//! }
//! assert!(drift.triggered().is_some(), "sustained disagreement is drift");
//! ```
//!
//! For the full closed loop — a scenario feeding a live fleet while the
//! adaptation engine harvests, fine-tunes, and hot-swaps — see
//! `examples/online_adaptation.rs` and the `adapt_baseline` bench binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod engine;
pub mod harvest;
mod obs;
pub mod reservoir;

pub use drift::{CohortId, CohortWindow, DriftConfig, DriftDetector, DriftStatus};
pub use engine::{
    AdaptEvent, AdaptOutcome, AdaptReport, AdaptSession, AdaptationConfig, AdaptationEngine,
    GateConfig, QuantizeConfig,
};
pub use harvest::{HarvestConfig, HarvestStats, HarvestedSample, Harvester, HarvesterSession};
pub use reservoir::Reservoir;
