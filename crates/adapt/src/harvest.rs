//! Harvesting: turning live fleet telemetry into pseudo-labeled training
//! windows.
//!
//! Every engine tick the harvester walks the fleet's per-cell estimator
//! breakdowns and captures `(V, I, T) → SoC` windows **pseudo-labeled by
//! the physics teachers** — the EKF when its own covariance says the label
//! is trustworthy, the Coulomb integral when no EKF runs. Confidence gating
//! keeps the replay buffer honest:
//!
//! - a tick whose engine-wide telemetry accounting
//!   ([`pinnsoc_fleet::TelemetryStats`]) shows too high a rejected fraction
//!   is skipped wholesale (a faulting transport poisons labels silently);
//! - a cell whose EKF one-sigma SoC uncertainty exceeds the configured
//!   bound contributes nothing (an uncertain teacher is worse than none);
//! - a cell is sampled at most once per `min_dt_s` of telemetry time, so
//!   fast tickers don't flood the buffer with near-duplicates.
//!
//! Accepted windows feed the seeded [`Reservoir`], giving fine-tuning a
//! bounded, uniform sample over everything harvested so far; the same walk
//! feeds the [`DriftDetector`] with per-cohort network-vs-teacher
//! disagreement. Cohorts are state-of-health buckets (capacity relative to
//! rated), because aged sub-fleets drift out of the lab distribution first.

use crate::drift::{CohortId, DriftDetector};
use crate::reservoir::Reservoir;
use pinnsoc_battery::SimRecord;
use pinnsoc_data::{Cycle, CycleKind, CycleMeta};
use pinnsoc_fleet::{FleetEngine, TelemetryStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Harvesting thresholds and bookkeeping knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvestConfig {
    /// Replay buffer capacity (windows).
    pub reservoir_capacity: usize,
    /// Seed of the reservoir's replacement stream.
    pub seed: u64,
    /// Maximum EKF one-sigma SoC uncertainty a pseudo-label may carry.
    pub max_teacher_std: f64,
    /// Maximum `rejected / delivered` telemetry fraction per tick before
    /// the whole tick is considered fault-poisoned and skipped.
    pub max_rejected_fraction: f64,
    /// Minimum telemetry-time spacing between two windows of one cell,
    /// seconds.
    pub min_dt_s: f64,
    /// Rated (fresh) capacity the SoH cohorts are measured against,
    /// amp-hours.
    pub rated_capacity_ah: f64,
    /// Number of SoH cohorts across `(0, 1]`.
    pub soh_buckets: u32,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        Self {
            reservoir_capacity: 4096,
            seed: 0,
            max_teacher_std: 0.05,
            max_rejected_fraction: 0.5,
            min_dt_s: 5.0,
            rated_capacity_ah: 3.0,
            soh_buckets: 4,
        }
    }
}

impl HarvestConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity/std/spacing/rated-capacity, a
    /// rejected fraction outside `[0, 1]`, or zero cohort buckets.
    pub fn validate(&self) {
        assert!(
            self.reservoir_capacity > 0,
            "reservoir capacity must be positive"
        );
        assert!(
            self.max_teacher_std.is_finite() && self.max_teacher_std > 0.0,
            "teacher std bound must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&self.max_rejected_fraction),
            "rejected fraction bound must be in [0, 1]"
        );
        assert!(
            self.min_dt_s.is_finite() && self.min_dt_s >= 0.0,
            "window spacing must be non-negative and finite"
        );
        assert!(
            self.rated_capacity_ah.is_finite() && self.rated_capacity_ah > 0.0,
            "rated capacity must be positive and finite"
        );
        assert!(self.soh_buckets > 0, "need at least one SoH cohort");
    }

    /// The SoH cohort of a cell with the given capacity: bucket `k` covers
    /// `(k/buckets, (k+1)/buckets]` of the rated capacity, clamped so
    /// over-rated and deeply degraded cells land in the edge buckets.
    pub fn cohort_of(&self, capacity_ah: f64) -> CohortId {
        let soh = (capacity_ah / self.rated_capacity_ah).clamp(0.0, 1.0);
        // 1.0 maps into the top bucket, not one past it.
        ((soh * self.soh_buckets as f64).ceil() as u32).clamp(1, self.soh_buckets) - 1
    }
}

/// One harvested training window: the cell's latest sensor reading,
/// pseudo-labeled by a physics teacher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarvestedSample {
    /// Terminal voltage, volts.
    pub voltage_v: f64,
    /// Current, amps (positive = discharge).
    pub current_a: f64,
    /// Cell temperature, °C.
    pub temperature_c: f64,
    /// The teacher's SoC pseudo-label.
    pub soc_label: f64,
    /// SoH cohort of the source cell.
    pub cohort: CohortId,
}

/// Cumulative harvesting accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarvestStats {
    /// Windows accepted into the reservoir.
    pub harvested: u64,
    /// Windows rejected because the EKF teacher was too uncertain.
    pub rejected_uncertain_teacher: u64,
    /// Windows skipped because the cell was sampled too recently
    /// (`min_dt_s`) or its network estimate was stale.
    pub skipped_stale: u64,
    /// Whole ticks skipped because the engine's telemetry accounting showed
    /// too many rejected reports.
    pub skipped_faulty_ticks: u64,
}

impl HarvestStats {
    /// Per-field difference `self - prev`, saturating at zero — turns two
    /// cumulative snapshots into one interval's books (the observability
    /// layer's per-tick accounting).
    pub fn delta(&self, prev: &HarvestStats) -> HarvestStats {
        HarvestStats {
            harvested: self.harvested.saturating_sub(prev.harvested),
            rejected_uncertain_teacher: self
                .rejected_uncertain_teacher
                .saturating_sub(prev.rejected_uncertain_teacher),
            skipped_stale: self.skipped_stale.saturating_sub(prev.skipped_stale),
            skipped_faulty_ticks: self
                .skipped_faulty_ticks
                .saturating_sub(prev.skipped_faulty_ticks),
        }
    }
}

/// A harvester's complete persistent state, exported for crash-safe
/// storage (the `pinnsoc-durable` snapshot carries it as a named extension
/// blob). Restoring it into a harvester with the same [`HarvestConfig`]
/// resumes harvesting bit-identically: the reservoir's replacement RNG is
/// rebuilt by seed-replay, and the gates' baselines (per-cell timestamps,
/// telemetry books) carry over so no window is double-admitted or
/// spuriously rate-limited across the restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvesterSession {
    /// Total windows ever offered to the reservoir.
    pub reservoir_seen: u64,
    /// Retained reservoir contents, in storage order.
    pub reservoir_items: Vec<HarvestedSample>,
    /// Last harvested telemetry timestamp per cell, ascending by id
    /// (sorted so the exported blob is deterministic).
    pub last_window_s: Vec<(u64, f64)>,
    /// Engine telemetry books at the last observed tick.
    pub last_telemetry: TelemetryStats,
    /// Cumulative accounting.
    pub stats: HarvestStats,
}

/// Taps a [`FleetEngine`] for pseudo-labeled windows and disagreement
/// observations. See the module docs for the gating rules.
#[derive(Debug, Clone)]
pub struct Harvester {
    config: HarvestConfig,
    reservoir: Reservoir<HarvestedSample>,
    /// Last harvested telemetry timestamp per cell (`min_dt_s` gate).
    last_window_s: HashMap<u64, f64>,
    /// Engine telemetry books at the previous tick (delta gate).
    last_telemetry: TelemetryStats,
    stats: HarvestStats,
}

impl Harvester {
    /// A harvester with an empty reservoir.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: HarvestConfig) -> Self {
        config.validate();
        let reservoir = Reservoir::new(config.reservoir_capacity, config.seed);
        Self {
            config,
            reservoir,
            last_window_s: HashMap::new(),
            last_telemetry: TelemetryStats::default(),
            stats: HarvestStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HarvestConfig {
        &self.config
    }

    /// The replay buffer.
    pub fn reservoir(&self) -> &Reservoir<HarvestedSample> {
        &self.reservoir
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> HarvestStats {
        self.stats
    }

    /// Exports everything a restart needs (see [`HarvesterSession`]).
    pub fn export_session(&self) -> HarvesterSession {
        let mut last_window_s: Vec<(u64, f64)> =
            self.last_window_s.iter().map(|(&id, &t)| (id, t)).collect();
        last_window_s.sort_unstable_by_key(|&(id, _)| id);
        HarvesterSession {
            reservoir_seen: self.reservoir.seen(),
            reservoir_items: self.reservoir.as_slice().to_vec(),
            last_window_s,
            last_telemetry: self.last_telemetry,
            stats: self.stats,
        }
    }

    /// Replaces this harvester's state with a previously exported session.
    /// The configuration (capacity, seed, gates) is **not** part of the
    /// session — it comes from this harvester's own [`HarvestConfig`],
    /// which must match the exporter's for the resume to be exact.
    ///
    /// # Panics
    ///
    /// Panics if the persisted reservoir is inconsistent with this
    /// harvester's capacity (see [`Reservoir::restore`]).
    pub fn restore_session(&mut self, session: HarvesterSession) {
        self.reservoir = Reservoir::restore(
            self.config.reservoir_capacity,
            self.config.seed,
            session.reservoir_seen,
            session.reservoir_items,
        );
        self.last_window_s = session.last_window_s.into_iter().collect();
        self.last_telemetry = session.last_telemetry;
        self.stats = session.stats;
    }

    /// Walks the fleet once: harvests gated windows into the reservoir and
    /// feeds per-cohort network-vs-teacher disagreement into `drift`. Call
    /// after each engine processing pass.
    pub fn observe_fleet(&mut self, fleet: &FleetEngine, drift: &mut DriftDetector) {
        let books = fleet.telemetry_stats();
        // Cumulative counters running backwards mean a *different* fleet is
        // being observed now (engines count from construction): the old
        // fleet's baselines — books and harvest timestamps alike — say
        // nothing about this one.
        if books.accepted < self.last_telemetry.accepted
            || books.rejected() < self.last_telemetry.rejected()
        {
            self.last_telemetry = TelemetryStats::default();
            self.last_window_s.clear();
        }
        // Tick-level telemetry-quality gate: when the transport is visibly
        // faulting, labels integrated from that telemetry are suspect.
        let tick_books = books.delta(&self.last_telemetry);
        let accepted = tick_books.accepted;
        let rejected = tick_books.rejected();
        self.last_telemetry = books;
        if accepted == 0 {
            return;
        }
        let delivered = accepted + rejected;
        if rejected as f64 / delivered as f64 > self.config.max_rejected_fraction {
            self.stats.skipped_faulty_ticks += 1;
            return;
        }
        for id in fleet.ids() {
            let Some(breakdown) = fleet.estimate_breakdown(id) else {
                continue;
            };
            // Disagreement needs a network estimate covering the latest
            // telemetry — a stale one would score an old model state.
            let Some(network) = breakdown.network.filter(|_| breakdown.network_fresh) else {
                self.stats.skipped_stale += 1;
                continue;
            };
            // Teacher: EKF when trustworthy, Coulomb when no EKF runs.
            let teacher = match (breakdown.ekf, breakdown.ekf_soc_std) {
                (Some(soc), Some(std)) => {
                    if std > self.config.max_teacher_std {
                        self.stats.rejected_uncertain_teacher += 1;
                        continue;
                    }
                    soc
                }
                _ => breakdown.coulomb,
            };
            let snapshot = fleet.cell(id).expect("breakdown implies registration");
            let Some(latest) = snapshot.latest else {
                continue;
            };
            let cohort = self.config.cohort_of(snapshot.capacity_ah);
            drift.observe(cohort, network - teacher);
            // Reservoir admission: at most one window per min_dt_s of
            // telemetry time per cell.
            if let Some(&last) = self.last_window_s.get(&id) {
                if latest.time_s - last < self.config.min_dt_s {
                    self.stats.skipped_stale += 1;
                    continue;
                }
            }
            self.last_window_s.insert(id, latest.time_s);
            self.reservoir.push(HarvestedSample {
                voltage_v: latest.voltage_v,
                current_a: latest.current_a,
                temperature_c: latest.temperature_c,
                soc_label: teacher,
                cohort,
            });
            self.stats.harvested += 1;
        }
    }

    /// Packages the reservoir into pseudo-cycles for the fine-tuning
    /// dataset (chunks of at most 255 windows, synthetic uniform
    /// timestamps). Only Branch-1 estimation samples are extracted from
    /// these — they are deliberately too short and too irregular for
    /// horizon windowing — so the fine-tune config pairs them with real lab
    /// cycles and `b2_epochs: 0`.
    pub fn pseudo_cycles(&self) -> Vec<Cycle> {
        self.reservoir
            .as_slice()
            .chunks(255)
            .enumerate()
            .map(|(chunk, samples)| {
                let records = samples
                    .iter()
                    .enumerate()
                    .map(|(k, s)| SimRecord {
                        time_s: k as f64,
                        voltage_v: s.voltage_v,
                        current_a: s.current_a,
                        temperature_c: s.temperature_c,
                        soc: s.soc_label,
                    })
                    .collect();
                Cycle::new(
                    CycleMeta {
                        kind: CycleKind::Mixed {
                            index: (chunk + 1).min(u8::MAX as usize) as u8,
                        },
                        ambient_c: 25.0,
                        cell: "harvested".into(),
                        capacity_ah: self.config.rated_capacity_ah,
                    },
                    1.0,
                    records,
                )
            })
            .collect()
    }
}
