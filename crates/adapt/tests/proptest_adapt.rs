//! Property-based tests for the adaptation primitives: the replay
//! reservoir's sampling invariants and the drift detector's response
//! shape.

use pinnsoc_adapt::{DriftConfig, DriftDetector, Reservoir};
use proptest::prelude::*;

proptest! {
    #[test]
    fn reservoir_never_exceeds_capacity(
        capacity in 1usize..64,
        stream in 0u64..500,
        seed in 0u64..1000,
    ) {
        let mut r = Reservoir::new(capacity, seed);
        for k in 0..stream {
            r.push(k);
            prop_assert!(r.len() <= capacity);
            prop_assert_eq!(r.seen(), k + 1);
        }
        prop_assert_eq!(r.len(), capacity.min(stream as usize));
        // Every retained item came from the stream.
        for &item in r.as_slice() {
            prop_assert!(item < stream.max(1));
        }
    }

    #[test]
    fn reservoir_is_deterministic_per_seed(
        capacity in 1usize..32,
        stream in 1u64..300,
        seed in 0u64..1000,
    ) {
        let mut a = Reservoir::new(capacity, seed);
        let mut b = Reservoir::new(capacity, seed);
        for k in 0..stream {
            a.push(k);
            b.push(k);
        }
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn drift_never_triggers_on_clean_telemetry(
        disagreements in proptest::collection::vec(0.0f64..0.049, 1..200),
        cohort in 0u32..8,
    ) {
        // Every observed disagreement sits below the threshold, so no
        // window mean can reach it: a clean fleet must never trigger.
        let mut d = DriftDetector::new(DriftConfig {
            window: 32,
            threshold: 0.05,
            min_samples: 1,
        });
        for &x in &disagreements {
            d.observe(cohort, x);
            prop_assert!(d.triggered().is_none());
        }
        let status = d.status(cohort).expect("observed");
        prop_assert!(status.mean_disagreement < 0.05);
    }

    #[test]
    fn drift_mean_responds_monotonically_to_injected_disagreement(
        base in 0.0f64..0.2,
        boost in 0.001f64..0.5,
        samples in 1usize..64,
    ) {
        // Two identical detectors, one fed a uniformly larger disagreement:
        // its rolling mean must be strictly larger, and it can never
        // trigger later than the smaller one.
        let config = DriftConfig { window: 32, threshold: 0.15, min_samples: 4 };
        let mut low = DriftDetector::new(config);
        let mut high = DriftDetector::new(config);
        for _ in 0..samples {
            low.observe(0, base);
            high.observe(0, base + boost);
            let m_low = low.status(0).unwrap().mean_disagreement;
            let m_high = high.status(0).unwrap().mean_disagreement;
            prop_assert!(m_high > m_low, "means {m_high} !> {m_low}");
            if low.triggered().is_some() {
                prop_assert!(high.triggered().is_some(), "monotone trigger");
            }
        }
    }

    #[test]
    fn drift_triggers_once_sustained_disagreement_clears_threshold(
        level in 0.2f64..1.0,
        min_samples in 1usize..16,
    ) {
        let mut d = DriftDetector::new(DriftConfig {
            window: 32,
            threshold: 0.15,
            min_samples,
        });
        for k in 0..min_samples {
            prop_assert!(d.triggered().is_none(), "early trigger at {k}");
            d.observe(3, level);
        }
        let t = d.triggered().expect("sustained drift must trigger");
        prop_assert_eq!(t.cohort, 3);
    }
}
