//! Harvester gating tests against a live fleet engine: what gets into the
//! replay buffer, what is rejected, and why.

use pinnsoc_adapt::{DriftConfig, DriftDetector, HarvestConfig, Harvester};
use pinnsoc_battery::CellParams;
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};

fn drift() -> DriftDetector {
    DriftDetector::new(DriftConfig {
        window: 64,
        threshold: 0.05,
        min_samples: 8,
    })
}

fn engine(cells: u64, ekf: bool) -> FleetEngine {
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 2,
            micro_batch: 16,
            workers: 0,
            ekf_fallback: ekf.then(CellParams::nmc_18650),
            ..FleetConfig::default()
        },
    );
    for id in 0..cells {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    engine
}

fn feed(engine: &mut FleetEngine, cells: u64, t: f64) {
    for id in 0..cells {
        engine.ingest(
            id,
            Telemetry {
                time_s: t,
                voltage_v: 3.6 + id as f64 * 0.01,
                current_a: 1.0,
                temperature_c: 25.0,
            },
        );
    }
    engine.process_pending();
}

fn config() -> HarvestConfig {
    HarvestConfig {
        reservoir_capacity: 256,
        seed: 7,
        min_dt_s: 5.0,
        ..HarvestConfig::default()
    }
}

#[test]
fn harvests_coulomb_labels_when_ekf_disabled() {
    let mut engine = engine(10, false);
    let mut harvester = Harvester::new(config());
    let mut drift = drift();
    for tick in 0..4 {
        feed(&mut engine, 10, tick as f64 * 10.0);
        harvester.observe_fleet(&engine, &mut drift);
    }
    let stats = harvester.stats();
    assert_eq!(stats.harvested, 40, "10 cells x 4 ticks, all clean");
    assert_eq!(stats.rejected_uncertain_teacher, 0);
    assert_eq!(stats.skipped_faulty_ticks, 0);
    for sample in harvester.reservoir().as_slice() {
        assert!((0.0..=1.0).contains(&sample.soc_label), "Coulomb label");
        assert_eq!(sample.cohort, harvester.config().cohort_of(3.0));
    }
    // Drift observations flowed too: the untrained network disagrees with
    // the Coulomb teacher.
    assert!(drift.status(sample_cohort(&harvester)).is_some());
}

fn sample_cohort(harvester: &Harvester) -> u32 {
    harvester.reservoir().as_slice()[0].cohort
}

#[test]
fn uncertain_ekf_teacher_is_rejected() {
    // An EKF fresh off registration carries sqrt(0.05) ≈ 0.22 SoC sigma; a
    // tight bound must reject every window until the filter converges.
    let mut engine = engine(6, true);
    let mut harvester = Harvester::new(HarvestConfig {
        max_teacher_std: 1e-6,
        ..config()
    });
    let mut drift = drift();
    feed(&mut engine, 6, 10.0);
    harvester.observe_fleet(&engine, &mut drift);
    let stats = harvester.stats();
    assert_eq!(stats.harvested, 0);
    assert_eq!(stats.rejected_uncertain_teacher, 6);
    assert!(harvester.reservoir().is_empty());
    assert!(drift.statuses().is_empty(), "no teacher, no drift signal");
}

#[test]
fn converged_ekf_teacher_is_accepted() {
    let mut engine = engine(4, true);
    let mut harvester = Harvester::new(config());
    let mut drift = drift();
    // Plenty of voltage corrections: the EKF covariance collapses well
    // under the default 0.05 sigma bound.
    for tick in 1..=30 {
        feed(&mut engine, 4, tick as f64 * 10.0);
    }
    harvester.observe_fleet(&engine, &mut drift);
    let stats = harvester.stats();
    assert_eq!(stats.harvested, 4);
    assert_eq!(stats.rejected_uncertain_teacher, 0);
}

#[test]
fn fault_poisoned_ticks_are_skipped_wholesale() {
    let mut engine = engine(8, false);
    let mut harvester = Harvester::new(HarvestConfig {
        max_rejected_fraction: 0.3,
        ..config()
    });
    let mut drift = drift();
    feed(&mut engine, 8, 10.0);
    harvester.observe_fleet(&engine, &mut drift);
    assert_eq!(harvester.stats().harvested, 8);
    // Next tick: half the fleet reports NaNs — rejected fraction 0.5 > 0.3.
    for id in 0..8u64 {
        let mut t = Telemetry {
            time_s: 20.0,
            voltage_v: 3.6,
            current_a: 1.0,
            temperature_c: 25.0,
        };
        if id % 2 == 0 {
            t.voltage_v = f64::NAN;
        }
        engine.ingest(id, t);
    }
    engine.process_pending();
    harvester.observe_fleet(&engine, &mut drift);
    let stats = harvester.stats();
    assert_eq!(stats.skipped_faulty_ticks, 1);
    assert_eq!(stats.harvested, 8, "poisoned tick contributed nothing");
}

#[test]
fn min_dt_spacing_limits_per_cell_windows() {
    let mut engine = engine(5, false);
    let mut harvester = Harvester::new(HarvestConfig {
        min_dt_s: 60.0,
        ..config()
    });
    let mut drift = drift();
    for tick in 1..=6 {
        feed(&mut engine, 5, tick as f64 * 10.0); // 10 s apart < 60 s
        harvester.observe_fleet(&engine, &mut drift);
    }
    // First tick harvests everyone; the next five are within the spacing.
    assert_eq!(harvester.stats().harvested, 5);
    feed(&mut engine, 5, 120.0);
    harvester.observe_fleet(&engine, &mut drift);
    assert_eq!(harvester.stats().harvested, 10, "spacing elapsed");
}

#[test]
fn observing_a_second_fleet_resets_the_baselines() {
    // One harvester, two fleets in sequence (the AdaptationEngine is a
    // reusable observer): the second engine's cumulative telemetry books
    // restart at zero and its timestamps restart at t=0 — neither may
    // underflow the delta gate nor be suppressed by the first fleet's
    // harvest timestamps.
    let mut harvester = Harvester::new(config());
    let mut drift = drift();
    let mut first = engine(6, false);
    for tick in 1..=5 {
        feed(&mut first, 6, tick as f64 * 10.0);
        harvester.observe_fleet(&first, &mut drift);
    }
    assert_eq!(harvester.stats().harvested, 30);
    let mut second = engine(6, false);
    feed(&mut second, 6, 10.0);
    harvester.observe_fleet(&second, &mut drift);
    let stats = harvester.stats();
    assert_eq!(stats.harvested, 36, "second fleet harvests from scratch");
    assert_eq!(stats.skipped_faulty_ticks, 0);
}

#[test]
fn min_dt_skips_are_counted_as_stale() {
    let mut engine = engine(3, false);
    let mut harvester = Harvester::new(HarvestConfig {
        min_dt_s: 60.0,
        ..config()
    });
    let mut drift = drift();
    feed(&mut engine, 3, 10.0);
    harvester.observe_fleet(&engine, &mut drift);
    feed(&mut engine, 3, 20.0);
    harvester.observe_fleet(&engine, &mut drift);
    let stats = harvester.stats();
    assert_eq!(stats.harvested, 3);
    assert_eq!(stats.skipped_stale, 3, "rate-limited windows are counted");
}

#[test]
fn soh_cohorts_bucket_by_capacity() {
    let config = HarvestConfig {
        rated_capacity_ah: 3.0,
        soh_buckets: 4,
        ..HarvestConfig::default()
    };
    assert_eq!(config.cohort_of(3.0), 3, "fresh cell in the top bucket");
    assert_eq!(config.cohort_of(3.5), 3, "over-rated clamps to top");
    assert_eq!(config.cohort_of(2.4), 3, "SoH 0.8 -> bucket (0.75, 1.0]");
    assert_eq!(config.cohort_of(2.2), 2);
    assert_eq!(config.cohort_of(1.6), 2, "SoH 0.53 -> bucket (0.5, 0.75]");
    assert_eq!(config.cohort_of(0.9), 1);
    assert_eq!(config.cohort_of(0.1), 0);
    assert_eq!(config.cohort_of(0.0), 0, "degenerate clamps to bottom");
}

#[test]
fn pseudo_cycles_package_the_reservoir() {
    let mut engine = engine(12, false);
    let mut harvester = Harvester::new(config());
    let mut drift = drift();
    for tick in 1..=3 {
        feed(&mut engine, 12, tick as f64 * 10.0);
        harvester.observe_fleet(&engine, &mut drift);
    }
    let cycles = harvester.pseudo_cycles();
    assert_eq!(cycles.len(), 1, "36 windows fit one chunk");
    let cycle = &cycles[0];
    assert_eq!(cycle.len(), harvester.reservoir().len());
    assert_eq!(cycle.meta.cell, "harvested");
    for (record, sample) in cycle.records.iter().zip(harvester.reservoir().as_slice()) {
        assert_eq!(record.voltage_v, sample.voltage_v);
        assert_eq!(record.soc, sample.soc_label);
    }
    // Empty reservoir packages to nothing.
    assert!(Harvester::new(config()).pseudo_cycles().is_empty());
}
