//! Adaptation-session persistence: the reservoir, drift windows, gate
//! baselines, and round history survive a process restart — both as a
//! plain blob round-trip and through a real `pinnsoc-durable` crash →
//! recover cycle — and the resumed session continues bit-identically to
//! an uninterrupted control.

use pinnsoc::{PinnVariant, TrainConfig};
use pinnsoc_adapt::{AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig, HarvestConfig};
use pinnsoc_data::SocDataset;
use pinnsoc_durable::{recover, DurableConfig, DurableFleet};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_scenario::{smoke_suite, EngineSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CELLS: u64 = 12;
const CRASH_TICK: u64 = 9;
const TOTAL_TICKS: u64 = 18;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "pinnsoc-adapt-session-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A config whose drift trigger fires on the untrained network's large
/// network-vs-Coulomb disagreement, but whose `min_reservoir` is set far
/// out of reach — every trigger lands as a cheap `InsufficientData` event
/// (round history to persist) without ever fine-tuning.
fn config() -> AdaptationConfig {
    AdaptationConfig {
        drift: DriftConfig {
            window: 32,
            threshold: 0.02,
            min_samples: 16,
        },
        harvest: HarvestConfig {
            reservoir_capacity: 64,
            seed: 11,
            min_dt_s: 15.0,
            rated_capacity_ah: 3.0,
            ..HarvestConfig::default()
        },
        fine_tune: TrainConfig {
            b1_epochs: 1,
            b2_epochs: 0,
            ..TrainConfig::sandia(PinnVariant::NoPinn, 0)
        },
        candidate_seeds: vec![1],
        gate: GateConfig {
            suite: smoke_suite(3),
            runner_workers: 0,
            engine: EngineSpec::default(),
            min_improvement: 0.0,
        },
        train_workers: 0,
        lab_cycles: 0,
        min_reservoir: usize::MAX,
        cooldown_ticks: 4,
        quantize: None,
    }
}

fn adapt_engine() -> AdaptationEngine {
    let lab = Arc::new(SocDataset {
        name: "empty-lab".into(),
        train: Vec::new(),
        test: Vec::new(),
    });
    AdaptationEngine::new(config(), lab)
}

fn fleet() -> FleetEngine {
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 2,
            micro_batch: 16,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..CELLS {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                // Spread capacities across SoH cohorts so several drift
                // windows exist to persist.
                capacity_ah: 3.0 - (id % 4) as f64 * 0.6,
            },
        );
    }
    engine
}

fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.6 + id as f64 * 0.005 - tick as f64 * 0.002,
        current_a: 1.0 + (id % 3) as f64 * 0.25,
        temperature_c: 25.0,
    }
}

/// Two engines must agree on everything observable.
fn assert_sessions_match(control: &AdaptationEngine, resumed: &AdaptationEngine, at: u64) {
    assert_eq!(
        control.export_session(),
        resumed.export_session(),
        "sessions diverged at tick {at}"
    );
    assert_eq!(
        control.report(),
        resumed.report(),
        "reports diverged at tick {at}"
    );
    assert_eq!(control.events(), resumed.events());
    assert_eq!(control.drift_statuses(), resumed.drift_statuses());
}

#[test]
fn session_blob_round_trips_and_continues_identically() {
    let mut engine = fleet();
    let mut control = adapt_engine();
    for tick in 1..=CRASH_TICK {
        for id in 0..CELLS {
            engine.ingest(id, feed(tick, id));
        }
        engine.process_pending();
        control.observe_tick(&engine);
    }
    assert!(
        !control.events().is_empty(),
        "test premise: the untrained network must have triggered by now"
    );

    let mut resumed = adapt_engine();
    resumed
        .restore_session_blob(&control.export_session_blob())
        .expect("blob decodes");
    assert_sessions_match(&control, &resumed, CRASH_TICK);

    // Both observe the same live fleet from here: outcomes and state must
    // stay identical tick for tick.
    for tick in CRASH_TICK + 1..=TOTAL_TICKS {
        for id in 0..CELLS {
            engine.ingest(id, feed(tick, id));
        }
        engine.process_pending();
        let a = control.observe_tick(&engine);
        let b = resumed.observe_tick(&engine);
        assert_eq!(a, b, "outcomes diverged at tick {tick}");
        assert_sessions_match(&control, &resumed, tick);
    }
    assert!(control.report().harvest.harvested > 0, "windows flowed");
}

#[test]
fn malformed_blob_is_rejected_without_state_change() {
    let mut engine = adapt_engine();
    let before = engine.export_session();
    for garbage in [&b"not json"[..], &[0xFF, 0xFE][..], b"{\"half\":"] {
        let err = engine.restore_session_blob(garbage).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
    assert_eq!(
        engine.export_session(),
        before,
        "failed restore mutated state"
    );
}

/// The full restart story: the session rides the durable snapshot as the
/// `adapt-session` extension blob, the process dies, and the recovered
/// fleet + restored session finish the run bit-identical to a control
/// that never crashed — estimates and adaptation state both.
#[test]
fn session_survives_durable_recovery() {
    // Control: uninterrupted fleet + adaptation engine.
    let mut control_fleet = fleet();
    let mut control = adapt_engine();
    for tick in 1..=TOTAL_TICKS {
        for id in 0..CELLS {
            control_fleet.ingest(id, feed(tick, id));
        }
        control_fleet.process_pending();
        control.observe_tick(&control_fleet);
    }

    // Doomed process: same feed through a DurableFleet, session blob
    // refreshed into the extension slot each tick, snapshot at the crash
    // boundary, then dropped cold.
    let dir = tmpdir();
    let durable_config = DurableConfig::new(&dir);
    let mut durable =
        DurableFleet::create(fleet(), durable_config.clone()).expect("create durable fleet");
    let mut adapt = adapt_engine();
    for tick in 1..=CRASH_TICK {
        for id in 0..CELLS {
            durable.ingest(id, feed(tick, id));
        }
        durable.process_pending().expect("tick commits");
        adapt.observe_tick(durable.engine());
        durable
            .set_extension("adapt-session", adapt.export_session_blob())
            .expect("session blob under the WAL record cap");
    }
    durable.snapshot_now().expect("snapshot at crash boundary");
    drop(durable);
    drop(adapt);

    // Restart: recover the fleet, restore the session from the snapshot's
    // extension blob, finish the run.
    let (mut durable, report) = recover(durable_config, 0).expect("recovery");
    assert_eq!(report.tick, CRASH_TICK);
    let mut adapt = adapt_engine();
    let blob = durable
        .extension("adapt-session")
        .expect("session blob survived the snapshot")
        .to_vec();
    adapt.restore_session_blob(&blob).expect("session restores");
    for tick in CRASH_TICK + 1..=TOTAL_TICKS {
        for id in 0..CELLS {
            durable.ingest(id, feed(tick, id));
        }
        durable.process_pending().expect("tick commits");
        adapt.observe_tick(durable.engine());
        durable
            .set_extension("adapt-session", adapt.export_session_blob())
            .expect("session blob under the WAL record cap");
    }

    // Adaptation state matches the never-crashed control exactly...
    assert_sessions_match(&control, &adapt, TOTAL_TICKS);
    // ...and so do the fleet's estimates, bit for bit.
    for id in 0..CELLS {
        let (a, src_a) = control_fleet.estimate(id).expect("control estimate");
        let (b, src_b) = durable.engine().estimate(id).expect("recovered estimate");
        assert_eq!(a.to_bits(), b.to_bits(), "cell {id} SoC diverged");
        assert_eq!(src_a, src_b, "cell {id} estimator source diverged");
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
