//! Crash-recovery bit-identity: a seeded scenario killed at a random tick,
//! recovered, and driven to completion must produce final per-cell
//! estimates bit-identical to an uninterrupted control — at worker counts
//! 0 and 2, for every crash point.

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_scenario::{
    run_crash_scenario, smoke_suite, CrashPlan, CrashPoint, EngineSpec, Scenario,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "pinnsoc-crash-it-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn check(scenario: &Scenario, plan: &CrashPlan, workers: usize) {
    let engine = EngineSpec {
        workers,
        ..EngineSpec::default()
    };
    let dir = tmpdir();
    let run = run_crash_scenario(scenario, &untrained_model(), &engine, plan, &dir, None)
        .expect("crash scenario I/O");
    assert!(
        run.bit_identical(),
        "{}: kill at tick {} ({:?}, workers {workers}) resumed at {} and diverged \
         (recovery: {:?})",
        scenario.name,
        plan.kill_tick,
        plan.point,
        run.resumed_tick,
        run.recovery,
    );
    assert!(run.resumed_tick <= plan.kill_tick);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random kill tick × random smoke scenario × every crash point, at
    /// workers 0 and 2. The transport-chaos scenario is in the pool, so
    /// the fast-forward's fault-channel replay (held/reordered packets
    /// straddling the crash) is exercised too.
    #[test]
    fn crash_recovery_is_bit_identical(kill in 1u64..29, pick in 0usize..3) {
        let scenario = &smoke_suite(2_024)[pick];
        for point in [CrashPoint::MidTick, CrashPoint::MidSnapshot, CrashPoint::MidRotation] {
            for workers in [0usize, 2] {
                check(scenario, &CrashPlan::at_tick(kill).with_point(point), workers);
            }
        }
    }
}

/// Recovery counters land in the hub when one is attached.
#[test]
fn recovery_counters_reach_the_hub() {
    let scenario = &smoke_suite(7)[0];
    let hub = pinnsoc_obs::ObsHub::new();
    let dir = tmpdir();
    let run = run_crash_scenario(
        scenario,
        &untrained_model(),
        &EngineSpec::default(),
        &CrashPlan::at_tick(5),
        &dir,
        Some(&hub),
    )
    .expect("crash scenario I/O");
    assert!(run.bit_identical());
    let snap = hub.snapshot();
    assert_eq!(
        snap.metrics
            .counter_total("pinnsoc_durable_recoveries_total"),
        1
    );
    assert!(
        snap.metrics
            .find("pinnsoc_durable_recovery_snapshot_age_ticks", &[])
            .is_some(),
        "snapshot-age gauge missing"
    );
    assert!(
        snap.events
            .iter()
            .any(|e| e.source == "durable" && e.message.contains("recovered tick")),
        "recovery event missing from the ring"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
