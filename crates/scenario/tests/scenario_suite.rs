//! End-to-end tests of the closed-loop scenario harness: the standard
//! suite runs green, reports reconcile injected faults against engine
//! accounting, and the same seed yields a bit-identical report for any
//! worker count.

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_scenario::{
    run_scenario, smoke_suite, standard_suite, EngineSpec, ScenarioRunner, SuiteRun,
};

fn run_standard() -> SuiteRun {
    ScenarioRunner::default().run(&standard_suite(42), &untrained_model())
}

#[test]
fn standard_suite_runs_green_end_to_end() {
    let run = run_standard();
    let report = &run.report;
    assert!(report.scenarios.len() >= 8);
    assert_eq!(run.timings.len(), report.scenarios.len());
    for r in &report.scenarios {
        // Every scenario scored every estimator on a real population.
        assert!(r.ticks > 0, "{}: no processing passes", r.name);
        assert!(r.best.count > 0, "{}: best estimate never scored", r.name);
        assert!(r.coulomb.count > 0, "{}: coulomb never scored", r.name);
        assert!(r.ekf.count > 0, "{}: EKF fallback never scored", r.name);
        assert!(r.network.count > 0, "{}: network never scored", r.name);
        for (label, acc) in [
            ("best", &r.best),
            ("network", &r.network),
            ("coulomb", &r.coulomb),
            ("ekf", &r.ekf),
        ] {
            assert!(
                acc.mae.is_finite() && acc.max_abs.is_finite() && acc.mae <= acc.max_abs + 1e-12,
                "{}/{label}: mae {} max {}",
                r.name,
                acc.mae,
                acc.max_abs
            );
            // SoC estimates and truth both live in [0, 1].
            assert!(acc.max_abs <= 1.0 + 1e-12, "{}/{label}", r.name);
        }
        assert!(r.time_to_empty.count > 0, "{}: no TTE scored", r.name);
        assert!((0.0..=1.0).contains(&r.final_mean_true_soc), "{}", r.name);
        // Delivered reports are fully accounted for: accepted or rejected
        // with a cause, never silently dropped.
        let t = &r.telemetry;
        assert_eq!(
            t.accepted + t.rejected_non_finite + t.rejected_time_reversed,
            r.reports_delivered,
            "{}: unaccounted telemetry",
            r.name
        );
        assert_eq!(t.unknown_cell, 0, "{}", r.name);
    }
}

#[test]
fn clean_scenarios_reconcile_and_coulomb_is_exact() {
    let run = run_standard();
    let clean = run.report.get("constant-1c-clean").expect("in suite");
    // No faults: every generated report arrives and is accepted.
    assert_eq!(clean.reports_generated, clean.reports_delivered);
    assert_eq!(clean.telemetry.accepted, clean.reports_delivered);
    assert_eq!(clean.telemetry.rejected_time_reversed, 0);
    assert_eq!(clean.telemetry.rejected_non_finite, 0);
    assert_eq!(clean.unscored_cell_ticks, 0);
    // Ground truth and the engine's Coulomb counter integrate the same
    // noise-free current over the same intervals from the same initial SoC:
    // the closed loop must agree to floating-point precision. (This is the
    // harness validating itself against the simulator.)
    assert!(
        clean.coulomb.mae < 1e-9,
        "clean coulomb MAE {}",
        clean.coulomb.mae
    );
    // The EKF starts at the true SoC and tracks a clean constant discharge.
    assert!(clean.ekf.mae < 0.06, "clean EKF MAE {}", clean.ekf.mae);
    // Every cell is scored at every tick.
    assert_eq!(clean.best.count, (clean.cells * clean.ticks) as u64);
    // Drive cycles integrate exactly too (telemetry cadence = sim step).
    let drive = run.report.get("drive-udds").expect("in suite");
    assert!(
        drive.coulomb.mae < 1e-9,
        "drive coulomb MAE {}",
        drive.coulomb.mae
    );
}

#[test]
fn fault_scenarios_surface_in_engine_stats() {
    let run = run_standard();
    let dropout = run.report.get("transport-dropout").expect("in suite");
    assert!(dropout.injected.dropped > 0);
    assert!(dropout.reports_delivered < dropout.reports_generated);
    // Dropped reports widen the Coulomb integration intervals under a
    // varying drive-cycle current: exactness is gone.
    assert!(
        dropout.coulomb.mae > 1e-6,
        "dropout left coulomb exact: {}",
        dropout.coulomb.mae
    );

    let chaos = run.report.get("transport-chaos").expect("in suite");
    for (label, n) in [
        ("dropped", chaos.injected.dropped),
        ("duplicated", chaos.injected.duplicated),
        ("reordered", chaos.injected.reordered),
        ("corrupted", chaos.injected.corrupted),
    ] {
        assert!(n > 0, "chaos scenario injected no {label} faults");
    }
    // Injected faults land in the engine's books, not on the floor.
    assert!(chaos.telemetry.rejected_non_finite > 0);
    assert!(chaos.telemetry.rejected_time_reversed > 0);
    assert!(chaos.telemetry.duplicate_timestamp > 0);
    // And the engine keeps serving: every cell still gets scored estimates.
    assert!(chaos.best.count > 0);
    assert!(chaos.best.max_abs <= 1.0 + 1e-12);

    let aged = run.report.get("aged-fleet").expect("in suite");
    assert!(
        aged.coulomb.mae < 1e-9,
        "aged capacities must be registered"
    );
    let noisy = run.report.get("noisy-sensors").expect("in suite");
    assert!(
        noisy.coulomb.mae > 1e-6,
        "sensor noise must perturb the integrators"
    );
}

#[test]
fn report_is_bit_identical_across_runner_worker_counts() {
    let model = untrained_model();
    let suite = smoke_suite(7);
    let mut reference: Option<String> = None;
    for workers in [0usize, 2] {
        let runner = ScenarioRunner {
            workers,
            ..ScenarioRunner::default()
        };
        let run = runner.run(&suite, &model);
        let json = serde_json::to_string(&run.report).expect("serializable");
        match &reference {
            None => reference = Some(json),
            Some(reference) => {
                assert_eq!(reference, &json, "workers={workers} changed the report")
            }
        }
    }
}

#[test]
fn report_is_bit_identical_across_engine_worker_counts() {
    let model = untrained_model();
    let scenario = &smoke_suite(11)[2]; // transport-chaos: the hard one
    let mut reference: Option<String> = None;
    for workers in [0usize, 2] {
        let result = run_scenario(
            scenario,
            &model,
            &EngineSpec {
                workers,
                ..EngineSpec::default()
            },
        );
        let json = serde_json::to_string(&result).expect("serializable");
        match &reference {
            None => reference = Some(json),
            Some(reference) => assert_eq!(
                reference, &json,
                "engine workers={workers} changed the result"
            ),
        }
    }
}

#[test]
fn tail_steps_past_the_last_scoring_tick_are_still_accounted() {
    // 100 steps with a pass every 15: the last scoring tick is at step 90,
    // and steps 91–100 land after it. The final unconditional pass must
    // still coalesce them so the telemetry books balance.
    let mut scenario = smoke_suite(5)[2].clone(); // transport-chaos
    scenario.timing.duration_s = 100.0;
    scenario.timing.process_every = 15;
    let result = run_scenario(&scenario, &untrained_model(), &EngineSpec::default());
    assert_eq!(result.ticks, 6, "floor(100 / 15) scoring passes");
    let t = &result.telemetry;
    assert_eq!(
        t.accepted + t.rejected_non_finite + t.rejected_time_reversed,
        result.reports_delivered,
        "tail-step reports left unaccounted"
    );
}

#[test]
fn different_seeds_change_the_report() {
    let model = untrained_model();
    let runner = ScenarioRunner::default();
    let a = runner.run(&smoke_suite(1), &model);
    let b = runner.run(&smoke_suite(2), &model);
    assert_ne!(a.report, b.report);
}

#[test]
fn empty_suite_is_harmless() {
    let run = ScenarioRunner::default().run(&[], &untrained_model());
    assert!(run.report.scenarios.is_empty());
    assert!(run.timings.is_empty());
}

#[test]
fn observed_suite_is_bit_identical_and_records_series() {
    let model = untrained_model();
    let control = ScenarioRunner::default().run(&smoke_suite(9), &model);
    let hub = pinnsoc_obs::ObsHub::new();
    let observed = ScenarioRunner::default()
        .observed(std::sync::Arc::clone(&hub))
        .run(&smoke_suite(9), &model);
    assert_eq!(
        control.report, observed.report,
        "attaching obs must not change the report"
    );
    let snapshot = hub.registry().snapshot();
    let runs = snapshot.counter_total("pinnsoc_scenario_runs_total");
    assert_eq!(runs, observed.report.scenarios.len() as u64);
    let cell_ticks = snapshot.counter_total("pinnsoc_scenario_cell_ticks_total");
    let expected: u64 = observed
        .report
        .scenarios
        .iter()
        .map(|s| (s.cells * s.ticks) as u64)
        .sum();
    assert_eq!(cell_ticks, expected);
    let events = hub.recent_events();
    assert_eq!(events.len(), 1, "one suite-completion event");
    assert!(events[0].message.contains("suite of"));
}
