//! The quantized-promotion contract, end to end: a quantized model reaches
//! `ModelRegistry` only through a `gate_suite` pass against its f32
//! incumbent, a deliberately mis-calibrated candidate fails that gate, and
//! with no certificate minted the fleet keeps serving bit-identical f32.

use pinnsoc::{Matrix, QuantizedSocModel, SecondStage};
use pinnsoc_fleet::testing::{quantize_untrained, untrained_model};
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, GateTolerance, ServingMode, Telemetry};
use pinnsoc_scenario::{gate_quantized, gate_suite, EngineSpec, QuantizedGateConfig};
use std::sync::Arc;

fn gate_config(registry_version: u64) -> QuantizedGateConfig {
    QuantizedGateConfig {
        suite: gate_suite(11),
        runner_workers: 0,
        engine: EngineSpec {
            shards: 2,
            micro_batch: 32,
            workers: 0,
        },
        // The untrained incumbent's suite MAE is dominated by output
        // clamping, so a relative band scaled to it would be far wider
        // than any quantization distortion; a small absolute band
        // measures the int8-vs-f32 gap directly. A well-calibrated
        // candidate lands ~1e-4 from its source; mis-calibration costs
        // over 1e-2.
        tolerance: GateTolerance {
            rel: 0.0,
            abs: 0.005,
        },
        registry_version,
        obs: None,
    }
}

/// A candidate whose activation scales were calibrated on near-zero
/// inputs: real serving inputs then clip at ±127 codes and the network
/// output is grossly distorted. `quantize` accepts it — the ranges are
/// non-zero, so only the end-to-end gate can catch it.
fn mis_calibrated_candidate(model: &Arc<pinnsoc::SocModel>) -> Arc<QuantizedSocModel> {
    let tiny = |cols: usize| {
        let rows = 8;
        let mut data = vec![0.0f32; rows * cols];
        for (i, v) in data.iter_mut().enumerate() {
            *v = 1e-6 * (i as f32 + 1.0);
        }
        Matrix::from_vec(rows, cols, data)
    };
    let b2 = matches!(model.stage2, SecondStage::Network(_)).then(|| tiny(4));
    Arc::new(QuantizedSocModel::quantize(Arc::clone(model), &tiny(3), b2.as_ref()).unwrap())
}

#[test]
fn well_calibrated_candidate_passes_gate_and_installs() {
    let engine = FleetEngine::new(untrained_model(), FleetConfig::default());
    let registry = engine.registry();
    let incumbent = registry.current();
    let candidate = Arc::new(quantize_untrained(&incumbent));

    let outcome = gate_quantized(&candidate, &gate_config(registry.version()));
    assert!(
        outcome.passed(),
        "well-calibrated candidate should pass: candidate MAE {} vs incumbent {}",
        outcome.quantized_mae,
        outcome.incumbent_mae
    );
    assert!(outcome.incumbent_mae.is_finite() && outcome.quantized_mae.is_finite());

    // The minted certificate is the registry's admission ticket.
    let certificate = outcome.certificate.expect("passed");
    let version = registry
        .install_quantized(Arc::clone(&candidate), &certificate)
        .expect("certificate matches the live incumbent");
    assert_eq!(version, registry.version());
    let snapshot = registry.snapshot();
    let installed = snapshot.quantized.expect("installed");
    assert_eq!(
        installed.fingerprint(),
        pinnsoc::model_fingerprint(&snapshot.model)
    );
}

#[test]
fn mis_calibrated_candidate_fails_gate_and_serving_stays_f32() {
    let incumbent = Arc::new(untrained_model());
    let candidate = mis_calibrated_candidate(&incumbent);

    let outcome = gate_quantized(&candidate, &gate_config(1));
    assert!(
        !outcome.passed(),
        "mis-calibrated candidate must fail: candidate MAE {} vs incumbent {}",
        outcome.quantized_mae,
        outcome.incumbent_mae
    );
    assert!(
        outcome.quantized_mae > outcome.incumbent_mae,
        "clipping should visibly hurt accuracy"
    );
    assert!(outcome.certificate.is_none(), "no certificate on failure");

    // With no certificate there is no way into the registry, so an
    // int8-mode fleet keeps serving the f32 incumbent — bit-identical to a
    // pure-f32 control engine.
    let config = FleetConfig {
        shards: 2,
        micro_batch: 8,
        workers: 0,
        ekf_fallback: None,
        serving: ServingMode::F32,
    };
    let mut int8_engine = FleetEngine::new(
        (*incumbent).clone(),
        FleetConfig {
            serving: ServingMode::Int8,
            ..config.clone()
        },
    );
    let mut control = FleetEngine::new((*incumbent).clone(), config);
    for engine in [&mut int8_engine, &mut control] {
        for id in 0..24u64 {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.8,
                    capacity_ah: 3.0,
                },
            );
            engine.ingest(
                id,
                Telemetry {
                    time_s: 1.0,
                    voltage_v: 3.6 + 0.01 * id as f64,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            );
        }
        engine.process_pending();
    }
    assert!(int8_engine.registry().quantized().is_none());
    for id in 0..24u64 {
        let a = int8_engine.cell(id).unwrap().network_estimate.unwrap().1;
        let b = control.cell(id).unwrap().network_estimate.unwrap().1;
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "cell {id}: failed gate must leave serving bit-identical f32"
        );
    }
}
