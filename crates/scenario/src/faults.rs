//! The telemetry fault model: what happens to a measurement between the
//! cell's BMS and the fleet engine.
//!
//! Faults come in two families. *Sensor* faults perturb the measurement
//! itself (Gaussian noise per channel, occasional non-finite fields from a
//! glitching gateway). *Transport* faults perturb delivery (dropout,
//! duplicated frames, out-of-order arrival, per-cell clock skew and
//! per-report clock jitter). Every draw comes from a per-cell seeded RNG,
//! so a scenario's fault pattern is a pure function of its seed.

use pinnsoc_fleet::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Per-scenario fault configuration. All probabilities are per report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Gaussian noise standard deviation on the voltage channel, volts.
    pub voltage_noise_v: f64,
    /// Gaussian noise standard deviation on the current channel, amps.
    pub current_noise_a: f64,
    /// Gaussian noise standard deviation on the temperature channel, °C.
    pub temperature_noise_c: f64,
    /// Probability a report is silently lost in transit.
    pub dropout: f64,
    /// Probability a delivered report arrives twice.
    pub duplicate: f64,
    /// Probability a report is delayed past the next delivered one (the
    /// engine then sees a time-reversed report and must reject it).
    pub reorder: f64,
    /// Maximum per-cell constant clock offset, seconds (each cell draws a
    /// fixed offset uniformly from `[-skew, skew]` at scenario start).
    pub clock_skew_s: f64,
    /// Per-report timestamp jitter, seconds (uniform in `[-jitter, jitter]`;
    /// jitter larger than half the reporting interval produces occasional
    /// time reversals on its own).
    pub clock_jitter_s: f64,
    /// Probability one measurement field is replaced by NaN.
    pub non_finite: f64,
}

impl FaultModel {
    /// No faults: telemetry arrives exactly as measured.
    pub fn none() -> Self {
        Self {
            voltage_noise_v: 0.0,
            current_noise_a: 0.0,
            temperature_noise_c: 0.0,
            dropout: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            clock_skew_s: 0.0,
            clock_jitter_s: 0.0,
            non_finite: 0.0,
        }
    }

    /// Realistic BMS sensor noise (10 mV / 50 mA / 0.5 °C), no transport
    /// faults.
    pub fn sensor_noise() -> Self {
        Self {
            voltage_noise_v: 0.010,
            current_noise_a: 0.050,
            temperature_noise_c: 0.5,
            ..Self::none()
        }
    }

    /// Validates the model.
    ///
    /// # Panics
    ///
    /// Panics on probabilities outside `[0, 1]` or negative/non-finite
    /// noise magnitudes.
    pub fn validate(&self) {
        for (name, p) in [
            ("dropout", self.dropout),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("non_finite", self.non_finite),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability must be in [0, 1], got {p}"
            );
        }
        for (name, v) in [
            ("voltage_noise_v", self.voltage_noise_v),
            ("current_noise_a", self.current_noise_a),
            ("temperature_noise_c", self.temperature_noise_c),
            ("clock_skew_s", self.clock_skew_s),
            ("clock_jitter_s", self.clock_jitter_s),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative, got {v}"
            );
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// How many faults of each kind a scenario injected (the runner reconciles
/// these against the engine's `TelemetryStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Reports lost in transit.
    pub dropped: u64,
    /// Reports delivered twice.
    pub duplicated: u64,
    /// Reports delayed past their successor.
    pub reordered: u64,
    /// Reports with a field replaced by NaN.
    pub corrupted: u64,
}

impl FaultCounts {
    pub(crate) fn accumulate(&mut self, other: &FaultCounts) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.corrupted += other.corrupted;
    }
}

/// One cell's transport channel: applies the fault model to each measured
/// report and yields what actually reaches the engine, in arrival order.
/// Public so external traffic generators (the service-tier latency bench)
/// can push the same seeded adversarial streams through their own ingest
/// paths.
#[derive(Debug)]
pub struct FaultChannel {
    model: FaultModel,
    rng: StdRng,
    /// This cell's constant clock offset, seconds.
    skew_s: f64,
    /// A report held back to be delivered after its successor.
    held: Option<Telemetry>,
    pub(crate) counts: FaultCounts,
}

impl FaultChannel {
    /// Opens one cell's channel under `model`, seeded so the fault stream
    /// is a pure function of `(model, seed)`.
    pub fn new(model: FaultModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let skew_s = if model.clock_skew_s > 0.0 {
            (rng.gen::<f64>() * 2.0 - 1.0) * model.clock_skew_s
        } else {
            0.0
        };
        Self {
            model,
            rng,
            skew_s,
            held: None,
            counts: FaultCounts::default(),
        }
    }

    /// Transmits one measurement; whatever reaches the engine this instant
    /// is appended to `out` in arrival order.
    pub fn transmit(&mut self, mut report: Telemetry, out: &mut Vec<Telemetry>) {
        // Sensor faults first: they corrupt the measurement itself.
        report.time_s += self.skew_s;
        if self.model.clock_jitter_s > 0.0 {
            report.time_s += (self.rng.gen::<f64>() * 2.0 - 1.0) * self.model.clock_jitter_s;
        }
        for (std, field) in [
            (self.model.voltage_noise_v, &mut report.voltage_v),
            (self.model.current_noise_a, &mut report.current_a),
            (self.model.temperature_noise_c, &mut report.temperature_c),
        ] {
            if std > 0.0 {
                *field += Normal::new(0.0, std)
                    .expect("validated finite std")
                    .sample(&mut self.rng);
            }
        }
        if self.model.non_finite > 0.0 && self.rng.gen::<f64>() < self.model.non_finite {
            self.counts.corrupted += 1;
            match self.rng.gen_range(0..3u32) {
                0 => report.voltage_v = f64::NAN,
                1 => report.current_a = f64::NAN,
                _ => report.temperature_c = f64::NAN,
            }
        }
        // Transport faults: decide this report's fate.
        if self.model.dropout > 0.0 && self.rng.gen::<f64>() < self.model.dropout {
            self.counts.dropped += 1;
            return; // A held predecessor stays held for the next delivery.
        }
        if self.held.is_none()
            && self.model.reorder > 0.0
            && self.rng.gen::<f64>() < self.model.reorder
        {
            self.counts.reordered += 1;
            self.held = Some(report);
            return;
        }
        out.push(report);
        if self.model.duplicate > 0.0 && self.rng.gen::<f64>() < self.model.duplicate {
            self.counts.duplicated += 1;
            out.push(report);
        }
        // A held (older) report arrives after the newer one it was delayed
        // past — the out-of-order delivery the engine must survive.
        if let Some(older) = self.held.take() {
            out.push(older);
        }
    }

    /// Delivers a report still held at the end of the stream (the delayed
    /// packet eventually arrives). Without this, an end-of-stream hold
    /// would be lost while still being booked as "reordered", and the
    /// injected-vs-engine reconciliation could never balance.
    pub fn flush(&mut self, out: &mut Vec<Telemetry>) {
        if let Some(older) = self.held.take() {
            out.push(older);
        }
    }

    /// Faults injected so far, by kind.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t: f64) -> Telemetry {
        Telemetry {
            time_s: t,
            voltage_v: 3.7,
            current_a: 1.0,
            temperature_c: 25.0,
        }
    }

    #[test]
    fn clean_channel_is_transparent() {
        let mut channel = FaultChannel::new(FaultModel::none(), 7);
        let mut out = Vec::new();
        for k in 0..20 {
            channel.transmit(report(k as f64), &mut out);
        }
        assert_eq!(out.len(), 20);
        assert!(out.iter().enumerate().all(|(k, r)| r == &report(k as f64)));
        assert_eq!(channel.counts, FaultCounts::default());
    }

    #[test]
    fn dropout_loses_reports_and_counts_them() {
        let model = FaultModel {
            dropout: 0.5,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 3);
        let mut out = Vec::new();
        for k in 0..200 {
            channel.transmit(report(k as f64), &mut out);
        }
        assert_eq!(out.len() as u64 + channel.counts.dropped, 200);
        assert!(channel.counts.dropped > 50, "{:?}", channel.counts);
    }

    #[test]
    fn reorder_delivers_older_after_newer() {
        let model = FaultModel {
            reorder: 1.0,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 5);
        let mut out = Vec::new();
        channel.transmit(report(1.0), &mut out);
        assert!(out.is_empty(), "first report held");
        channel.transmit(report(2.0), &mut out);
        // The successor is delivered first, then the held (older) report.
        assert_eq!(
            out.iter().map(|r| r.time_s).collect::<Vec<_>>(),
            vec![2.0, 1.0]
        );
        assert_eq!(channel.counts.reordered, 1);
    }

    #[test]
    fn flush_delivers_an_end_of_stream_hold() {
        let model = FaultModel {
            reorder: 1.0,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 5);
        let mut out = Vec::new();
        channel.transmit(report(1.0), &mut out);
        assert!(out.is_empty(), "last report of the stream held");
        channel.flush(&mut out);
        assert_eq!(out.len(), 1, "the delayed packet eventually arrives");
        assert_eq!(out[0].time_s, 1.0);
        assert_eq!(channel.counts.reordered, 1);
        channel.flush(&mut out);
        assert_eq!(out.len(), 1, "flush is idempotent");
    }

    #[test]
    fn duplicates_arrive_twice() {
        let model = FaultModel {
            duplicate: 1.0,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 5);
        let mut out = Vec::new();
        channel.transmit(report(1.0), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(channel.counts.duplicated, 1);
    }

    #[test]
    fn corruption_injects_nan_in_one_field() {
        let model = FaultModel {
            non_finite: 1.0,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 11);
        let mut out = Vec::new();
        channel.transmit(report(1.0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_finite());
        assert!(out[0].time_s.is_finite(), "timestamps are never corrupted");
        assert_eq!(channel.counts.corrupted, 1);
    }

    #[test]
    fn skew_shifts_every_timestamp_by_the_same_offset() {
        let model = FaultModel {
            clock_skew_s: 2.0,
            ..FaultModel::none()
        };
        let mut channel = FaultChannel::new(model, 13);
        let mut out = Vec::new();
        channel.transmit(report(10.0), &mut out);
        channel.transmit(report(20.0), &mut out);
        let offset = out[0].time_s - 10.0;
        assert!(offset.abs() <= 2.0);
        assert!((out[1].time_s - 20.0 - offset).abs() < 1e-12);
    }

    #[test]
    fn channel_is_deterministic_per_seed() {
        let model = FaultModel {
            voltage_noise_v: 0.01,
            dropout: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            clock_jitter_s: 0.4,
            non_finite: 0.05,
            ..FaultModel::none()
        };
        // Compare debug renderings: injected NaNs make `PartialEq` useless
        // (NaN != NaN) even though the streams are identical.
        let run = |seed| {
            let mut channel = FaultChannel::new(model, seed);
            let mut out = Vec::new();
            for k in 0..100 {
                channel.transmit(report(k as f64), &mut out);
            }
            format!("{out:?} {:?}", channel.counts)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn invalid_probability_rejected() {
        FaultModel {
            dropout: 1.5,
            ..FaultModel::none()
        }
        .validate();
    }
}
