//! # pinnsoc-scenario
//!
//! Closed-loop validation subsystem for the `pinnsoc` workspace: does the
//! fleet engine's SoC estimate stay accurate when it is driven by
//! realistic, messy telemetry instead of clean cycling traces?
//!
//! The paper validates its two-branch PINN on clean Sandia/LG-style cycles;
//! a production fleet sees drive cycles, temperature swings, aged cells,
//! sensor noise, and transport faults. This crate closes the loop:
//!
//! - A [`Scenario`] is *data*: a cell population ([`PopulationSpec`]:
//!   chemistry, initial-SoC spread, aging via `pinnsoc_battery::aging`), a
//!   load source ([`LoadSpec`]: drive schedules, pulse trains, constant
//!   current, randomized EV mixes), an environment schedule
//!   ([`EnvSchedule`]) and a fault model ([`FaultModel`]: Gaussian sensor
//!   noise, dropout, duplicate and out-of-order delivery, clock skew and
//!   jitter, NaN injection) — all seeded, all reproducible.
//! - [`run_scenario`] executes one: a ground-truth
//!   [`pinnsoc_battery::CellSim`] per cell feeds a live
//!   [`pinnsoc_fleet::FleetEngine`] through per-cell fault channels, and
//!   every engine pass the network / Coulomb / EKF estimates (via
//!   [`pinnsoc_fleet::FleetEngine::estimate_breakdown`]) are scored against
//!   the simulators' true SoC.
//! - [`ScenarioRunner`] executes a suite pool-parallel over the shared
//!   [`pinnsoc_runtime::WorkerPool`] and produces a [`ScenarioReport`]
//!   that is **bit-identical across worker counts** at a fixed seed —
//!   wall-clock timings live outside the report ([`SuiteRun::timings`]).
//! - [`standard_suite`] is the eleven-scenario battery (lab patterns, drive
//!   cycles, temperature sweep, aged fleet, sensor noise, two transport
//!   fault modes, a mid-run drift) behind `scenario_baseline` and
//!   `BENCH_scenarios.json`; [`smoke_suite`] is its CI-sized subset and
//!   [`gate_suite`] the online-adaptation promotion gate.
//! - [`run_scenario_observed`] attaches a [`FleetObserver`] to the live
//!   engine — the seam `pinnsoc-adapt` harvests through and hot-swaps
//!   models mid-run with.
//! - [`run_crash_scenario`] extends the fault repertoire to the process
//!   itself: a seeded [`CrashPlan`] kills a `pinnsoc_durable::DurableFleet`
//!   mid-tick / mid-snapshot / mid-rotation, recovers it, finishes the
//!   scenario, and bit-compares the final estimates against an
//!   uninterrupted control.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_fleet::testing::untrained_model;
//! use pinnsoc_scenario::{smoke_suite, ScenarioRunner};
//!
//! let run = ScenarioRunner::default().run(&smoke_suite(42), &untrained_model());
//! for result in &run.report.scenarios {
//!     assert!(result.coulomb.count > 0, "{} scored nothing", result.name);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod faults;
pub mod gate;
pub mod report;
pub mod runner;
pub mod spec;
pub mod suite;

pub use crash::{
    run_crash_scenario, tear_directory, CellEstimate, CrashPlan, CrashPoint, CrashScenarioRun,
};
pub use faults::{FaultChannel, FaultCounts, FaultModel};
pub use gate::{gate_quantized, QuantizedGateConfig, QuantizedGateOutcome};
pub use report::{EstimatorAccuracy, ScenarioReport, ScenarioResult, TteAccuracy};
pub use runner::{
    run_scenario, run_scenario_observed, run_scenario_quantized, EngineSpec, FleetObserver,
    NoopObserver, ScenarioRunner, ScenarioTiming, ServedModel, SuiteRun,
};
pub use spec::{EnvSchedule, LoadSpec, PopulationSpec, Scenario, Timing};
pub use suite::{gate_suite, smoke_suite, standard_suite};
