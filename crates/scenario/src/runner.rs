//! Closed-loop scenario execution.
//!
//! [`run_scenario`] drives one scenario: per-cell ground-truth simulators
//! generate telemetry, the fault channels mangle it, a live [`FleetEngine`]
//! consumes it, and every processing pass the per-estimator estimates are
//! scored against the simulators' true SoC. [`ScenarioRunner`] executes a
//! whole suite pool-parallel over the shared [`pinnsoc_runtime`] worker
//! pool; because each scenario run is a pure function of its spec and the
//! model, the resulting [`ScenarioReport`] is bit-identical for any worker
//! count.

use crate::faults::{FaultChannel, FaultCounts};
use crate::report::{ErrorStat, ScenarioReport, ScenarioResult, TteAccuracy};
use crate::spec::{LoadSpec, Scenario};
use pinnsoc::{QuantizedSocModel, SocModel};
use pinnsoc_battery::{aged_params, CellSim, Soc, Soh};
use pinnsoc_cycles::{pulse_train, MixedCycleBuilder, Vehicle};
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_obs::{ObsHub, DURATION_BUCKETS};
use pinnsoc_runtime::{NoContext, PoolTask, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// How each scenario's [`FleetEngine`] is configured. Engine results are
/// bit-identical across worker counts (the fleet crate's contract), so
/// these knobs affect throughput only, never the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Shards per engine.
    pub shards: usize,
    /// Cells per batched forward pass.
    pub micro_batch: usize,
    /// Persistent engine worker threads (the scenario's own thread always
    /// participates). Kept small by default: suite-level parallelism comes
    /// from the runner's pool, not from nesting wide engine pools.
    pub workers: usize,
}

impl Default for EngineSpec {
    fn default() -> Self {
        Self {
            shards: 4,
            micro_batch: 64,
            workers: 1,
        }
    }
}

/// Executes scenario suites pool-parallel.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRunner {
    /// Worker threads draining the suite (the calling thread participates;
    /// 0 runs everything on the calling thread).
    pub workers: usize,
    /// Per-scenario engine configuration.
    pub engine: EngineSpec,
    /// Observability hub receiving per-scenario `pinnsoc_scenario_*` series
    /// and a suite-completion ring event; `None` runs fully uninstrumented.
    /// The [`ScenarioReport`] is bit-identical either way — recording reads
    /// the finished results at suite end, on the coordinating thread only.
    pub obs: Option<Arc<ObsHub>>,
}

/// A completed suite: the deterministic report plus the (host-dependent)
/// wall-clock timings, kept separate so the report stays bit-comparable.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The deterministic scoring report, in suite order.
    pub report: ScenarioReport,
    /// Per-scenario wall time, in suite order.
    pub timings: Vec<ScenarioTiming>,
}

/// Wall-clock cost of one scenario on the measuring host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTiming {
    /// Scenario name.
    pub name: String,
    /// Wall time of the whole closed loop (simulate + transmit + serve +
    /// score), seconds.
    pub wall_s: f64,
    /// Scored cell-ticks per second of wall time.
    pub cell_ticks_per_s: f64,
}

/// Which model a scenario's engine serves: the f32 reference path, or an
/// int8 quantized candidate through the fleet's evaluation seam
/// ([`FleetEngine::new_quantized_eval`]). The whole closed loop — faults,
/// physics, scoring — is identical either way; only the serving network
/// differs.
#[derive(Debug, Clone)]
pub enum ServedModel {
    /// Serve the f32 model.
    F32(Arc<SocModel>),
    /// Serve an int8 quantized candidate (the promotion gate's evaluation
    /// path — see `crate::gate`).
    Int8(Arc<QuantizedSocModel>),
}

impl ServedModel {
    fn make_fleet(&self, config: FleetConfig) -> FleetEngine {
        match self {
            ServedModel::F32(model) => FleetEngine::new((**model).clone(), config),
            ServedModel::Int8(quantized) => {
                FleetEngine::new_quantized_eval(Arc::clone(quantized), config)
            }
        }
    }
}

struct ScenarioTask {
    scenario: Scenario,
    served: ServedModel,
    engine: EngineSpec,
}

impl PoolTask for ScenarioTask {
    type Ctx = ();
    type Kind = ();
    type Output = (ScenarioResult, f64);

    fn run(&mut self, _: &(), (): ()) -> Self::Output {
        let start = Instant::now();
        let result = run_scenario_served(
            &self.scenario,
            &self.served,
            &self.engine,
            &mut NoopObserver,
        );
        (result, start.elapsed().as_secs_f64())
    }
}

impl ScenarioRunner {
    /// Runs every scenario in `suite` against `model`, draining them
    /// through a persistent worker pool. Results come back in suite order
    /// and the report is bit-identical for any [`ScenarioRunner::workers`]
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if any scenario is invalid or a scenario task panics.
    pub fn run(&self, suite: &[Scenario], model: &SocModel) -> SuiteRun {
        self.run_served(suite, &ServedModel::F32(Arc::new(model.clone())))
    }

    /// [`ScenarioRunner::run`] against an int8 quantized candidate — the
    /// promotion gate's measurement path (see `crate::gate`).
    ///
    /// # Panics
    ///
    /// Panics if any scenario is invalid or a scenario task panics.
    pub fn run_quantized(
        &self,
        suite: &[Scenario],
        quantized: &Arc<QuantizedSocModel>,
    ) -> SuiteRun {
        self.run_served(suite, &ServedModel::Int8(Arc::clone(quantized)))
    }

    /// Runs every scenario in `suite` against `served`; see
    /// [`ScenarioRunner::run`].
    pub fn run_served(&self, suite: &[Scenario], served: &ServedModel) -> SuiteRun {
        for scenario in suite {
            scenario.validate();
        }
        if suite.is_empty() {
            return SuiteRun {
                report: ScenarioReport {
                    scenarios: Vec::new(),
                },
                timings: Vec::new(),
            };
        }
        let mut pool: WorkerPool<NoContext, ScenarioTask> =
            WorkerPool::new(Arc::new(NoContext), self.workers);
        let mut queue: Vec<(usize, ScenarioTask)> = suite
            .iter()
            .map(|scenario| ScenarioTask {
                scenario: scenario.clone(),
                served: served.clone(),
                engine: self.engine,
            })
            .enumerate()
            .collect();
        let mut done = Vec::with_capacity(queue.len());
        let panicked = pool.run((), &mut queue, &mut done);
        assert!(!panicked, "a scenario task panicked");
        // Completion order is nondeterministic under concurrency; the
        // outputs are not — restore suite order.
        done.sort_unstable_by_key(|d| d.idx);
        let mut scenarios = Vec::with_capacity(done.len());
        let mut timings = Vec::with_capacity(done.len());
        for d in done {
            let (result, wall_s) = d.output;
            let cell_ticks = (result.cells * result.ticks) as f64;
            timings.push(ScenarioTiming {
                name: result.name.clone(),
                wall_s,
                cell_ticks_per_s: if wall_s > 0.0 {
                    cell_ticks / wall_s
                } else {
                    0.0
                },
            });
            scenarios.push(result);
        }
        let run = SuiteRun {
            report: ScenarioReport { scenarios },
            timings,
        };
        if let Some(hub) = &self.obs {
            record_suite(hub, &run);
        }
        run
    }

    /// The same runner, reporting suite results into `hub`.
    pub fn observed(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }
}

/// Folds a finished suite into the hub. Cold path — once per suite, after
/// every scenario completed — so it uses the registry's locked entry points
/// directly; registration is idempotent, so repeated `run()` calls keep
/// appending to the same series.
fn record_suite(hub: &Arc<ObsHub>, run: &SuiteRun) {
    let reg = hub.registry();
    let mut cell_ticks_total = 0u64;
    for (result, timing) in run.report.scenarios.iter().zip(&run.timings) {
        let labels: &[(&str, &str)] = &[("scenario", &result.name)];
        reg.add(
            reg.counter_with(
                "pinnsoc_scenario_runs_total",
                "Completed closed-loop scenario runs.",
                labels,
            ),
            1,
        );
        reg.observe(
            reg.histogram_with(
                "pinnsoc_scenario_wall_seconds",
                "Wall time of one closed-loop scenario run.",
                labels,
                DURATION_BUCKETS,
            ),
            timing.wall_s,
        );
        reg.set(
            reg.gauge_with(
                "pinnsoc_scenario_best_mae",
                "Best-estimate SoC MAE of the most recent run.",
                labels,
            ),
            result.best.mae,
        );
        reg.set(
            reg.gauge_with(
                "pinnsoc_scenario_tte_mae_seconds",
                "Time-to-empty MAE of the most recent run, seconds.",
                labels,
            ),
            result.time_to_empty.mean_abs_error_s,
        );
        let cell_ticks = (result.cells * result.ticks) as u64;
        cell_ticks_total += cell_ticks;
        reg.add(
            reg.counter_with(
                "pinnsoc_scenario_cell_ticks_total",
                "Scored (cell, tick) pairs.",
                labels,
            ),
            cell_ticks,
        );
        reg.add(
            reg.counter_with(
                "pinnsoc_scenario_unscored_cell_ticks_total",
                "(cell, tick) pairs the engine could not score yet.",
                labels,
            ),
            result.unscored_cell_ticks,
        );
    }
    hub.emit(
        "scenario",
        format!(
            "suite of {} scenario(s) complete ({cell_ticks_total} cell-ticks scored)",
            run.report.scenarios.len()
        ),
    );
}

/// Splitmix-style stream derivation so per-cell streams are decorrelated
/// from the scenario seed and from each other.
pub(crate) fn cell_stream(seed: u64, cell: u64, salt: u64) -> u64 {
    seed ^ salt
        ^ (cell
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

/// Builds one cell's per-step current demand, looping the source profile if
/// the scenario outlasts it.
pub(crate) fn cell_currents(scenario: &Scenario, cell: u64) -> Vec<f64> {
    let params = &scenario.population.params;
    let timing = &scenario.timing;
    let steps = timing.steps();
    let seed = cell_stream(scenario.seed, cell, 0x10AD);
    let profile: Vec<f64> = match &scenario.load {
        LoadSpec::ConstantCurrent { c_rate } => return vec![params.c_rate(*c_rate); steps],
        LoadSpec::PulseTrain {
            high_c,
            pulse_s,
            low_c,
            rest_s,
        } => {
            let cycles = (timing.duration_s / (pulse_s + rest_s)).ceil().max(1.0) as usize;
            pulse_train(
                params.c_rate(*high_c),
                *pulse_s,
                params.c_rate(*low_c),
                *rest_s,
                cycles,
                timing.dt_s,
            )
            .into_currents()
        }
        LoadSpec::Drive { schedule } => Vehicle::compact_ev()
            .current_profile(&schedule.generate_with_dt(seed, timing.dt_s))
            .into_currents(),
        LoadSpec::MixedEv { segments } => Vehicle::compact_ev()
            .current_profile(
                &MixedCycleBuilder::new()
                    .segments(*segments)
                    .dt_s(timing.dt_s)
                    .build(seed),
            )
            .into_currents(),
    };
    (0..steps).map(|k| profile[k % profile.len()]).collect()
}

/// Observer hook into a closed-loop scenario run: called with the live
/// engine after every scored processing pass.
///
/// This is the seam the online-adaptation loop (`pinnsoc-adapt`) plugs into:
/// an observer can read per-cell breakdowns, harvest pseudo-labels, and even
/// hot-swap the served model mid-run through
/// [`FleetEngine::registry`] — swaps land at the engine's next batch pass,
/// exactly as in production.
pub trait FleetObserver {
    /// Called after scored engine pass `tick` (1-based), at simulated time
    /// `time_s`.
    fn after_tick(&mut self, fleet: &FleetEngine, tick: usize, time_s: f64);
}

/// The do-nothing observer behind plain [`run_scenario`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl FleetObserver for NoopObserver {
    fn after_tick(&mut self, _: &FleetEngine, _: usize, _: f64) {}
}

/// Runs one scenario's closed loop on the calling thread.
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn run_scenario(scenario: &Scenario, model: &SocModel, engine: &EngineSpec) -> ScenarioResult {
    run_scenario_observed(scenario, model, engine, &mut NoopObserver)
}

/// [`run_scenario`] with a [`FleetObserver`] attached (see the trait docs).
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn run_scenario_observed(
    scenario: &Scenario,
    model: &SocModel,
    engine: &EngineSpec,
    observer: &mut dyn FleetObserver,
) -> ScenarioResult {
    run_scenario_served(
        scenario,
        &ServedModel::F32(Arc::new(model.clone())),
        engine,
        observer,
    )
}

/// [`run_scenario`] against a quantized candidate on the calling thread.
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn run_scenario_quantized(
    scenario: &Scenario,
    quantized: &Arc<QuantizedSocModel>,
    engine: &EngineSpec,
) -> ScenarioResult {
    run_scenario_served(
        scenario,
        &ServedModel::Int8(Arc::clone(quantized)),
        engine,
        &mut NoopObserver,
    )
}

/// The one closed loop behind every `run_scenario*` entry point: the
/// served model decides only how the scenario's [`FleetEngine`] is built —
/// simulation, fault injection, and scoring never branch on it.
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn run_scenario_served(
    scenario: &Scenario,
    served: &ServedModel,
    engine: &EngineSpec,
    observer: &mut dyn FleetObserver,
) -> ScenarioResult {
    scenario.validate();
    let population = &scenario.population;
    let timing = &scenario.timing;
    let cells = population.cells;

    // Population draws come from one stream so the fleet composition is a
    // function of the scenario seed alone.
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let uniform = |rng: &mut StdRng, (lo, hi): (f64, f64)| lo + (hi - lo) * rng.gen::<f64>();
    let ambient0 = scenario.environment.ambient_at(0.0, timing.duration_s);
    let mut sims = Vec::with_capacity(cells);
    let mut capacities = Vec::with_capacity(cells);
    let mut channels = Vec::with_capacity(cells);
    let mut currents = Vec::with_capacity(cells);
    let mut fleet = served.make_fleet(FleetConfig {
        shards: engine.shards.max(1),
        micro_batch: engine.micro_batch.max(1),
        workers: engine.workers,
        ekf_fallback: Some(population.params.clone()),
        ..FleetConfig::default()
    });
    for id in 0..cells as u64 {
        let soh = Soh::new(uniform(&mut rng, population.soh)).expect("validated range");
        let initial_soc = uniform(&mut rng, population.initial_soc);
        let aged = aged_params(&population.params, soh);
        sims.push(CellSim::new(
            aged.clone(),
            Soc::clamped(initial_soc),
            ambient0,
        ));
        capacities.push(aged.capacity_ah);
        channels.push(FaultChannel::new(
            scenario.faults,
            cell_stream(scenario.seed, id, 0xFA17),
        ));
        currents.push(cell_currents(scenario, id));
        fleet.register(
            id,
            CellConfig {
                initial_soc,
                capacity_ah: aged.capacity_ah,
            },
        );
    }

    let mut best = ErrorStat::default();
    let mut network = ErrorStat::default();
    let mut coulomb = ErrorStat::default();
    let mut ekf = ErrorStat::default();
    let mut unscored = 0u64;
    let mut ticks = 0usize;
    let mut reports_generated = 0u64;
    let mut reports_delivered = 0u64;
    let mut deliver = Vec::new();
    // Rest-state baseline report at t = 0 (a BMS announces itself before
    // drawing load). Without it the engine's integrators would skip the
    // first interval: the report at t = dt would arrive with nothing to
    // integrate against, leaving a permanent one-step Coulomb offset.
    for (i, sim) in sims.iter().enumerate() {
        reports_generated += 1;
        channels[i].transmit(
            Telemetry {
                time_s: 0.0,
                voltage_v: sim.terminal_voltage_if(0.0),
                current_a: 0.0,
                temperature_c: sim.state().temperature_c,
            },
            &mut deliver,
        );
        for report in deliver.drain(..) {
            reports_delivered += 1;
            fleet.ingest(i as u64, report);
        }
    }
    for step in 1..=timing.steps() {
        let t = step as f64 * timing.dt_s;
        let ambient = scenario.environment.ambient_at(t, timing.duration_s);
        for (i, sim) in sims.iter_mut().enumerate() {
            sim.set_ambient_c(ambient);
            let record = sim.step(currents[i][step - 1], timing.dt_s);
            reports_generated += 1;
            channels[i].transmit(
                Telemetry {
                    time_s: t,
                    voltage_v: record.voltage_v,
                    current_a: record.current_a,
                    temperature_c: record.temperature_c,
                },
                &mut deliver,
            );
            for report in deliver.drain(..) {
                reports_delivered += 1;
                fleet.ingest(i as u64, report);
            }
        }
        if step % timing.process_every == 0 {
            fleet.process_pending();
            ticks += 1;
            for (i, sim) in sims.iter().enumerate() {
                let truth = sim.state().soc.value();
                match fleet.estimate_breakdown(i as u64) {
                    Some(b) => {
                        best.add(b.best.0 - truth);
                        if let Some(soc) = b.network {
                            network.add(soc - truth);
                        }
                        coulomb.add(b.coulomb - truth);
                        if let Some(soc) = b.ekf {
                            ekf.add(soc - truth);
                        }
                    }
                    None => unscored += 1,
                }
            }
            observer.after_tick(&fleet, ticks, t);
        }
    }

    // End of stream: reports still held by reordering channels arrive now
    // (the delayed packet shows up late rather than vanishing), and one
    // final unconditional pass coalesces everything still pending — both
    // the flushed holds and any tail steps past the last scoring tick when
    // `steps` is not divisible by `process_every`. Without it the report's
    // telemetry books would miss those reports and the end-of-run TTE would
    // be scored from stale estimates. Absorbed outside the scored ticks —
    // this pass refreshes accounting, not accuracy samples.
    for (i, channel) in channels.iter_mut().enumerate() {
        channel.flush(&mut deliver);
        for report in deliver.drain(..) {
            reports_delivered += 1;
            fleet.ingest(i as u64, report);
        }
    }
    fleet.process_pending();

    // Time-to-empty at the scenario's end, against the simulator's true
    // remaining charge, at a 1C (fresh-capacity) reference discharge.
    let reference_a = population.params.c_rate(1.0);
    let mut tte_sum = 0.0;
    let mut tte_max = 0.0f64;
    let mut tte_count = 0u64;
    let mut true_soc_sum = 0.0;
    for (i, sim) in sims.iter().enumerate() {
        let truth = sim.state().soc.value();
        true_soc_sum += truth;
        if let Some(predicted) = fleet.time_to_empty(i as u64, reference_a) {
            let actual = truth * 3600.0 * capacities[i] / reference_a;
            let error = (predicted - actual).abs();
            tte_sum += error;
            tte_max = tte_max.max(error);
            tte_count += 1;
        }
    }

    let mut injected = FaultCounts::default();
    for channel in &channels {
        injected.accumulate(&channel.counts);
    }
    ScenarioResult {
        name: scenario.name.clone(),
        seed: scenario.seed,
        cells,
        ticks,
        reports_generated,
        reports_delivered,
        injected,
        telemetry: fleet.telemetry_stats(),
        best: best.finish(),
        network: network.finish(),
        coulomb: coulomb.finish(),
        ekf: ekf.finish(),
        time_to_empty: TteAccuracy {
            mean_abs_error_s: if tte_count > 0 {
                tte_sum / tte_count as f64
            } else {
                0.0
            },
            max_abs_error_s: tte_max,
            count: tte_count,
        },
        unscored_cell_ticks: unscored,
        final_mean_true_soc: true_soc_sum / cells as f64,
    }
}
