//! Seeded crash injection for closed-loop scenarios.
//!
//! [`run_crash_scenario`] runs a scenario twice: once uninterrupted against
//! a plain [`FleetEngine`] (the control), and once against a
//! [`DurableFleet`] that is **killed** at a seeded tick — the process-death
//! simulation drops the fleet without its final flush and then vandalizes
//! the durability directory according to the [`CrashPoint`] — recovered
//! with [`pinnsoc_durable::recover`], and driven to the end of the
//! scenario. The returned [`CrashScenarioRun`] carries both final per-cell
//! estimate sets; [`CrashScenarioRun::bit_identical`] is the paper-grade
//! acceptance check: crash + recovery must be invisible in the estimates.
//!
//! ## Why the continuation is exact
//!
//! Every generation-side component — population draws, ground-truth
//! simulators, load profiles, fault channels — is a pure function of the
//! scenario seed. The continuation rebuilds them from scratch and
//! fast-forwards to the recovered tick boundary *discarding* deliveries
//! (they are already committed inside the recovered engine), then delivers
//! normally from there. Held packets inside reordering fault channels are
//! reproduced by the fast-forward, so nothing is delivered twice and
//! nothing is lost — exactly the recovery procedure a real fleet gateway
//! would run by replaying its upstream feed from the last commit.

use crate::faults::FaultChannel;
use crate::runner::EngineSpec;
use crate::spec::Scenario;
use pinnsoc::SocModel;
use pinnsoc_battery::{aged_params, CellSim, Soc, Soh};
use pinnsoc_durable::{record_recovery, recover, DurableConfig, DurableFleet, RecoveryReport};
use pinnsoc_fleet::{CellConfig, CellId, FleetConfig, FleetEngine, SocEstimate, Telemetry};
use pinnsoc_obs::ObsHub;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Where in the durability machinery the seeded kill lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Death mid-tick: part of the next tick's reports sit in the WAL
    /// buffer (lost with the process) and a torn partial write is appended
    /// to the live segment.
    MidTick,
    /// Death mid-snapshot: a partial `snapshot.tmp` is left behind; the
    /// previous complete snapshot must win (temp-write + rename
    /// atomicity).
    MidSnapshot,
    /// Death mid-rotation/flush: the live segment loses its tail bytes,
    /// possibly cutting into committed records — recovery then lands on an
    /// earlier commit and the continuation replays further.
    MidRotation,
}

/// One seeded kill: when, where, and the durability cadence under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Committed tick after which the process dies (must be at least 1 and
    /// before the scenario's final tick).
    pub kill_tick: u64,
    /// What the death tears.
    pub point: CrashPoint,
    /// Snapshot cadence of the durable fleet under test.
    pub snapshot_every_ticks: u64,
    /// WAL segment rotation threshold, bytes — small by default so crash
    /// scenarios exercise rotation.
    pub max_segment_bytes: u64,
}

impl CrashPlan {
    /// A mid-tick kill after `kill_tick` commits, with a small snapshot
    /// cadence and segment size so snapshots and rotations both happen.
    pub fn at_tick(kill_tick: u64) -> Self {
        Self {
            kill_tick,
            point: CrashPoint::MidTick,
            snapshot_every_ticks: 4,
            max_segment_bytes: 64 << 10,
        }
    }

    /// The same plan with a different [`CrashPoint`].
    pub fn with_point(mut self, point: CrashPoint) -> Self {
        self.point = point;
        self
    }
}

/// One cell's final estimate, in bit-comparable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellEstimate {
    /// The cell id.
    pub id: CellId,
    /// The best SoC estimate's raw bits ([`f64::to_bits`]).
    pub soc_bits: u64,
    /// Which estimator produced it.
    pub source: SocEstimate,
}

/// What [`run_crash_scenario`] produced.
#[derive(Debug, Clone)]
pub struct CrashScenarioRun {
    /// What recovery found on disk.
    pub recovery: RecoveryReport,
    /// Committed tick the crash run resumed from (≤ the kill tick when the
    /// crash point tore committed records).
    pub resumed_tick: u64,
    /// Committed ticks at the end of the crash run (scored ticks plus the
    /// final coalescing pass).
    pub final_tick: u64,
    /// Final estimates of the uninterrupted control run, by cell id.
    pub control: Vec<CellEstimate>,
    /// Final estimates of the crash-recover-continue run, by cell id.
    pub recovered: Vec<CellEstimate>,
}

impl CrashScenarioRun {
    /// `true` when the crash run's final estimates are bit-identical to
    /// the control's — the durability acceptance criterion.
    pub fn bit_identical(&self) -> bool {
        self.control == self.recovered
    }
}

/// The deterministic generation side of one scenario: ground-truth
/// simulators, fault channels, and load profiles, rebuilt bit-identically
/// from the scenario seed any number of times.
struct SimLoop {
    sims: Vec<CellSim>,
    channels: Vec<FaultChannel>,
    currents: Vec<Vec<f64>>,
    configs: Vec<CellConfig>,
    scenario: Scenario,
}

impl SimLoop {
    /// Mirrors the population/stream derivation of
    /// [`crate::run_scenario_observed`]: one seeded RNG stream for the
    /// population, salted per-cell streams for loads and faults.
    fn build(scenario: &Scenario) -> Self {
        let population = &scenario.population;
        let timing = &scenario.timing;
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let uniform = |rng: &mut StdRng, (lo, hi): (f64, f64)| lo + (hi - lo) * rng.gen::<f64>();
        let ambient0 = scenario.environment.ambient_at(0.0, timing.duration_s);
        let cells = population.cells;
        let mut sims = Vec::with_capacity(cells);
        let mut channels = Vec::with_capacity(cells);
        let mut currents = Vec::with_capacity(cells);
        let mut configs = Vec::with_capacity(cells);
        for id in 0..cells as u64 {
            let soh = Soh::new(uniform(&mut rng, population.soh)).expect("validated range");
            let initial_soc = uniform(&mut rng, population.initial_soc);
            let aged = aged_params(&population.params, soh);
            sims.push(CellSim::new(
                aged.clone(),
                Soc::clamped(initial_soc),
                ambient0,
            ));
            channels.push(FaultChannel::new(
                scenario.faults,
                crate::runner::cell_stream(scenario.seed, id, 0xFA17),
            ));
            currents.push(crate::runner::cell_currents(scenario, id));
            configs.push(CellConfig {
                initial_soc,
                capacity_ah: aged.capacity_ah,
            });
        }
        Self {
            sims,
            channels,
            currents,
            configs,
            scenario: scenario.clone(),
        }
    }

    /// The rest-state baseline reports at t = 0.
    fn baseline(&mut self, out: &mut Vec<(CellId, Telemetry)>) {
        let mut deliver = Vec::new();
        for (i, sim) in self.sims.iter().enumerate() {
            self.channels[i].transmit(
                Telemetry {
                    time_s: 0.0,
                    voltage_v: sim.terminal_voltage_if(0.0),
                    current_a: 0.0,
                    temperature_c: sim.state().temperature_c,
                },
                &mut deliver,
            );
            out.extend(deliver.drain(..).map(|t| (i as CellId, t)));
        }
    }

    /// Advances every simulator through telemetry step `step` (1-based)
    /// and collects the fault-mangled deliveries.
    fn step(&mut self, step: usize, out: &mut Vec<(CellId, Telemetry)>) {
        let timing = &self.scenario.timing;
        let t = step as f64 * timing.dt_s;
        let ambient = self.scenario.environment.ambient_at(t, timing.duration_s);
        let mut deliver = Vec::new();
        for (i, sim) in self.sims.iter_mut().enumerate() {
            sim.set_ambient_c(ambient);
            let record = sim.step(self.currents[i][step - 1], timing.dt_s);
            self.channels[i].transmit(
                Telemetry {
                    time_s: t,
                    voltage_v: record.voltage_v,
                    current_a: record.current_a,
                    temperature_c: record.temperature_c,
                },
                &mut deliver,
            );
            out.extend(deliver.drain(..).map(|t| (i as CellId, t)));
        }
    }

    /// End-of-stream: releases reports still held by reordering channels.
    fn flush(&mut self, out: &mut Vec<(CellId, Telemetry)>) {
        let mut deliver = Vec::new();
        for (i, channel) in self.channels.iter_mut().enumerate() {
            channel.flush(&mut deliver);
            out.extend(deliver.drain(..).map(|t| (i as CellId, t)));
        }
    }
}

fn fleet_config(scenario: &Scenario, engine: &EngineSpec) -> FleetConfig {
    FleetConfig {
        shards: engine.shards.max(1),
        micro_batch: engine.micro_batch.max(1),
        workers: engine.workers,
        ekf_fallback: Some(scenario.population.params.clone()),
        ..FleetConfig::default()
    }
}

fn final_estimates(engine: &FleetEngine) -> Vec<CellEstimate> {
    engine
        .ids()
        .into_iter()
        .map(|id| {
            let (soc, source) = engine.estimate(id).expect("registered cell");
            CellEstimate {
                id,
                soc_bits: soc.to_bits(),
                source,
            }
        })
        .collect()
}

/// The uninterrupted control: the same loop the crash run follows, against
/// a plain engine.
fn run_control(scenario: &Scenario, model: &SocModel, engine: &EngineSpec) -> Vec<CellEstimate> {
    let mut sim = SimLoop::build(scenario);
    let mut fleet = FleetEngine::new(model.clone(), fleet_config(scenario, engine));
    for (id, config) in sim.configs.clone().into_iter().enumerate() {
        fleet.register(id as CellId, config);
    }
    let mut out = Vec::new();
    sim.baseline(&mut out);
    for (id, telemetry) in out.drain(..) {
        fleet.ingest(id, telemetry);
    }
    let steps = scenario.timing.steps();
    for step in 1..=steps {
        sim.step(step, &mut out);
        for (id, telemetry) in out.drain(..) {
            fleet.ingest(id, telemetry);
        }
        if step % scenario.timing.process_every == 0 {
            fleet.process_pending();
        }
    }
    sim.flush(&mut out);
    for (id, telemetry) in out.drain(..) {
        fleet.ingest(id, telemetry);
    }
    fleet.process_pending();
    final_estimates(&fleet)
}

/// Vandalizes a durability directory the way the given crash point would,
/// with damage sizes drawn deterministically from `seed`. Public so other
/// crash harnesses (the service tier's per-engine kill test) can reuse the
/// exact process-death simulation [`run_crash_scenario`] applies.
///
/// # Errors
///
/// Propagates filesystem failures from the vandalism itself.
pub fn tear_directory(dir: &Path, seed: u64, point: CrashPoint) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let live_segment = || -> std::io::Result<Option<std::path::PathBuf>> {
        let mut segments: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with("wal-"))
                    .unwrap_or(false)
            })
            .collect();
        segments.sort();
        Ok(segments.pop())
    };
    match point {
        CrashPoint::MidTick => {
            // A torn partial append on the live segment.
            if let Some(path) = live_segment()? {
                let torn: Vec<u8> = (0..rng.gen_range(1..64usize))
                    .map(|_| rng.gen::<u32>() as u8)
                    .collect();
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)?
                    .write_all(&torn)?;
            }
        }
        CrashPoint::MidSnapshot => {
            // A half-written snapshot temp file that must never shadow the
            // completed snapshot.
            let torn: Vec<u8> = (0..rng.gen_range(16..256usize))
                .map(|_| rng.gen::<u32>() as u8)
                .collect();
            std::fs::write(dir.join("snapshot.tmp"), torn)?;
        }
        CrashPoint::MidRotation => {
            // The live segment loses its tail, possibly mid-record and
            // possibly into committed records.
            if let Some(path) = live_segment()? {
                let len = std::fs::metadata(&path)?.len();
                let cut = rng.gen_range(1..48u64).min(len);
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(len - cut)?;
            }
        }
    }
    Ok(())
}

/// Runs `scenario` against a [`DurableFleet`] rooted at `dir`, kills it
/// per `plan`, recovers, finishes the scenario, and returns both the
/// crash run's and an uninterrupted control's final estimates.
///
/// Recovery counters land in `obs` when one is given (the
/// `pinnsoc_durable_recovery_*` series).
///
/// # Panics
///
/// Panics if the scenario is invalid or `plan.kill_tick` is not inside
/// the scenario's scored tick range.
///
/// # Errors
///
/// Propagates durability I/O failures.
pub fn run_crash_scenario(
    scenario: &Scenario,
    model: &SocModel,
    engine: &EngineSpec,
    plan: &CrashPlan,
    dir: &Path,
    obs: Option<&Arc<ObsHub>>,
) -> std::io::Result<CrashScenarioRun> {
    scenario.validate();
    let timing = &scenario.timing;
    let steps = timing.steps();
    let total_ticks = (steps / timing.process_every) as u64;
    assert!(
        plan.kill_tick >= 1 && plan.kill_tick < total_ticks,
        "kill_tick {} outside scored tick range 1..{total_ticks}",
        plan.kill_tick
    );

    let control = run_control(scenario, model, engine);

    let config = DurableConfig {
        snapshot_every_ticks: plan.snapshot_every_ticks,
        max_segment_bytes: plan.max_segment_bytes,
        ..DurableConfig::new(dir)
    };

    // Phase 1: the doomed run, up to and including the kill tick's commit.
    let mut sim = SimLoop::build(scenario);
    let mut doomed = DurableFleet::create(
        FleetEngine::new(model.clone(), fleet_config(scenario, engine)),
        config.clone(),
    )?;
    for (id, cell_config) in sim.configs.clone().into_iter().enumerate() {
        doomed.register(id as CellId, cell_config);
    }
    let mut out = Vec::new();
    sim.baseline(&mut out);
    for (id, telemetry) in out.drain(..) {
        doomed.ingest(id, telemetry);
    }
    let kill_step = plan.kill_tick as usize * timing.process_every;
    for step in 1..=kill_step {
        sim.step(step, &mut out);
        for (id, telemetry) in out.drain(..) {
            doomed.ingest(id, telemetry);
        }
        if step % timing.process_every == 0 {
            doomed.process_pending()?;
        }
    }
    debug_assert_eq!(doomed.tick(), plan.kill_tick);
    if plan.point == CrashPoint::MidTick {
        // Half a tick in flight: these reports die in the WAL buffer.
        sim.step(kill_step + 1, &mut out);
        for (id, telemetry) in out.drain(..) {
            doomed.ingest(id, telemetry);
        }
    }
    // The kill: no flush, no shutdown — the process is simply gone.
    drop(doomed);
    tear_directory(dir, scenario.seed ^ 0xC4A5_0FDE_AD00_0001, plan.point)?;

    // Phase 2: recover, then continue the scenario from the recovered
    // commit with freshly rebuilt (seed-identical) generation state.
    let (mut fleet, recovery) = recover(config, engine.workers)?;
    if let Some(hub) = obs {
        record_recovery(hub, &recovery);
    }
    let resumed_tick = fleet.tick();
    let resume_step = resumed_tick as usize * timing.process_every;
    let mut sim = SimLoop::build(scenario);
    sim.baseline(&mut out);
    out.clear(); // committed long ago
    for step in 1..=steps {
        sim.step(step, &mut out);
        if step <= resume_step {
            // Fast-forward: these deliveries are inside the recovered
            // state; the channels still need to see the traffic so held
            // packets reproduce.
            out.clear();
            continue;
        }
        for (id, telemetry) in out.drain(..) {
            fleet.ingest(id, telemetry);
        }
        if step % timing.process_every == 0 {
            fleet.process_pending()?;
        }
    }
    sim.flush(&mut out);
    for (id, telemetry) in out.drain(..) {
        fleet.ingest(id, telemetry);
    }
    fleet.process_pending()?;

    Ok(CrashScenarioRun {
        recovery,
        resumed_tick,
        final_tick: fleet.tick(),
        control,
        recovered: final_estimates(fleet.engine()),
    })
}
