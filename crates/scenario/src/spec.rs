//! The scenario DSL: a [`Scenario`] is pure data — population, load,
//! environment, fault model, and timing — fully described by its fields and
//! its seed, so every run is reproducible bit-for-bit.

use crate::faults::FaultModel;
use pinnsoc_battery::CellParams;
use pinnsoc_cycles::DriveSchedule;
use serde::{Deserialize, Serialize};

/// One closed-loop validation scenario.
///
/// A ground-truth `pinnsoc_battery::CellSim` per cell generates telemetry,
/// the fault model mangles it in transit, a live `pinnsoc_fleet::FleetEngine`
/// consumes it, and every engine tick the estimates are scored against the
/// simulators' true SoC. Everything random derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name (unique within a suite).
    pub name: String,
    /// Master seed: population draws, per-cell load profiles, and per-cell
    /// fault channels all derive their streams from it.
    pub seed: u64,
    /// The cell population under test.
    pub population: PopulationSpec,
    /// What current each cell draws.
    pub load: LoadSpec,
    /// Ambient temperature over the scenario.
    pub environment: EnvSchedule,
    /// Telemetry corruption between the cells and the engine.
    pub faults: FaultModel,
    /// Step sizes and duration.
    pub timing: Timing,
}

impl Scenario {
    /// Validates the scenario, panicking with a clear message on
    /// nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics on an empty population, out-of-range SoC/SoH spreads, invalid
    /// timing, or an invalid fault model.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "scenario needs a name");
        self.population.validate();
        self.load.validate();
        self.environment.validate();
        self.timing.validate();
        self.faults.validate();
    }
}

/// The cell population: chemistry, initial-SoC spread, and aging state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of cells.
    pub cells: usize,
    /// Fresh (SoH = 1) parameter set; aged cells derive from it through
    /// [`pinnsoc_battery::aged_params`].
    pub params: CellParams,
    /// Per-cell initial SoC, drawn uniformly from this inclusive range.
    pub initial_soc: (f64, f64),
    /// Per-cell state of health, drawn uniformly from this inclusive range.
    /// `(1.0, 1.0)` is a fresh fleet.
    pub soh: (f64, f64),
}

impl PopulationSpec {
    /// A fresh fleet of `cells` cells with the given parameters, starting
    /// between 85% and 100% SoC.
    pub fn fresh(cells: usize, params: CellParams) -> Self {
        Self {
            cells,
            params,
            initial_soc: (0.85, 1.0),
            soh: (1.0, 1.0),
        }
    }

    fn validate(&self) {
        assert!(self.cells > 0, "population must contain at least one cell");
        let (lo, hi) = self.initial_soc;
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "initial SoC range must be an ordered sub-range of [0, 1]"
        );
        let (lo, hi) = self.soh;
        assert!(
            lo > 0.0 && hi <= 1.0 && lo <= hi,
            "SoH range must be an ordered sub-range of (0, 1]"
        );
    }
}

/// What current each cell draws. C-rates are relative to the population's
/// *fresh* capacity (the load does not know a cell has aged — that is the
/// point of aged-fleet scenarios).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Constant current at the given C-rate (positive = discharge).
    ConstantCurrent {
        /// Discharge C-rate.
        c_rate: f64,
    },
    /// HPPC-style alternating pulse train.
    PulseTrain {
        /// Pulse C-rate.
        high_c: f64,
        /// Pulse duration, seconds.
        pulse_s: f64,
        /// Rest C-rate.
        low_c: f64,
        /// Rest duration, seconds.
        rest_s: f64,
    },
    /// An EPA drive schedule, converted to per-cell current through the
    /// compact-EV vehicle model. Each cell gets its own seeded trace
    /// (statistically equivalent, not identical), looping if the scenario
    /// outlasts the schedule.
    Drive {
        /// Which schedule to synthesize.
        schedule: DriveSchedule,
    },
    /// Randomized EV usage: each cell drives its own mixed concatenation of
    /// schedules (`pinnsoc_cycles::MixedCycleBuilder`).
    MixedEv {
        /// Schedule segments per cell.
        segments: usize,
    },
}

impl LoadSpec {
    fn validate(&self) {
        match self {
            LoadSpec::ConstantCurrent { c_rate } => {
                assert!(c_rate.is_finite(), "C-rate must be finite");
            }
            LoadSpec::PulseTrain {
                high_c,
                pulse_s,
                low_c,
                rest_s,
            } => {
                assert!(
                    high_c.is_finite() && low_c.is_finite(),
                    "C-rates must be finite"
                );
                assert!(
                    *pulse_s > 0.0 && *rest_s > 0.0,
                    "pulse and rest durations must be positive"
                );
            }
            LoadSpec::Drive { .. } => {}
            LoadSpec::MixedEv { segments } => {
                assert!(*segments > 0, "at least one mixed segment required");
            }
        }
    }
}

/// Ambient temperature over the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnvSchedule {
    /// Fixed ambient, °C.
    Constant(f64),
    /// Linear sweep from `from_c` to `to_c` over the scenario duration.
    Ramp {
        /// Ambient at t = 0, °C.
        from_c: f64,
        /// Ambient at the end of the scenario, °C.
        to_c: f64,
    },
    /// Sinusoidal ambient (diurnal-style cycling).
    Sinusoid {
        /// Mean ambient, °C.
        mean_c: f64,
        /// Peak deviation from the mean, °C.
        amplitude_c: f64,
        /// Oscillation period, seconds.
        period_s: f64,
    },
    /// Abrupt mid-run shift (a cold snap, a vehicle leaving a heated
    /// garage): the distribution-shift injection the online-adaptation
    /// drift detector exists for.
    Step {
        /// Ambient before the shift, °C.
        before_c: f64,
        /// Ambient from the shift on, °C.
        after_c: f64,
        /// When the shift lands, as a fraction of the scenario duration
        /// in `(0, 1)`.
        at_frac: f64,
    },
}

impl EnvSchedule {
    /// Ambient temperature at elapsed time `t` of a `duration`-second run.
    pub fn ambient_at(&self, t_s: f64, duration_s: f64) -> f64 {
        match self {
            EnvSchedule::Constant(c) => *c,
            EnvSchedule::Ramp { from_c, to_c } => {
                let frac = if duration_s > 0.0 {
                    (t_s / duration_s).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                from_c + (to_c - from_c) * frac
            }
            EnvSchedule::Sinusoid {
                mean_c,
                amplitude_c,
                period_s,
            } => mean_c + amplitude_c * (std::f64::consts::TAU * t_s / period_s).sin(),
            EnvSchedule::Step {
                before_c,
                after_c,
                at_frac,
            } => {
                if duration_s > 0.0 && t_s / duration_s >= *at_frac {
                    *after_c
                } else {
                    *before_c
                }
            }
        }
    }

    fn validate(&self) {
        match self {
            EnvSchedule::Constant(c) => {
                assert!(c.is_finite(), "ambient temperature must be finite");
            }
            EnvSchedule::Ramp { from_c, to_c } => {
                assert!(
                    from_c.is_finite() && to_c.is_finite(),
                    "ramp temperatures must be finite"
                );
            }
            EnvSchedule::Sinusoid {
                mean_c,
                amplitude_c,
                period_s,
            } => {
                assert!(
                    mean_c.is_finite() && amplitude_c.is_finite(),
                    "sinusoid temperatures must be finite"
                );
                assert!(
                    period_s.is_finite() && *period_s > 0.0,
                    "sinusoid period must be positive and finite"
                );
            }
            EnvSchedule::Step {
                before_c,
                after_c,
                at_frac,
            } => {
                assert!(
                    before_c.is_finite() && after_c.is_finite(),
                    "step temperatures must be finite"
                );
                assert!(
                    at_frac.is_finite() && *at_frac > 0.0 && *at_frac < 1.0,
                    "step fraction must lie strictly inside (0, 1)"
                );
            }
        }
    }
}

/// Step sizes and duration of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Total simulated time, seconds.
    pub duration_s: f64,
    /// Simulation step — also the telemetry cadence: every cell reports
    /// once per step (before faults).
    pub dt_s: f64,
    /// Telemetry steps between engine processing passes (scoring happens
    /// after each pass).
    pub process_every: usize,
}

impl Timing {
    /// Telemetry steps in the scenario.
    pub fn steps(&self) -> usize {
        (self.duration_s / self.dt_s).round().max(1.0) as usize
    }

    fn validate(&self) {
        assert!(
            self.duration_s > 0.0 && self.dt_s > 0.0,
            "durations must be positive"
        );
        assert!(
            self.duration_s >= self.dt_s,
            "duration must cover at least one step"
        );
        assert!(self.process_every > 0, "process_every must be positive");
        assert!(
            self.steps() >= self.process_every,
            "scenario must reach at least one processing pass"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            name: "test".into(),
            seed: 1,
            population: PopulationSpec::fresh(4, CellParams::nmc_18650()),
            load: LoadSpec::ConstantCurrent { c_rate: 1.0 },
            environment: EnvSchedule::Constant(25.0),
            faults: FaultModel::none(),
            timing: Timing {
                duration_s: 60.0,
                dt_s: 1.0,
                process_every: 10,
            },
        }
    }

    #[test]
    fn valid_scenario_passes() {
        scenario().validate();
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_population_rejected() {
        let mut s = scenario();
        s.population.cells = 0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "SoH range")]
    fn inverted_soh_range_rejected() {
        let mut s = scenario();
        s.population.soh = (0.9, 0.7);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "at least one processing pass")]
    fn unreachable_process_tick_rejected() {
        let mut s = scenario();
        s.timing.process_every = 1000;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "sinusoid period")]
    fn zero_sinusoid_period_rejected() {
        let mut s = scenario();
        s.environment = EnvSchedule::Sinusoid {
            mean_c: 20.0,
            amplitude_c: 5.0,
            period_s: 0.0,
        };
        s.validate();
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_ambient_rejected() {
        let mut s = scenario();
        s.environment = EnvSchedule::Constant(f64::NAN);
        s.validate();
    }

    #[test]
    fn env_schedules_interpolate() {
        assert_eq!(EnvSchedule::Constant(25.0).ambient_at(100.0, 200.0), 25.0);
        let ramp = EnvSchedule::Ramp {
            from_c: -10.0,
            to_c: 30.0,
        };
        assert_eq!(ramp.ambient_at(0.0, 100.0), -10.0);
        assert_eq!(ramp.ambient_at(50.0, 100.0), 10.0);
        assert_eq!(ramp.ambient_at(100.0, 100.0), 30.0);
        assert_eq!(ramp.ambient_at(500.0, 100.0), 30.0, "clamped past the end");
        let sine = EnvSchedule::Sinusoid {
            mean_c: 20.0,
            amplitude_c: 5.0,
            period_s: 100.0,
        };
        assert!((sine.ambient_at(25.0, 100.0) - 25.0).abs() < 1e-9);
        assert!((sine.ambient_at(75.0, 100.0) - 15.0).abs() < 1e-9);
        let step = EnvSchedule::Step {
            before_c: 25.0,
            after_c: -5.0,
            at_frac: 0.5,
        };
        assert_eq!(step.ambient_at(0.0, 100.0), 25.0);
        assert_eq!(step.ambient_at(49.9, 100.0), 25.0);
        assert_eq!(step.ambient_at(50.0, 100.0), -5.0, "shift is inclusive");
        assert_eq!(step.ambient_at(100.0, 100.0), -5.0);
    }

    #[test]
    #[should_panic(expected = "step fraction")]
    fn step_fraction_outside_unit_interval_rejected() {
        let mut s = scenario();
        s.environment = EnvSchedule::Step {
            before_c: 20.0,
            after_c: 0.0,
            at_frac: 1.0,
        };
        s.validate();
    }

    #[test]
    fn timing_steps_rounds() {
        let t = Timing {
            duration_s: 10.0,
            dt_s: 3.0,
            process_every: 1,
        };
        assert_eq!(t.steps(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let s = scenario();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
