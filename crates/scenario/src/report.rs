//! Scenario scoring results.
//!
//! Everything in a [`ScenarioReport`] is a deterministic function of the
//! scenario specs and their seeds: error sums accumulate in a fixed order
//! (cells ascending within each tick, ticks in time order), so the same
//! suite produces a bit-identical report for any worker count. Wall-clock
//! timings are deliberately kept *outside* the report (see
//! `SuiteRun::timings`).

use crate::faults::FaultCounts;
use pinnsoc_fleet::TelemetryStats;
use serde::{Deserialize, Serialize};

/// Accuracy of one estimator against the ground-truth simulator, over every
/// scored `(cell, tick)` pair where the estimator produced a value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimatorAccuracy {
    /// Mean absolute SoC error (0 when `count` is 0).
    pub mae: f64,
    /// Worst absolute SoC error.
    pub max_abs: f64,
    /// Scored `(cell, tick)` pairs.
    pub count: u64,
}

/// Streaming absolute-error accumulator behind [`EstimatorAccuracy`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ErrorStat {
    sum_abs: f64,
    max_abs: f64,
    count: u64,
}

impl ErrorStat {
    pub(crate) fn add(&mut self, error: f64) {
        let abs = error.abs();
        self.sum_abs += abs;
        self.max_abs = self.max_abs.max(abs);
        self.count += 1;
    }

    pub(crate) fn finish(&self) -> EstimatorAccuracy {
        EstimatorAccuracy {
            mae: if self.count > 0 {
                self.sum_abs / self.count as f64
            } else {
                0.0
            },
            max_abs: self.max_abs,
            count: self.count,
        }
    }
}

/// Time-to-empty prediction accuracy at the scenario's end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TteAccuracy {
    /// Mean absolute time-to-empty error, seconds (0 when `count` is 0).
    pub mean_abs_error_s: f64,
    /// Worst absolute time-to-empty error, seconds.
    pub max_abs_error_s: f64,
    /// Cells scored.
    pub count: u64,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Cells in the population.
    pub cells: usize,
    /// Engine processing passes executed (= scoring rounds).
    pub ticks: usize,
    /// Measurements the simulators produced (before faults).
    pub reports_generated: u64,
    /// Reports that reached the engine (after dropout/duplication).
    pub reports_delivered: u64,
    /// Faults the scenario injected, by kind.
    pub injected: FaultCounts,
    /// The engine's own telemetry accounting, to read against
    /// [`ScenarioResult::injected`]. Delivered reports are always fully
    /// accounted (`accepted + rejected == delivered`), but the per-kind
    /// books only correspond loosely under combined fault modes: a
    /// reordered report whose successor was itself corrupted or dropped can
    /// still be accepted, a corrupted report can be dropped before reaching
    /// the engine, a duplicated corrupted report is rejected twice, and
    /// clock jitter produces time reversals of its own.
    pub telemetry: TelemetryStats,
    /// Accuracy of the engine's best estimate (its serving answer).
    pub best: EstimatorAccuracy,
    /// Accuracy of the latest network (Branch-1) estimate.
    pub network: EstimatorAccuracy,
    /// Accuracy of the running Coulomb integral.
    pub coulomb: EstimatorAccuracy,
    /// Accuracy of the EKF fallback.
    pub ekf: EstimatorAccuracy,
    /// Time-to-empty error at the scenario's end, against the simulator's
    /// true remaining charge at a 1C reference discharge.
    pub time_to_empty: TteAccuracy,
    /// `(cell, tick)` pairs that could not be scored because the engine had
    /// no estimate yet (e.g. every report dropped so far).
    pub unscored_cell_ticks: u64,
    /// Mean ground-truth SoC over the population when the scenario ended.
    pub final_mean_true_soc: f64,
}

/// The deterministic outcome of a whole suite, in suite order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// One result per scenario, in the order the suite listed them.
    pub scenarios: Vec<ScenarioResult>,
}

impl ScenarioReport {
    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stat_accumulates() {
        let mut stat = ErrorStat::default();
        stat.add(0.1);
        stat.add(-0.3);
        stat.add(0.2);
        let acc = stat.finish();
        assert!((acc.mae - 0.2).abs() < 1e-12);
        assert_eq!(acc.max_abs, 0.3);
        assert_eq!(acc.count, 3);
    }

    #[test]
    fn empty_stat_is_zero() {
        let acc = ErrorStat::default().finish();
        assert_eq!(acc, EstimatorAccuracy::default());
    }
}
