//! The quantized-promotion gate: the **only** legal road from an int8
//! candidate to production serving.
//!
//! [`gate_quantized`] runs the same closed-loop suite (normally
//! [`crate::gate_suite`] — the suite online adaptation already gates
//! fine-tuned candidates through) twice: once against the f32 incumbent
//! the candidate was quantized from, once against the candidate through
//! the fleet's int8 evaluation seam. Both runs see identical seeded
//! physics, faults, and scoring; only the serving network differs. The
//! candidate's mean network MAE must land within a
//! [`GateTolerance`] of the incumbent's, and only then is a
//! [`GateCertificate`] minted ([`GateCertificate::attest`] refuses failing
//! scores by construction). The certificate is what
//! [`pinnsoc_fleet::ModelRegistry::install_quantized`] demands — so a
//! quantized model that skipped or failed this gate structurally cannot
//! reach serving, and speed can never silently buy accuracy.

use crate::runner::{EngineSpec, ScenarioRunner, SuiteRun};
use crate::spec::Scenario;
use pinnsoc::QuantizedSocModel;
use pinnsoc_fleet::{GateCertificate, GateTolerance};
use pinnsoc_obs::ObsHub;
use std::sync::Arc;

/// How to run the quantized-promotion gate.
#[derive(Debug, Clone)]
pub struct QuantizedGateConfig {
    /// The scenarios to score both models on (normally
    /// [`crate::gate_suite`]). Must be non-empty.
    pub suite: Vec<Scenario>,
    /// Worker threads for the suite runner (the calling thread
    /// participates).
    pub runner_workers: usize,
    /// Per-scenario engine configuration.
    pub engine: EngineSpec,
    /// The accuracy tolerance the candidate must meet.
    pub tolerance: GateTolerance,
    /// The registry version of the incumbent the candidate would shadow —
    /// a minted certificate is bound to it, and
    /// [`pinnsoc_fleet::ModelRegistry::install_quantized`] refuses the
    /// certificate if the registry has moved on since.
    pub registry_version: u64,
    /// Observability hub for the underlying suite runs, if any.
    pub obs: Option<Arc<ObsHub>>,
}

/// What the gate measured, pass or fail.
#[derive(Debug)]
pub struct QuantizedGateOutcome {
    /// Mean network MAE of the f32 incumbent over the suite.
    pub incumbent_mae: f64,
    /// Mean network MAE of the int8 candidate over the suite.
    pub quantized_mae: f64,
    /// `Some` iff the candidate passed — the proof
    /// [`pinnsoc_fleet::ModelRegistry::install_quantized`] demands.
    pub certificate: Option<GateCertificate>,
    /// The incumbent's full suite run (diagnostics).
    pub incumbent_run: SuiteRun,
    /// The candidate's full suite run (diagnostics).
    pub quantized_run: SuiteRun,
}

impl QuantizedGateOutcome {
    /// Whether the candidate passed the gate.
    pub fn passed(&self) -> bool {
        self.certificate.is_some()
    }
}

/// Mean network MAE over a finished suite.
pub(crate) fn suite_network_mae(run: &SuiteRun) -> f64 {
    let scenarios = &run.report.scenarios;
    scenarios.iter().map(|s| s.network.mae).sum::<f64>() / scenarios.len() as f64
}

/// Scores `candidate` against its own f32 source over the configured suite
/// and mints a [`GateCertificate`] iff the candidate's accuracy is within
/// tolerance. See the [module docs](self) for the promotion contract.
///
/// # Panics
///
/// Panics if the suite is empty or any scenario is invalid.
pub fn gate_quantized(
    candidate: &Arc<QuantizedSocModel>,
    config: &QuantizedGateConfig,
) -> QuantizedGateOutcome {
    assert!(!config.suite.is_empty(), "gate needs at least one scenario");
    let runner = ScenarioRunner {
        workers: config.runner_workers,
        engine: config.engine,
        obs: config.obs.clone(),
    };
    let incumbent_run = runner.run(&config.suite, candidate.source());
    let quantized_run = runner.run_quantized(&config.suite, candidate);
    let incumbent_mae = suite_network_mae(&incumbent_run);
    let quantized_mae = suite_network_mae(&quantized_run);
    let certificate = GateCertificate::attest(
        candidate.source(),
        config.registry_version,
        incumbent_mae,
        quantized_mae,
        config.tolerance,
        config.suite.len(),
    );
    if let Some(hub) = &config.obs {
        let verdict = if certificate.is_some() {
            "pass"
        } else {
            "fail"
        };
        hub.emit(
            "scenario",
            format!(
                "quantized gate {verdict}: candidate MAE {quantized_mae:.5} vs incumbent {incumbent_mae:.5}"
            ),
        );
    }
    QuantizedGateOutcome {
        incumbent_mae,
        quantized_mae,
        certificate,
        incumbent_run,
        quantized_run,
    }
}
