//! The standard validation suite: the scenario battery every change to the
//! serving or estimation stack should survive.

use crate::faults::FaultModel;
use crate::spec::{EnvSchedule, LoadSpec, PopulationSpec, Scenario, Timing};
use pinnsoc_battery::CellParams;
use pinnsoc_cycles::DriveSchedule;

/// Standard per-scenario timing: 30 simulated minutes at 1 s telemetry,
/// one engine pass (and scoring round) every 15 s.
fn standard_timing() -> Timing {
    Timing {
        duration_s: 1800.0,
        dt_s: 1.0,
        process_every: 15,
    }
}

fn scenario(
    name: &str,
    seed: u64,
    population: PopulationSpec,
    load: LoadSpec,
    environment: EnvSchedule,
    faults: FaultModel,
) -> Scenario {
    Scenario {
        name: name.into(),
        seed,
        population,
        load,
        environment,
        faults,
        timing: standard_timing(),
    }
}

/// The standard eleven-scenario suite, spanning lab patterns, drive cycles,
/// temperature sweeps, aged fleets, sensor noise, and transport faults.
/// Every scenario derives its streams from `seed` plus its position, so one
/// number reproduces the whole battery.
pub fn standard_suite(seed: u64) -> Vec<Scenario> {
    let fresh = |cells| PopulationSpec::fresh(cells, CellParams::nmc_18650());
    vec![
        // Clean lab baselines: the regime the paper trains in.
        scenario(
            "constant-1c-clean",
            seed,
            fresh(24),
            LoadSpec::ConstantCurrent { c_rate: 1.0 },
            EnvSchedule::Constant(25.0),
            FaultModel::none(),
        ),
        scenario(
            "pulse-hppc-clean",
            seed.wrapping_add(1),
            fresh(24),
            LoadSpec::PulseTrain {
                high_c: 2.0,
                pulse_s: 10.0,
                low_c: 0.1,
                rest_s: 20.0,
            },
            EnvSchedule::Constant(25.0),
            FaultModel::none(),
        ),
        // Drive cycles: the messy current spectra the LG dataset stands for.
        scenario(
            "drive-udds",
            seed.wrapping_add(2),
            fresh(24),
            LoadSpec::Drive {
                schedule: DriveSchedule::Udds,
            },
            EnvSchedule::Constant(25.0),
            FaultModel::none(),
        ),
        scenario(
            "drive-us06-hot",
            seed.wrapping_add(3),
            fresh(24),
            LoadSpec::Drive {
                schedule: DriveSchedule::Us06,
            },
            EnvSchedule::Constant(40.0),
            FaultModel::none(),
        ),
        scenario(
            "ev-mixed-random",
            seed.wrapping_add(4),
            fresh(24),
            LoadSpec::MixedEv { segments: 2 },
            EnvSchedule::Constant(25.0),
            FaultModel::none(),
        ),
        // Environment stress: ambient sweeping through the whole Sandia
        // temperature range within one run.
        scenario(
            "temperature-sweep",
            seed.wrapping_add(5),
            fresh(24),
            LoadSpec::ConstantCurrent { c_rate: 0.5 },
            EnvSchedule::Ramp {
                from_c: -5.0,
                to_c: 40.0,
            },
            FaultModel::none(),
        ),
        // Aged fleet: capacities 70–95% of rated, resistances grown to
        // match; the load still assumes fresh capacity.
        scenario(
            "aged-fleet",
            seed.wrapping_add(6),
            PopulationSpec {
                soh: (0.70, 0.95),
                initial_soc: (0.80, 1.0),
                ..PopulationSpec::fresh(24, CellParams::nmc_18650())
            },
            LoadSpec::Drive {
                schedule: DriveSchedule::Udds,
            },
            EnvSchedule::Constant(25.0),
            FaultModel::none(),
        ),
        // Sensor faults.
        scenario(
            "noisy-sensors",
            seed.wrapping_add(7),
            fresh(24),
            LoadSpec::Drive {
                schedule: DriveSchedule::La92,
            },
            EnvSchedule::Constant(25.0),
            FaultModel::sensor_noise(),
        ),
        // Transport faults, two modes: plain dropout, then the full mess.
        scenario(
            "transport-dropout",
            seed.wrapping_add(8),
            fresh(24),
            LoadSpec::Drive {
                schedule: DriveSchedule::Udds,
            },
            EnvSchedule::Constant(25.0),
            FaultModel {
                dropout: 0.25,
                ..FaultModel::none()
            },
        ),
        scenario(
            "transport-chaos",
            seed.wrapping_add(9),
            fresh(24),
            LoadSpec::Drive {
                schedule: DriveSchedule::Us06,
            },
            EnvSchedule::Sinusoid {
                mean_c: 20.0,
                amplitude_c: 10.0,
                period_s: 900.0,
            },
            FaultModel {
                dropout: 0.05,
                duplicate: 0.10,
                reorder: 0.10,
                clock_skew_s: 0.25,
                clock_jitter_s: 0.6,
                non_finite: 0.02,
                ..FaultModel::sensor_noise()
            },
        ),
        // Distribution shift mid-run: an aged fleet of mixed-EV drivers hits
        // an abrupt cold snap halfway through — the train/serve drift that
        // the `pinnsoc-adapt` online-adaptation loop exists to close.
        scenario(
            "drifting-fleet",
            seed.wrapping_add(10),
            PopulationSpec {
                soh: (0.75, 0.92),
                initial_soc: (0.70, 0.95),
                ..PopulationSpec::fresh(24, CellParams::nmc_18650())
            },
            LoadSpec::MixedEv { segments: 2 },
            EnvSchedule::Step {
                before_c: 25.0,
                after_c: -5.0,
                at_frac: 0.5,
            },
            FaultModel::none(),
        ),
    ]
}

/// The promotion-gate suite of the online-adaptation loop: a CI-sized
/// battery of the regimes adaptation targets (a drive cycle, and a mid-run
/// temperature-step drift on an aged sub-fleet). A fine-tuned candidate
/// must beat the incumbent's network MAE across these before it may
/// hot-swap into the serving registry — small on purpose, since the gate
/// runs inside the adaptation loop.
pub fn gate_suite(seed: u64) -> Vec<Scenario> {
    let timing = Timing {
        duration_s: 240.0,
        dt_s: 1.0,
        process_every: 10,
    };
    vec![
        Scenario {
            name: "gate-drive-udds".into(),
            seed,
            population: PopulationSpec {
                initial_soc: (0.75, 0.95),
                ..PopulationSpec::fresh(6, CellParams::nmc_18650())
            },
            load: LoadSpec::Drive {
                schedule: DriveSchedule::Udds,
            },
            environment: EnvSchedule::Constant(25.0),
            faults: FaultModel::none(),
            timing,
        },
        Scenario {
            name: "gate-drift-step".into(),
            seed: seed.wrapping_add(1),
            population: PopulationSpec {
                soh: (0.80, 0.95),
                initial_soc: (0.70, 0.95),
                ..PopulationSpec::fresh(6, CellParams::nmc_18650())
            },
            load: LoadSpec::MixedEv { segments: 1 },
            environment: EnvSchedule::Step {
                before_c: 25.0,
                after_c: -5.0,
                at_frac: 0.5,
            },
            faults: FaultModel::none(),
            timing,
        },
    ]
}

/// A three-scenario, CI-sized subset (small fleets, short runs) covering a
/// clean drive cycle, an environment sweep, and the full transport-fault
/// mix — used by the `scenario_baseline --smoke` gate.
pub fn smoke_suite(seed: u64) -> Vec<Scenario> {
    let timing = Timing {
        duration_s: 300.0,
        dt_s: 1.0,
        process_every: 10,
    };
    standard_suite(seed)
        .into_iter()
        .filter(|s| {
            matches!(
                s.name.as_str(),
                "drive-udds" | "temperature-sweep" | "transport-chaos"
            )
        })
        .map(|mut s| {
            s.population.cells = 8;
            s.timing = timing;
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_is_valid_distinct_and_broad() {
        let suite = standard_suite(42);
        assert!(
            suite.len() >= 8,
            "acceptance floor: {} scenarios",
            suite.len()
        );
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "names must be unique");
        for s in &suite {
            s.validate();
        }
        // Coverage floors from the acceptance criteria.
        assert!(
            suite
                .iter()
                .any(|s| matches!(s.load, LoadSpec::Drive { .. } | LoadSpec::MixedEv { .. })),
            "needs a drive cycle"
        );
        assert!(
            suite
                .iter()
                .any(|s| matches!(s.environment, EnvSchedule::Ramp { .. })),
            "needs a temperature sweep"
        );
        assert!(
            suite.iter().any(|s| s.population.soh.0 < 1.0),
            "needs aged cells"
        );
        assert!(
            suite.iter().any(|s| s.faults.voltage_noise_v > 0.0),
            "needs sensor noise"
        );
        let transport_modes = suite
            .iter()
            .flat_map(|s| {
                [
                    s.faults.dropout > 0.0,
                    s.faults.duplicate > 0.0,
                    s.faults.reorder > 0.0,
                ]
            })
            .filter(|&on| on)
            .count();
        assert!(
            transport_modes >= 2,
            "needs two or more transport-fault modes"
        );
        // The suite must exercise the condition online adaptation exists
        // for: a mid-run shift on a degraded population.
        let drift = suite
            .iter()
            .find(|s| s.name == "drifting-fleet")
            .expect("needs the drifting-fleet scenario");
        assert!(matches!(drift.environment, EnvSchedule::Step { .. }));
        assert!(drift.population.soh.0 < 1.0);
    }

    #[test]
    fn gate_suite_is_small_and_covers_drift() {
        let gate = gate_suite(3);
        assert_eq!(gate.len(), 2);
        for s in &gate {
            s.validate();
            assert!(s.population.cells <= 8, "gate must stay cheap");
            assert!(s.timing.duration_s <= 300.0);
        }
        assert!(gate
            .iter()
            .any(|s| matches!(s.environment, EnvSchedule::Step { .. })));
        assert_ne!(gate_suite(1), gate_suite(2));
    }

    #[test]
    fn smoke_suite_is_a_small_subset() {
        let smoke = smoke_suite(1);
        assert_eq!(smoke.len(), 3);
        for s in &smoke {
            s.validate();
            assert!(s.population.cells <= 8);
            assert!(s.timing.duration_s <= 300.0);
        }
    }

    #[test]
    fn suites_differ_by_seed() {
        assert_ne!(standard_suite(1), standard_suite(2));
        assert_eq!(standard_suite(3), standard_suite(3));
    }
}
