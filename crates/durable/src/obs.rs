//! Observability wiring: `pinnsoc_durable_*` series.
//!
//! All recording happens at tick boundaries or during recovery — both cold
//! paths — so the durable layer uses direct registry operations (the same
//! pattern as the scenario harness's suite recording) instead of a
//! worker-local buffer. With no hub attached, nothing is recorded and the
//! logged byte stream is byte-identical.

use crate::RecoveryReport;
use pinnsoc_obs::{MetricId, ObsHub, DURATION_BUCKETS};
use std::sync::Arc;

/// Metric handles for one [`crate::DurableFleet`].
#[derive(Debug)]
pub(crate) struct DurableObs {
    pub(crate) hub: Arc<ObsHub>,
    pub(crate) records: MetricId,
    pub(crate) bytes: MetricId,
    pub(crate) commits: MetricId,
    pub(crate) flush_seconds: MetricId,
    pub(crate) snapshots: MetricId,
    pub(crate) snapshot_seconds: MetricId,
    pub(crate) rotations: MetricId,
    pub(crate) segment_bytes: MetricId,
    pub(crate) tick: MetricId,
}

impl DurableObs {
    pub(crate) fn new(hub: &Arc<ObsHub>) -> Self {
        let r = hub.registry();
        Self {
            hub: Arc::clone(hub),
            records: r.counter(
                "pinnsoc_durable_records_total",
                "WAL records flushed to disk",
            ),
            bytes: r.counter(
                "pinnsoc_durable_bytes_total",
                "Framed WAL bytes flushed to disk",
            ),
            commits: r.counter(
                "pinnsoc_durable_commits_total",
                "Tick-boundary commit records written",
            ),
            flush_seconds: r.histogram(
                "pinnsoc_durable_flush_seconds",
                "Wall time of tick-boundary WAL flushes",
                DURATION_BUCKETS,
            ),
            snapshots: r.counter(
                "pinnsoc_durable_snapshots_total",
                "Snapshots written (including the creation/recovery baselines)",
            ),
            snapshot_seconds: r.histogram(
                "pinnsoc_durable_snapshot_seconds",
                "Wall time of snapshot writes (encode + temp-write + rename)",
                DURATION_BUCKETS,
            ),
            rotations: r.counter("pinnsoc_durable_rotations_total", "WAL segment rotations"),
            segment_bytes: r.gauge(
                "pinnsoc_durable_segment_bytes",
                "Bytes in the active WAL segment (header included)",
            ),
            tick: r.gauge(
                "pinnsoc_durable_tick",
                "Committed-tick counter (monotonic across restarts)",
            ),
        }
    }
}

/// Records one recovery's counters into `hub`: replayed records, commits,
/// the truncated tail, the dropped uncommitted records, and how far the
/// replayed WAL tail ran past the snapshot. Call after [`crate::recover`].
pub fn record_recovery(hub: &Arc<ObsHub>, report: &RecoveryReport) {
    let r = hub.registry();
    let recoveries = r.counter("pinnsoc_durable_recoveries_total", "Recoveries performed");
    r.add(recoveries, 1);
    let replayed = r.gauge(
        "pinnsoc_durable_recovery_records_replayed",
        "WAL records applied by the latest recovery",
    );
    r.set(replayed, report.records_replayed as f64);
    let truncated = r.gauge(
        "pinnsoc_durable_recovery_truncated_bytes",
        "WAL bytes refused by the latest recovery (torn tail / corruption)",
    );
    r.set(truncated, report.truncated_tail_bytes as f64);
    let dropped = r.gauge(
        "pinnsoc_durable_recovery_dropped_uncommitted",
        "Valid-but-uncommitted records dropped by the latest recovery",
    );
    r.set(dropped, report.dropped_uncommitted_records as f64);
    let age = r.gauge(
        "pinnsoc_durable_recovery_snapshot_age_ticks",
        "Ticks the latest recovery replayed past its snapshot",
    );
    r.set(age, report.snapshot_age_ticks() as f64);
    hub.emit(
        "durable",
        format!(
            "recovered tick {} from snapshot tick {} (+{} records, {} truncated bytes, {} uncommitted dropped)",
            report.tick,
            report.snapshot_tick,
            report.records_replayed,
            report.truncated_tail_bytes,
            report.dropped_uncommitted_records
        ),
    );
}
