//! Binary fleet snapshots: the periodic full-state checkpoint the WAL tail
//! replays on top of.
//!
//! ## On-disk format
//!
//! A single file `snapshot.bin`, always written to a temp file first and
//! atomically renamed into place — a crash mid-snapshot leaves the previous
//! snapshot untouched, never a half-written one:
//!
//! ```text
//! [magic "PSOCSNP1"][body][crc: u32 over body]
//! body = version u32
//!        last_seq u64           — highest WAL seq folded into this state
//!        tick u64               — committed-tick counter at capture
//!        model_version u64      — registry version at capture (reporting
//!                                 only; versions restart at 1 on recovery)
//!        model_json bytes       — serde_json SocModel (f64-bit-exact)
//!        shards u64, micro_batch u64
//!        ekf flag u8 [+ CellParams JSON bytes]
//!        telemetry 5 × u64
//!        cell count u64 + fixed-width per-cell state, flattened in
//!            shard-major slot order (FleetEngine::export_cells order)
//!        extension count u32 + (name bytes, blob bytes) pairs
//! ```
//!
//! Extensions are named opaque blobs — the seam higher layers (the
//! adaptation engine's session state) persist through without this crate
//! depending on them.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use pinnsoc_battery::EkfState;
use pinnsoc_fleet::{CellPersist, TelemetryStats};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a snapshot file (format version in the suffix).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PSOCSNP1";

const FORMAT_VERSION: u32 = 1;

/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Everything a snapshot captures.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Highest WAL sequence number folded into this state; replay skips
    /// records at or below it.
    pub last_seq: u64,
    /// Committed-tick counter at capture (monotonic across restarts).
    pub tick: u64,
    /// Registry version at capture. Reporting only: versions restart at 1
    /// on recovery (the counter is process-local by design).
    pub model_version: u64,
    /// The served model as `serde_json` bytes (JSON round-trips `f64`
    /// bit-exactly, so weights embed inside the CRC-protected binary
    /// envelope without a second binary codec).
    pub model_json: Vec<u8>,
    /// Engine shard count — replay must shard identically.
    pub shards: usize,
    /// Engine micro-batch size.
    pub micro_batch: usize,
    /// Engine-wide EKF fallback parameters as `serde_json` bytes, when the
    /// fallback was enabled.
    pub ekf_fallback_json: Option<Vec<u8>>,
    /// Cumulative telemetry books at capture.
    pub telemetry: TelemetryStats,
    /// Per-cell state in `FleetEngine::export_cells` order.
    pub cells: Vec<CellPersist>,
    /// Named opaque blobs from higher layers (adaptation session state).
    pub extensions: Vec<(String, Vec<u8>)>,
}

fn encode_cell(enc: &mut Enc<'_>, cell: &CellPersist) {
    enc.u64(cell.id);
    enc.f64(cell.capacity_ah);
    enc.f64(cell.time_s);
    enc.f64(cell.voltage_v);
    enc.f64(cell.current_a);
    enc.f64(cell.temperature_c);
    enc.u64(cell.reports);
    enc.f64(cell.net_time_s);
    enc.f64(cell.net_soc);
    enc.f64(cell.coulomb_soc);
    enc.f64(cell.coulomb_bias_a);
    match &cell.ekf {
        None => enc.u8(0),
        Some(state) => {
            enc.u8(1);
            enc.f64(state.x[0]);
            enc.f64(state.x[1]);
            enc.f64(state.p[0][0]);
            enc.f64(state.p[0][1]);
            enc.f64(state.p[1][0]);
            enc.f64(state.p[1][1]);
            enc.f64(state.q[0]);
            enc.f64(state.q[1]);
            enc.f64(state.r);
        }
    }
}

fn decode_cell(dec: &mut Dec<'_>) -> Option<CellPersist> {
    Some(CellPersist {
        id: dec.u64()?,
        capacity_ah: dec.f64()?,
        time_s: dec.f64()?,
        voltage_v: dec.f64()?,
        current_a: dec.f64()?,
        temperature_c: dec.f64()?,
        reports: dec.u64()?,
        net_time_s: dec.f64()?,
        net_soc: dec.f64()?,
        coulomb_soc: dec.f64()?,
        coulomb_bias_a: dec.f64()?,
        ekf: match dec.u8()? {
            0 => None,
            1 => Some(EkfState {
                x: [dec.f64()?, dec.f64()?],
                p: [[dec.f64()?, dec.f64()?], [dec.f64()?, dec.f64()?]],
                q: [dec.f64()?, dec.f64()?],
                r: dec.f64()?,
            }),
            _ => return None,
        },
    })
}

/// Encodes a complete snapshot file image (magic + body + CRC).
pub fn encode_snapshot(data: &SnapshotData) -> Vec<u8> {
    let mut body = Vec::with_capacity(128 + data.cells.len() * 96 + data.model_json.len());
    let mut enc = Enc(&mut body);
    enc.u32(FORMAT_VERSION);
    enc.u64(data.last_seq);
    enc.u64(data.tick);
    enc.u64(data.model_version);
    enc.bytes(&data.model_json);
    enc.u64(data.shards as u64);
    enc.u64(data.micro_batch as u64);
    match &data.ekf_fallback_json {
        None => enc.u8(0),
        Some(json) => {
            enc.u8(1);
            enc.bytes(json);
        }
    }
    enc.u64(data.telemetry.accepted);
    enc.u64(data.telemetry.duplicate_timestamp);
    enc.u64(data.telemetry.rejected_non_finite);
    enc.u64(data.telemetry.rejected_time_reversed);
    enc.u64(data.telemetry.unknown_cell);
    enc.u64(data.cells.len() as u64);
    for cell in &data.cells {
        encode_cell(&mut enc, cell);
    }
    enc.u32(data.extensions.len() as u32);
    for (name, blob) in &data.extensions {
        enc.bytes(name.as_bytes());
        enc.bytes(blob);
    }
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    let checksum = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a snapshot file image. `None` on any corruption: bad magic, bad
/// CRC, unknown format version, or a malformed body. Total and panic-free.
pub fn decode_snapshot(bytes: &[u8]) -> Option<SnapshotData> {
    let body_end = bytes.len().checked_sub(4)?;
    let (head, crc_bytes) = bytes.split_at(body_end);
    let body = head.strip_prefix(&SNAPSHOT_MAGIC[..])?;
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return None;
    }
    let mut dec = Dec::new(body);
    if dec.u32()? != FORMAT_VERSION {
        return None;
    }
    let last_seq = dec.u64()?;
    let tick = dec.u64()?;
    let model_version = dec.u64()?;
    let model_json = dec.bytes()?.to_vec();
    let shards = dec.u64()? as usize;
    let micro_batch = dec.u64()? as usize;
    let ekf_fallback_json = match dec.u8()? {
        0 => None,
        1 => Some(dec.bytes()?.to_vec()),
        _ => return None,
    };
    let telemetry = TelemetryStats {
        accepted: dec.u64()?,
        duplicate_timestamp: dec.u64()?,
        rejected_non_finite: dec.u64()?,
        rejected_time_reversed: dec.u64()?,
        unknown_cell: dec.u64()?,
    };
    let cell_count = dec.u64()? as usize;
    // The CRC already vouched for the byte count; this only guards the
    // allocation against a hand-crafted (CRC-consistent) absurd count.
    if cell_count > dec.remaining() / 12 + 1 {
        return None;
    }
    let mut cells = Vec::with_capacity(cell_count);
    for _ in 0..cell_count {
        cells.push(decode_cell(&mut dec)?);
    }
    let ext_count = dec.u32()? as usize;
    let mut extensions = Vec::with_capacity(ext_count.min(64));
    for _ in 0..ext_count {
        let name = std::str::from_utf8(dec.bytes()?).ok()?.to_string();
        let blob = dec.bytes()?.to_vec();
        extensions.push((name, blob));
    }
    (dec.remaining() == 0).then_some(SnapshotData {
        last_seq,
        tick,
        model_version,
        model_json,
        shards,
        micro_batch,
        ekf_fallback_json,
        telemetry,
        cells,
        extensions,
    })
}

/// Path of the live snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Writes `data` to `dir/snapshot.bin` via temp-write + rename, so the
/// previous snapshot stays valid until the new one fully exists.
pub fn write_snapshot(dir: &Path, data: &SnapshotData, fsync: bool) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let bytes = encode_snapshot(data);
    let tmp = dir.join(SNAPSHOT_TMP);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        if fsync {
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, snapshot_path(dir))?;
    if fsync {
        // Persist the rename itself (the directory entry).
        File::open(dir)?.sync_data()?;
    }
    Ok(())
}

/// Reads and validates `dir/snapshot.bin`. `Ok(None)` when the file does
/// not exist or fails validation — recovery treats both as "no usable
/// snapshot".
pub fn read_snapshot(dir: &Path) -> std::io::Result<Option<SnapshotData>> {
    let path = snapshot_path(dir);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut file) => file.read_to_end(&mut bytes).map(|_| ())?,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err),
    }
    Ok(decode_snapshot(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        SnapshotData {
            last_seq: 42,
            tick: 7,
            model_version: 3,
            model_json: br#"{"label":"m"}"#.to_vec(),
            shards: 4,
            micro_batch: 64,
            ekf_fallback_json: Some(br#"{"capacity_ah":3.0}"#.to_vec()),
            telemetry: TelemetryStats {
                accepted: 10,
                duplicate_timestamp: 1,
                rejected_non_finite: 2,
                rejected_time_reversed: 3,
                unknown_cell: 4,
            },
            cells: vec![
                CellPersist {
                    id: 9,
                    capacity_ah: 3.0,
                    time_s: 120.0,
                    voltage_v: 3.6,
                    current_a: 1.5,
                    temperature_c: 26.0,
                    reports: 12,
                    net_time_s: 120.0,
                    net_soc: 0.81,
                    coulomb_soc: 0.79,
                    coulomb_bias_a: 0.0,
                    ekf: Some(EkfState {
                        x: [0.8, 0.01],
                        p: [[0.05, 0.0], [0.0, 1e-4]],
                        q: [1e-9, 1e-6],
                        r: 1e-4,
                    }),
                },
                CellPersist {
                    id: 10,
                    capacity_ah: 2.5,
                    time_s: 0.0,
                    voltage_v: 0.0,
                    current_a: 0.0,
                    temperature_c: 0.0,
                    reports: 0,
                    net_time_s: f64::NEG_INFINITY,
                    net_soc: 0.0,
                    coulomb_soc: 1.0,
                    coulomb_bias_a: 0.05,
                    ekf: Some(EkfState {
                        x: [1.0, 0.0],
                        p: [[0.05, 0.0], [0.0, 1e-4]],
                        q: [1e-9, 1e-6],
                        r: 1e-4,
                    }),
                },
            ],
            extensions: vec![("adapt".into(), vec![1, 2, 3])],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        assert_eq!(decode_snapshot(&bytes), Some(data));
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let bytes = encode_snapshot(&sample());
        let clean = decode_snapshot(&bytes).unwrap();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x04;
            if let Some(decoded) = decode_snapshot(&flipped) {
                // A flip inside the magic or CRC that still validates must
                // decode to the identical payload (impossible for CRC-32
                // over a single flip, but the assertion is the contract).
                assert_eq!(decoded, clean, "flip at byte {byte}");
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert_eq!(decode_snapshot(&bytes[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn write_read_through_temp_rename() {
        let dir = std::env::temp_dir().join(format!("pinnsoc_snap_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(read_snapshot(&dir).ok(), Some(None), "missing dir is None");
        let data = sample();
        write_snapshot(&dir, &data, false).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(data.clone()));
        // A stale temp file (crash mid-snapshot) never shadows the live one.
        fs::write(dir.join(SNAPSHOT_TMP), b"partial garbage").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(data));
        fs::remove_dir_all(&dir).unwrap();
    }
}
