//! [`DurableFleet`]: a [`FleetEngine`] whose mutations flow through the
//! WAL, plus [`recover`] — snapshot + WAL-tail replay into a fresh engine
//! whose subsequent estimates are bit-identical to an uninterrupted one.
//!
//! ## Why replay is bit-identical
//!
//! - Cells shard by `id % shards`, and the snapshot stores cells in
//!   shard-major slot order, so import reproduces every `(shard, slot)`
//!   placement; registers replayed after the snapshot append in their
//!   original order.
//! - The WAL logs reports *as ingested*, before the accept/reject
//!   decision: absorb outcomes are deterministic functions of the report
//!   stream, so replay re-derives every rejection (and the telemetry
//!   books) exactly.
//! - Replay applies records only up to the last valid commit, and runs a
//!   processing pass at each one — integrator updates happen against the
//!   same per-cell report sequences, and network estimates are recomputed
//!   from the same latest-telemetry values under the same model weights.
//! - Everything past the last commit (a torn tick) is dropped, counted,
//!   and re-delivered by whoever resumes the feed — recovered state is
//!   always a tick boundary the uninterrupted engine also passed through.
//!
//! What is *not* persisted: registry version numbers (process-local, they
//! restart at 1 — [`RecoveryReport::snapshot_model_version`] reports the
//! old one), worker/thread configuration (a runtime choice, passed to
//! [`recover`]), and observability state.

use crate::obs::DurableObs;
use crate::snapshot::{read_snapshot, snapshot_path, write_snapshot, SnapshotData};
use crate::wal::{list_segments, read_wal_dir, OversizedRecord, WalOp, WalWriter};
use pinnsoc::SocModel;
use pinnsoc_battery::CellParams;
use pinnsoc_fleet::{CellConfig, CellId, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_obs::ObsHub;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Durability configuration for one fleet directory.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding `snapshot.bin` and the `wal-*.log` segments.
    pub dir: PathBuf,
    /// Segment rotation threshold, bytes.
    pub max_segment_bytes: u64,
    /// Automatic snapshot cadence in committed ticks (`0` disables the
    /// cadence; snapshots then happen only at creation, recovery, and
    /// explicit [`DurableFleet::snapshot_now`] calls).
    pub snapshot_every_ticks: u64,
    /// `fsync` WAL flushes and snapshot writes. Off (the default), state
    /// survives process crashes (the paper-reproduction threat model);
    /// on, it also survives power loss, at a per-tick latency cost.
    pub fsync: bool,
}

impl DurableConfig {
    /// Defaults: 8 MiB segments, a snapshot every 64 ticks, no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_segment_bytes: 8 << 20,
            snapshot_every_ticks: 64,
            fsync: false,
        }
    }
}

/// What [`recover`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Committed tick the snapshot captured.
    pub snapshot_tick: u64,
    /// Highest WAL sequence folded into the snapshot.
    pub snapshot_last_seq: u64,
    /// Cells in the snapshot.
    pub snapshot_cells: usize,
    /// Registry version at snapshot time (versions restart at 1 in the
    /// recovered engine — the counter is process-local).
    pub snapshot_model_version: u64,
    /// WAL records applied on top of the snapshot.
    pub records_replayed: u64,
    /// Commit records among them (= ticks re-processed).
    pub commits_replayed: u64,
    /// Valid records dropped because no commit followed them (the torn
    /// tick in flight when the process died).
    pub dropped_uncommitted_records: u64,
    /// Bytes refused by the corruption-tolerant reader (torn tail writes,
    /// flipped bits).
    pub truncated_tail_bytes: u64,
    /// Committed tick of the recovered engine.
    pub tick: u64,
    /// Named extension blobs carried by the snapshot (adaptation session
    /// state), for higher layers to restore from.
    pub extensions: Vec<(String, Vec<u8>)>,
}

impl RecoveryReport {
    /// Ticks the replayed WAL tail ran past the snapshot.
    pub fn snapshot_age_ticks(&self) -> u64 {
        self.tick - self.snapshot_tick
    }
}

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Justification for the `expect` on every fixed-width append: those ops
/// encode to under 64 bytes (see [`WalOp::payload_bytes`]), far below
/// [`crate::wal::MAX_RECORD_BYTES`] — only variable-width extension blobs
/// can be oversized, and [`DurableFleet::set_extension`] surfaces that.
const FIXED_WIDTH_OP: &str = "fixed-width WAL op is always under MAX_RECORD_BYTES";

/// A [`FleetEngine`] wrapped in crash safety: registrations, ingests, and
/// tick boundaries append to a buffered WAL flushed at each
/// [`DurableFleet::process_pending`], with periodic snapshots truncating
/// the log. The hot path pays one small in-memory append per mutation;
/// all file I/O happens at tick boundaries.
pub struct DurableFleet {
    engine: FleetEngine,
    wal: WalWriter,
    config: DurableConfig,
    /// Committed ticks since the log began (monotonic across restarts —
    /// unlike the engine's own per-process counters).
    tick: u64,
    ticks_since_snapshot: u64,
    /// Latest extension blobs, embedded into every subsequent snapshot.
    extensions: Vec<(String, Vec<u8>)>,
    /// Wall time of the boundary flush inside the latest
    /// [`Self::process_pending`] — the encode + checksum + write cost the
    /// group-commit design keeps out of the ingest/process hot path.
    last_flush_seconds: f64,
    obs: Option<DurableObs>,
}

impl std::fmt::Debug for DurableFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableFleet")
            .field("dir", &self.config.dir)
            .field("tick", &self.tick)
            .field("cells", &self.engine.len())
            .field("segment", &self.wal.segment())
            .finish_non_exhaustive()
    }
}

impl DurableFleet {
    /// Wraps `engine` with durability rooted at `config.dir`, which must
    /// not already contain fleet state (use [`recover`] for that). Writes
    /// the baseline snapshot immediately, so the directory is recoverable
    /// from the first moment on.
    pub fn create(engine: FleetEngine, config: DurableConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        if snapshot_path(&config.dir).exists() || !list_segments(&config.dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "durability directory already holds fleet state — use recover()",
            ));
        }
        let wal = WalWriter::create(&config.dir, 0, 1, config.max_segment_bytes, config.fsync)?;
        let mut fleet = Self {
            engine,
            wal,
            config,
            tick: 0,
            ticks_since_snapshot: 0,
            extensions: Vec::new(),
            last_flush_seconds: 0.0,
            obs: None,
        };
        fleet.snapshot_now()?;
        Ok(fleet)
    }

    /// Attaches `pinnsoc_durable_*` metrics to `hub`. Recording happens
    /// only at tick boundaries (flushes, snapshots, rotations) — the
    /// logged bytes and the engine's estimates are identical either way.
    pub fn attach_obs(&mut self, hub: &Arc<ObsHub>) {
        self.obs = Some(DurableObs::new(hub));
    }

    /// The wrapped engine, for estimates and fleet queries.
    pub fn engine(&self) -> &FleetEngine {
        &self.engine
    }

    /// Mutable engine access — for [`FleetEngine::attach_obs`], registry
    /// swaps, and prediction passes. State mutations made through this
    /// seam bypass the WAL and will not survive a crash; cell
    /// registration and telemetry must flow through [`Self::register`] /
    /// [`Self::ingest`].
    pub fn engine_mut(&mut self) -> &mut FleetEngine {
        &mut self.engine
    }

    /// The durability configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// Committed ticks since the log began (monotonic across restarts).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Bytes written to the live WAL segment so far (flushed appends only)
    /// — the size rotation decisions are made against.
    pub fn wal_segment_bytes(&self) -> u64 {
        self.wal.segment_bytes()
    }

    /// Wall time of the WAL flush inside the most recent
    /// [`Self::process_pending`]: the bulk encode + checksum + write done
    /// at the tick boundary. Ingest-time appends defer all of that work
    /// here, so `tick wall − flush wall` is the hot-path cost a latency
    /// budget should be measured against (`durable_baseline` does exactly
    /// that).
    pub fn last_flush_seconds(&self) -> f64 {
        self.last_flush_seconds
    }

    /// Registers a cell, logging it. Returns `false` (and logs nothing)
    /// for duplicate ids.
    pub fn register(&mut self, id: CellId, config: CellConfig) -> bool {
        let (initial_soc, capacity_ah) = (config.initial_soc, config.capacity_ah);
        let registered = self.engine.register(id, config);
        if registered {
            self.wal
                .append(WalOp::Register {
                    id,
                    initial_soc,
                    capacity_ah,
                })
                .expect(FIXED_WIDTH_OP);
        }
        registered
    }

    /// Deregisters a cell, logging it. Returns `false` (and logs nothing)
    /// for unknown ids.
    pub fn deregister(&mut self, id: CellId) -> bool {
        let removed = self.engine.deregister(id);
        if removed {
            self.wal
                .append(WalOp::Deregister { id })
                .expect(FIXED_WIDTH_OP);
        }
        removed
    }

    /// Queues one telemetry report, logging it. Every report is logged —
    /// even rejected ones — because replay re-derives the accept/reject
    /// decisions to keep the telemetry books bit-identical.
    pub fn ingest(&mut self, id: CellId, telemetry: Telemetry) -> bool {
        self.wal
            .append(WalOp::Report { id, telemetry })
            .expect(FIXED_WIDTH_OP);
        self.engine.ingest(id, telemetry)
    }

    /// One durable tick: processes queued telemetry, appends the commit
    /// record, flushes the WAL buffer to disk, and — on the configured
    /// cadence — snapshots and truncates the log.
    pub fn process_pending(&mut self) -> io::Result<(usize, usize)> {
        let totals = self.engine.process_pending();
        self.tick += 1;
        self.ticks_since_snapshot += 1;
        self.wal
            .append(WalOp::Commit { tick: self.tick })
            .expect(FIXED_WIDTH_OP);
        let flush_start = Instant::now();
        let flushed = self.wal.flush()?;
        self.last_flush_seconds = flush_start.elapsed().as_secs_f64();
        if let Some(obs) = self.obs.as_ref() {
            let registry = obs.hub.registry();
            registry.add(obs.records, flushed.records);
            registry.add(obs.bytes, flushed.bytes);
            registry.add(obs.commits, 1);
            registry.observe(obs.flush_seconds, self.last_flush_seconds);
            registry.set(obs.segment_bytes, self.wal.segment_bytes() as f64);
            registry.set(obs.tick, self.tick as f64);
        }
        if self.config.snapshot_every_ticks > 0
            && self.ticks_since_snapshot >= self.config.snapshot_every_ticks
        {
            self.snapshot_now()?;
        } else if self.wal.wants_rotation() {
            self.wal.rotate()?;
            if let Some(obs) = self.obs.as_ref() {
                obs.hub.registry().add(obs.rotations, 1);
            }
        }
        Ok(totals)
    }

    /// Flushes buffered WAL records to disk without a commit marker —
    /// they replay only if a later commit covers them. Useful before a
    /// planned pause mid-tick; [`Self::process_pending`] flushes
    /// automatically at every tick boundary.
    pub fn flush_wal(&mut self) -> io::Result<crate::wal::FlushStats> {
        self.wal.flush()
    }

    /// Stores (or replaces) a named extension blob — the persistence seam
    /// for state this crate doesn't know about (the adaptation session).
    /// The update is WAL-logged, so it becomes durable at the next commit
    /// (tick boundary) instead of waiting for the next snapshot; blobs
    /// also ride inside every subsequent snapshot and come back through
    /// [`RecoveryReport::extensions`].
    ///
    /// # Errors
    ///
    /// Returns [`OversizedRecord`] — leaving both the WAL and the current
    /// blob untouched — when the encoded record would exceed
    /// [`crate::wal::MAX_RECORD_BYTES`] (the one op a caller can make
    /// arbitrarily large). Callers with over-cap state must shard it
    /// across multiple named extensions.
    pub fn set_extension(&mut self, name: &str, blob: Vec<u8>) -> Result<(), OversizedRecord> {
        self.wal.append(WalOp::Extension {
            name: name.to_string(),
            blob: blob.clone(),
        })?;
        match self.extensions.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => *existing = blob,
            None => self.extensions.push((name.to_string(), blob)),
        }
        Ok(())
    }

    /// The current blob for `name`, if one was set or recovered.
    pub fn extension(&self, name: &str) -> Option<&[u8]> {
        self.extensions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, blob)| blob.as_slice())
    }

    /// Writes a snapshot of the current state and truncates the WAL to a
    /// fresh segment. Runs automatically on the configured tick cadence;
    /// call it explicitly after out-of-band mutations worth anchoring
    /// (e.g. a model hot-swap — snapshots are the only place model
    /// weights persist).
    pub fn snapshot_now(&mut self) -> io::Result<()> {
        let start = self.obs.as_ref().map(|_| Instant::now());
        // Anchor any records still in the buffer (registrations before the
        // first tick): they flush here and land inside the snapshot's
        // `last_seq` horizon.
        self.wal.flush()?;
        let registry = self.engine.registry();
        let model = registry.current();
        let model_json = serde_json::to_string(&*model)
            .map_err(|e| invalid_data(format!("model encode: {e}")))?
            .into_bytes();
        let ekf_fallback_json = match &self.engine.config().ekf_fallback {
            None => None,
            Some(params) => Some(
                serde_json::to_string(params)
                    .map_err(|e| invalid_data(format!("EKF params encode: {e}")))?
                    .into_bytes(),
            ),
        };
        let data = SnapshotData {
            last_seq: self.wal.last_seq(),
            tick: self.tick,
            model_version: registry.version(),
            model_json,
            shards: self.engine.config().shards,
            micro_batch: self.engine.config().micro_batch,
            ekf_fallback_json,
            telemetry: self.engine.telemetry_stats(),
            cells: self.engine.export_cells(),
            extensions: self.extensions.clone(),
        };
        write_snapshot(&self.config.dir, &data, self.config.fsync)?;
        // Everything up to `last_seq` is now in the snapshot: rotate to a
        // fresh segment and drop the covered ones.
        self.wal.rotate()?;
        self.wal.delete_segments_below(self.wal.segment())?;
        self.ticks_since_snapshot = 0;
        if let (Some(obs), Some(start)) = (self.obs.as_ref(), start) {
            let registry = obs.hub.registry();
            registry.add(obs.snapshots, 1);
            registry.observe(obs.snapshot_seconds, start.elapsed().as_secs_f64());
            registry.set(obs.segment_bytes, self.wal.segment_bytes() as f64);
        }
        Ok(())
    }
}

/// Rebuilds a [`DurableFleet`] from `config.dir`: reads the snapshot,
/// replays the WAL tail up to its last valid commit, then re-anchors the
/// directory (fresh snapshot of the recovered state, old segments
/// dropped) so a crash loop never replays stale sequence numbers.
///
/// `workers` configures the rebuilt engine's worker threads (a runtime
/// choice, deliberately not persisted — estimates are bit-identical for
/// any value, per the fleet contract).
///
/// # Errors
///
/// Besides I/O failures: a missing or corrupt snapshot (`InvalidData`) —
/// there is no model to serve without one. WAL corruption is never an
/// error; the log is truncated at the first bad record by construction.
pub fn recover(
    config: DurableConfig,
    workers: usize,
) -> io::Result<(DurableFleet, RecoveryReport)> {
    let snapshot = read_snapshot(&config.dir)?
        .ok_or_else(|| invalid_data("no usable snapshot in durability directory"))?;
    let model: SocModel = serde_json::from_str(
        std::str::from_utf8(&snapshot.model_json)
            .map_err(|e| invalid_data(format!("snapshot model decode: {e}")))?,
    )
    .map_err(|e| invalid_data(format!("snapshot model decode: {e}")))?;
    let ekf_fallback: Option<CellParams> = match &snapshot.ekf_fallback_json {
        None => None,
        Some(json) => Some(
            serde_json::from_str(
                std::str::from_utf8(json)
                    .map_err(|e| invalid_data(format!("snapshot EKF params decode: {e}")))?,
            )
            .map_err(|e| invalid_data(format!("snapshot EKF params decode: {e}")))?,
        ),
    };
    let mut engine = FleetEngine::new(
        model,
        FleetConfig {
            shards: snapshot.shards,
            micro_batch: snapshot.micro_batch,
            workers,
            ekf_fallback,
            ..FleetConfig::default()
        },
    );
    engine.import_cells(&snapshot.cells);
    engine.restore_telemetry_stats(snapshot.telemetry);

    let scan = read_wal_dir(&config.dir)?;
    // Replay stops at the last valid commit: records after it belong to a
    // tick that never completed.
    let last_commit = scan
        .records
        .iter()
        .rposition(|r| r.seq > snapshot.last_seq && matches!(r.op, WalOp::Commit { .. }));
    let mut report = RecoveryReport {
        snapshot_tick: snapshot.tick,
        snapshot_last_seq: snapshot.last_seq,
        snapshot_cells: snapshot.cells.len(),
        snapshot_model_version: snapshot.model_version,
        records_replayed: 0,
        commits_replayed: 0,
        dropped_uncommitted_records: 0,
        truncated_tail_bytes: scan.truncated_bytes,
        tick: snapshot.tick,
        extensions: Vec::new(),
    };
    let mut extensions = snapshot.extensions;
    let mut applied_seq = snapshot.last_seq;
    let replay_end = last_commit.map_or(0, |i| i + 1);
    for record in &scan.records[..replay_end] {
        // Skip snapshot-covered records and duplicated frames (a record
        // retried across a torn flush appears twice with one seq).
        if record.seq <= applied_seq {
            continue;
        }
        applied_seq = record.seq;
        report.records_replayed += 1;
        match &record.op {
            WalOp::Register {
                id,
                initial_soc,
                capacity_ah,
            } => {
                engine.register(
                    *id,
                    CellConfig {
                        initial_soc: *initial_soc,
                        capacity_ah: *capacity_ah,
                    },
                );
            }
            WalOp::Deregister { id } => {
                engine.deregister(*id);
            }
            WalOp::Report { id, telemetry } => {
                engine.ingest(*id, *telemetry);
            }
            WalOp::Commit { tick } => {
                engine.process_pending();
                report.commits_replayed += 1;
                report.tick = *tick;
            }
            WalOp::Extension { name, blob } => {
                // Same last-write-wins semantics as `set_extension`;
                // commit-bounded like every other replayed mutation.
                match extensions.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => existing.clone_from(blob),
                    None => extensions.push((name.clone(), blob.clone())),
                }
            }
        }
    }
    report.extensions = extensions.clone();
    report.dropped_uncommitted_records = scan.records[replay_end..]
        .iter()
        .filter(|r| r.seq > applied_seq)
        .count() as u64;

    // Re-anchor: continue segment numbering past anything on disk, write a
    // fresh snapshot of the recovered state, and drop the old segments —
    // replayed-and-dropped sequence numbers must never be reused against
    // surviving files.
    let next_segment = scan.max_segment.map_or(0, |s| s + 1);
    let wal = WalWriter::create(
        &config.dir,
        next_segment,
        applied_seq + 1,
        config.max_segment_bytes,
        config.fsync,
    )?;
    let mut fleet = DurableFleet {
        engine,
        wal,
        config,
        tick: report.tick,
        ticks_since_snapshot: 0,
        extensions,
        last_flush_seconds: 0.0,
        obs: None,
    };
    fleet.snapshot_now()?;
    Ok((fleet, report))
}
