//! pinnsoc-durable: crash-safe fleet state.
//!
//! A checksummed, length-prefixed write-ahead log of absorbed telemetry
//! plus periodic binary snapshots of the full [`pinnsoc_fleet`] cell
//! store, with [`recover`] replaying snapshot + WAL tail into a fresh
//! engine whose subsequent estimates are **bit-identical** to an
//! uninterrupted one.
//!
//! Design rules:
//!
//! - **Reader corruption-tolerant by construction.** Every WAL record
//!   carries its own CRC-32 behind a length prefix; the reader truncates
//!   at the first bad record (torn writes look like truncation), and the
//!   snapshot is one CRC-protected blob written via temp-file + rename.
//!   No input — truncated, bit-flipped, adversarial — makes the readers
//!   panic or yield a corrupt record.
//! - **Writer off the tick hot path.** Appends buffer in memory; file
//!   I/O happens once per tick at [`DurableFleet::process_pending`], with
//!   rotation and snapshot-triggered truncation folded into the same
//!   boundary.
//! - **The record cap holds on both sides.** [`MAX_RECORD_BYTES`] is
//!   enforced by the reader (a corrupt length prefix cannot trigger a
//!   huge allocation) *and* by [`WalWriter::append`], which rejects an
//!   oversized record with [`wal::OversizedRecord`] before framing it —
//!   a record the writer framed but the reader refused would read as
//!   corruption at recovery and silently truncate every committed record
//!   behind it. Only variable-width extension blobs
//!   ([`DurableFleet::set_extension`]) can hit the cap; the fixed-width
//!   ops are all under 64 bytes.
//! - **Recovery is a tick boundary.** Replay applies records only up to
//!   the last valid commit, so recovered state is a state the
//!   uninterrupted engine also passed through — the basis of the
//!   bit-identity contract (details on [`fleet`'s module docs](fleet)).
//!
//! ```no_run
//! use pinnsoc_durable::{recover, DurableConfig, DurableFleet};
//! # fn engine() -> pinnsoc_fleet::FleetEngine { unimplemented!() }
//! let mut fleet = DurableFleet::create(engine(), DurableConfig::new("/var/lib/fleet"))?;
//! fleet.register(7, pinnsoc_fleet::CellConfig::default());
//! fleet.process_pending()?; // tick boundary: commit + flush
//! drop(fleet); // ...process dies...
//! let (fleet, report) = recover(DurableConfig::new("/var/lib/fleet"), 0)?;
//! assert_eq!(report.tick, 1);
//! # std::io::Result::Ok(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
pub mod crc;
mod obs;
pub mod snapshot;
pub mod wal;

pub mod fleet;

pub use crc::crc32;
pub use fleet::{recover, DurableConfig, DurableFleet, RecoveryReport};
pub use obs::record_recovery;
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, snapshot_path, write_snapshot, SnapshotData,
    SNAPSHOT_FILE, SNAPSHOT_MAGIC,
};
pub use wal::{
    encode_record, read_segment, read_wal_dir, FlushStats, OversizedRecord, SegmentRead, WalOp,
    WalRecord, WalScan, WalWriter, MAX_RECORD_BYTES, WAL_MAGIC,
};
