//! The write-ahead log: checksummed, length-prefixed records in rotating
//! segment files.
//!
//! ## On-disk format
//!
//! Each segment file `wal-<n>.log` starts with the 8-byte magic
//! `PSOCWAL1`, followed by records:
//!
//! ```text
//! [len: u32][crc: u32][payload: len bytes]
//! payload = [op: u8][seq: u64][body…]
//! ```
//!
//! `crc` is the CRC-32 of the payload. `seq` is a monotonic record counter
//! spanning segments and restarts. The reader is corruption-tolerant by
//! construction: a record whose length overruns the file, whose CRC
//! mismatches, whose op byte is unknown, or whose body is the wrong width
//! ends the log right there — **truncate at first bad record** — and the
//! valid prefix before it is returned untouched. A torn tail write (the
//! only corruption a crash can produce under buffered appends) therefore
//! costs exactly the uncommitted tail.
//!
//! Replay semantics live one level up (see [`crate::recover`]): only
//! records up to the last valid [`WalOp::Commit`] are applied, so a tick's
//! partially-flushed ingests never pollute recovered state.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use pinnsoc_fleet::{CellId, Telemetry};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment (format version in the suffix).
pub const WAL_MAGIC: &[u8; 8] = b"PSOCWAL1";

/// Upper bound on a record payload, enforced on **both** sides of the log.
/// The reader refuses a larger length prefix so corruption cannot trigger
/// a gigabyte allocation; [`WalWriter::append`] rejects a larger payload
/// with [`OversizedRecord`] *before* it is framed, because a record the
/// writer frames but the reader refuses would read as corruption at
/// recovery and silently truncate every committed record behind it.
/// Fixed-width ops are under 64 bytes; only [`WalOp::Extension`] blobs can
/// approach the cap.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

const OP_REGISTER: u8 = 1;
const OP_DEREGISTER: u8 = 2;
const OP_REPORT: u8 = 3;
const OP_COMMIT: u8 = 4;
const OP_EXTENSION: u8 = 5;

/// One logged fleet mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A cell registered with its initial integrator seed.
    Register {
        /// The cell's fleet-unique id.
        id: CellId,
        /// Assumed SoC at registration.
        initial_soc: f64,
        /// Rated capacity, amp-hours.
        capacity_ah: f64,
    },
    /// A cell deregistered.
    Deregister {
        /// The cell's fleet-unique id.
        id: CellId,
    },
    /// One telemetry report as ingested (logged before the accept/reject
    /// decision — absorb outcomes are deterministic, so replay re-derives
    /// them and the telemetry books stay bit-identical).
    Report {
        /// The addressed cell id (possibly unregistered — replay re-counts
        /// the unknown-cell rejection exactly as the original ingest did).
        id: CellId,
        /// The report.
        telemetry: Telemetry,
    },
    /// A tick boundary: every record before this one was folded into the
    /// engine by `process_pending` tick `tick`. Replay applies records only
    /// up to the last valid commit.
    Commit {
        /// Monotonic committed-tick counter (survives restarts).
        tick: u64,
    },
    /// An opaque subsystem blob updated (e.g. an adaptation session), so
    /// extensions set between snapshots survive a crash instead of only
    /// persisting at the next snapshot. The one variable-length op — the
    /// reason [`WalWriter::append`] must enforce [`MAX_RECORD_BYTES`].
    Extension {
        /// Namespaced extension key (e.g. `"adapt/session"`).
        name: String,
        /// The opaque payload; replaces any prior blob under `name`.
        blob: Vec<u8>,
    },
}

impl WalOp {
    /// Encoded payload width (`op` byte + `seq` + body) — what the frame's
    /// `len` field will hold, computed without encoding so the append-time
    /// cap check costs no allocation.
    pub fn payload_bytes(&self) -> u64 {
        let body = match self {
            WalOp::Register { .. } => 8 + 8 + 8,
            WalOp::Deregister { .. } => 8,
            WalOp::Report { .. } => 8 + 4 * 8,
            WalOp::Commit { .. } => 8,
            WalOp::Extension { name, blob } => 4 + name.len() as u64 + 4 + blob.len() as u64,
        };
        1 + 8 + body
    }
}

/// Rejection returned by [`WalWriter::append`] for a record whose encoded
/// payload would exceed [`MAX_RECORD_BYTES`]. The record is **not**
/// buffered: framing it anyway would poison the log — the reader treats an
/// over-cap length prefix as corruption and truncates everything after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedRecord {
    /// Encoded payload width of the rejected record.
    pub payload_bytes: u64,
}

impl std::fmt::Display for OversizedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WAL record payload of {} bytes exceeds MAX_RECORD_BYTES ({})",
            self.payload_bytes, MAX_RECORD_BYTES
        )
    }
}

impl std::error::Error for OversizedRecord {}

/// A decoded WAL record: a monotonic sequence number and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic record counter spanning segments and restarts.
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Appends one encoded record (`len`/`crc` framing included) to `out`.
/// Encodes in place — payload first, frame backfilled — so bulk flushes
/// allocate nothing per record.
pub fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let frame_at = out.len();
    out.extend_from_slice(&[0u8; 8]); // len + crc, backfilled below
    let payload_at = out.len();
    let mut enc = Enc(out);
    match &record.op {
        WalOp::Register {
            id,
            initial_soc,
            capacity_ah,
        } => {
            enc.u8(OP_REGISTER);
            enc.u64(record.seq);
            enc.u64(*id);
            enc.f64(*initial_soc);
            enc.f64(*capacity_ah);
        }
        WalOp::Deregister { id } => {
            enc.u8(OP_DEREGISTER);
            enc.u64(record.seq);
            enc.u64(*id);
        }
        WalOp::Report { id, telemetry } => {
            enc.u8(OP_REPORT);
            enc.u64(record.seq);
            enc.u64(*id);
            enc.f64(telemetry.time_s);
            enc.f64(telemetry.voltage_v);
            enc.f64(telemetry.current_a);
            enc.f64(telemetry.temperature_c);
        }
        WalOp::Commit { tick } => {
            enc.u8(OP_COMMIT);
            enc.u64(record.seq);
            enc.u64(*tick);
        }
        WalOp::Extension { name, blob } => {
            enc.u8(OP_EXTENSION);
            enc.u64(record.seq);
            enc.bytes(name.as_bytes());
            enc.bytes(blob);
        }
    }
    let len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[frame_at..frame_at + 4].copy_from_slice(&len.to_le_bytes());
    out[frame_at + 4..frame_at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes one record payload (everything after the `len`/`crc` frame).
/// `None` on an unknown op byte, a short body, or trailing bytes — strict
/// by design, so a CRC collision on garbage still cannot yield a record.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut dec = Dec::new(payload);
    let op = dec.u8()?;
    let seq = dec.u64()?;
    let op = match op {
        OP_REGISTER => WalOp::Register {
            id: dec.u64()?,
            initial_soc: dec.f64()?,
            capacity_ah: dec.f64()?,
        },
        OP_DEREGISTER => WalOp::Deregister { id: dec.u64()? },
        OP_REPORT => WalOp::Report {
            id: dec.u64()?,
            telemetry: Telemetry {
                time_s: dec.f64()?,
                voltage_v: dec.f64()?,
                current_a: dec.f64()?,
                temperature_c: dec.f64()?,
            },
        },
        OP_COMMIT => WalOp::Commit { tick: dec.u64()? },
        OP_EXTENSION => {
            let name = String::from_utf8(dec.bytes()?.to_vec()).ok()?;
            let blob = dec.bytes()?.to_vec();
            WalOp::Extension { name, blob }
        }
        _ => return None,
    };
    (dec.remaining() == 0).then_some(WalRecord { seq, op })
}

/// What [`read_segment`] recovered from one segment's bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRead {
    /// The valid record prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes after the last valid record (torn tail, flipped bits, or a
    /// missing/corrupt header — in which case it is the whole file).
    pub truncated_bytes: u64,
}

/// Parses one segment's bytes — pure, total, and panic-free: any input
/// yields the longest valid record prefix plus a count of the bytes it
/// refused.
pub fn read_segment(bytes: &[u8]) -> SegmentRead {
    let mut records = Vec::new();
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return SegmentRead {
            records,
            truncated_bytes: bytes.len() as u64,
        };
    }
    let mut dec = Dec::new(&bytes[WAL_MAGIC.len()..]);
    while dec.remaining() > 0 {
        // Parse on a cursor copy: a failed record must not consume bytes,
        // so the truncation count covers the whole refused tail.
        let parsed = (|| {
            let mut cursor = dec;
            let len = cursor.u32()?;
            if len > MAX_RECORD_BYTES {
                return None;
            }
            let crc = cursor.u32()?;
            let payload = cursor.raw(len as usize)?;
            if crc32(payload) != crc {
                return None;
            }
            decode_payload(payload).map(|record| (record, cursor))
        })();
        match parsed {
            Some((record, cursor)) => {
                records.push(record);
                dec = cursor;
            }
            None => {
                return SegmentRead {
                    truncated_bytes: dec.remaining() as u64,
                    records,
                };
            }
        }
    }
    SegmentRead {
        records,
        truncated_bytes: 0,
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:010}.log"))
}

/// Segment indices present in `dir`, ascending.
pub(crate) fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push(index);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Everything [`read_wal_dir`] recovered from a log directory.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Valid records across all segments, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes refused at and after the first bad record (later segments
    /// included: a mid-log corruption invalidates everything behind it,
    /// because record order is the replay contract).
    pub truncated_bytes: u64,
    /// Highest segment index present (even if corrupt), for the writer to
    /// continue numbering past.
    pub max_segment: Option<u64>,
}

/// Reads every segment in `dir` in index order, stopping at the first bad
/// record anywhere in the log.
pub fn read_wal_dir(dir: &Path) -> std::io::Result<WalScan> {
    let segments = list_segments(dir)?;
    let mut scan = WalScan {
        records: Vec::new(),
        truncated_bytes: 0,
        max_segment: segments.last().copied(),
    };
    let mut poisoned = false;
    for &index in &segments {
        let path = segment_path(dir, index);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if poisoned {
            scan.truncated_bytes += bytes.len() as u64;
            continue;
        }
        let read = read_segment(&bytes);
        scan.records.extend(read.records);
        if read.truncated_bytes > 0 {
            scan.truncated_bytes += read.truncated_bytes;
            poisoned = true;
        }
    }
    Ok(scan)
}

/// Accounting for one [`WalWriter::flush`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Records written by this flush.
    pub records: u64,
    /// Framed bytes written by this flush.
    pub bytes: u64,
}

/// Buffered, rotating WAL writer.
///
/// Appends only push the raw record into an in-memory pending list — no
/// encoding, no checksumming — so the per-ingest hot-path cost is one
/// `Vec` push. [`WalWriter::flush`] does all the work in bulk at tick
/// boundaries: encode + CRC into a reused scratch buffer, one `write` to
/// the operating system, optionally `fsync`ing when configured for
/// power-loss durability rather than crash durability. Both buffers keep
/// their capacity across flushes, so a steady-state tick allocates
/// nothing on the logging path.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: BufWriter<File>,
    segment: u64,
    segment_bytes: u64,
    next_seq: u64,
    pending: Vec<WalRecord>,
    scratch: Vec<u8>,
    max_segment_bytes: u64,
    fsync: bool,
}

impl WalWriter {
    /// Opens a fresh segment `first_segment` in `dir` (created if missing),
    /// continuing the sequence counter at `next_seq`.
    pub fn create(
        dir: &Path,
        first_segment: u64,
        next_seq: u64,
        max_segment_bytes: u64,
        fsync: bool,
    ) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let file = Self::open_segment(dir, first_segment)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            segment: first_segment,
            segment_bytes: WAL_MAGIC.len() as u64,
            next_seq,
            pending: Vec::new(),
            scratch: Vec::new(),
            max_segment_bytes: max_segment_bytes.max(1),
            fsync,
        })
    }

    fn open_segment(dir: &Path, index: u64) -> std::io::Result<BufWriter<File>> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(dir, index))?;
        let mut file = BufWriter::new(file);
        file.write_all(WAL_MAGIC)?;
        Ok(file)
    }

    /// Appends one operation to the in-memory pending list and returns its
    /// sequence number. Nothing is encoded or reaches the file until
    /// [`Self::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`OversizedRecord`] — without buffering anything or
    /// consuming a sequence number — when the encoded payload would exceed
    /// [`MAX_RECORD_BYTES`]. The cap must hold at append time: the reader
    /// enforces it too, so a framed over-cap record would read as
    /// corruption at recovery and silently truncate every committed record
    /// behind it. Every fixed-width op is far under the cap by
    /// construction; only [`WalOp::Extension`] can hit it.
    #[inline]
    pub fn append(&mut self, op: WalOp) -> Result<u64, OversizedRecord> {
        let payload_bytes = op.payload_bytes();
        if payload_bytes > MAX_RECORD_BYTES as u64 {
            return Err(OversizedRecord { payload_bytes });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(WalRecord { seq, op });
        Ok(seq)
    }

    /// Sequence number of the most recently appended record (0 when none
    /// ever was).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records appended but not yet flushed.
    pub fn buffered_records(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Current segment index.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Bytes written to the current segment (flushed, header included).
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Encodes and checksums every pending record in bulk, writes them to
    /// the current segment, and flushes to the operating system (plus
    /// `fsync` when configured).
    pub fn flush(&mut self) -> std::io::Result<FlushStats> {
        self.scratch.clear();
        for record in &self.pending {
            encode_record(&mut self.scratch, record);
        }
        let stats = FlushStats {
            records: self.pending.len() as u64,
            bytes: self.scratch.len() as u64,
        };
        self.pending.clear();
        if !self.scratch.is_empty() {
            self.file.write_all(&self.scratch)?;
            self.segment_bytes += self.scratch.len() as u64;
        }
        self.file.flush()?;
        if self.fsync {
            self.file.get_ref().sync_data()?;
        }
        Ok(stats)
    }

    /// Whether the current segment has grown past the rotation threshold.
    pub fn wants_rotation(&self) -> bool {
        self.segment_bytes >= self.max_segment_bytes
    }

    /// Closes the current segment and opens the next. Call only with an
    /// empty buffer (i.e. after [`Self::flush`]).
    pub fn rotate(&mut self) -> std::io::Result<()> {
        debug_assert!(self.pending.is_empty(), "rotate mid-buffer loses records");
        self.file.flush()?;
        let next = self.segment + 1;
        self.file = Self::open_segment(&self.dir, next)?;
        self.segment = next;
        self.segment_bytes = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Deletes every segment with an index below `keep_from` — the
    /// snapshot-triggered truncation (everything below is covered by the
    /// snapshot's `last_seq`).
    pub fn delete_segments_below(&self, keep_from: u64) -> std::io::Result<u64> {
        let mut deleted = 0;
        for index in list_segments(&self.dir)? {
            if index < keep_from {
                fs::remove_file(segment_path(&self.dir, index))?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u64, id: CellId, time_s: f64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Report {
                id,
                telemetry: Telemetry {
                    time_s,
                    voltage_v: 3.7,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            },
        }
    }

    fn sample_segment() -> (Vec<u8>, Vec<WalRecord>) {
        let records = vec![
            WalRecord {
                seq: 1,
                op: WalOp::Register {
                    id: 7,
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            },
            report(2, 7, 1.0),
            WalRecord {
                seq: 3,
                op: WalOp::Commit { tick: 1 },
            },
            WalRecord {
                seq: 4,
                op: WalOp::Deregister { id: 7 },
            },
        ];
        let mut bytes = WAL_MAGIC.to_vec();
        for record in &records {
            encode_record(&mut bytes, record);
        }
        (bytes, records)
    }

    #[test]
    fn roundtrip_clean_segment() {
        let (bytes, records) = sample_segment();
        let read = read_segment(&bytes);
        assert_eq!(read.records, records);
        assert_eq!(read.truncated_bytes, 0);
    }

    #[test]
    fn truncation_drops_only_the_tail() {
        let (bytes, records) = sample_segment();
        for cut in 0..bytes.len() {
            let read = read_segment(&bytes[..cut]);
            assert!(read.records.len() <= records.len());
            assert_eq!(
                read.records,
                records[..read.records.len()],
                "cut at {cut}: prefix mismatch"
            );
        }
    }

    #[test]
    fn bit_flip_never_yields_a_corrupt_record() {
        let (bytes, records) = sample_segment();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            let read = read_segment(&flipped);
            // Every surviving record must be one of the originals, in
            // order: the flip can only shorten the log, never corrupt it.
            for (got, want) in read.records.iter().zip(&records) {
                assert_eq!(got, want, "flip at byte {byte}");
            }
        }
    }

    #[test]
    fn bad_magic_refuses_whole_file() {
        let (mut bytes, _) = sample_segment();
        bytes[0] ^= 0xFF;
        let read = read_segment(&bytes);
        assert!(read.records.is_empty());
        assert_eq!(read.truncated_bytes, bytes.len() as u64);
    }

    #[test]
    fn writer_flush_rotate_and_truncate() {
        let dir = std::env::temp_dir().join(format!("pinnsoc_wal_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut wal = WalWriter::create(&dir, 0, 1, 256, false).unwrap();
        for k in 0..20u64 {
            wal.append(WalOp::Report {
                id: k,
                telemetry: Telemetry {
                    time_s: k as f64,
                    voltage_v: 3.7,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            })
            .unwrap();
        }
        wal.append(WalOp::Commit { tick: 1 }).unwrap();
        let stats = wal.flush().unwrap();
        assert_eq!(stats.records, 21);
        assert!(wal.wants_rotation(), "256-byte threshold long passed");
        wal.rotate().unwrap();
        assert_eq!(wal.segment(), 1);
        wal.append(WalOp::Commit { tick: 2 }).unwrap();
        wal.flush().unwrap();

        let scan = read_wal_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 22);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.max_segment, Some(1));
        assert_eq!(scan.records.last().unwrap().seq, 22);

        assert_eq!(wal.delete_segments_below(1).unwrap(), 1);
        let scan = read_wal_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 1, "only segment 1 remains");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Blob length that makes an `Extension` payload exactly `target`
    /// bytes wide for the given name.
    fn blob_len_for_payload(name: &str, target: u64) -> usize {
        (target
            - WalOp::Extension {
                name: name.into(),
                blob: Vec::new(),
            }
            .payload_bytes()) as usize
    }

    #[test]
    fn payload_bytes_matches_encoded_width() {
        let ops = [
            WalOp::Register {
                id: 7,
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
            WalOp::Deregister { id: 7 },
            report(0, 7, 1.0).op,
            WalOp::Commit { tick: 3 },
            WalOp::Extension {
                name: "adapt/session".into(),
                blob: vec![0xAB; 137],
            },
        ];
        for op in ops {
            let mut bytes = Vec::new();
            encode_record(
                &mut bytes,
                &WalRecord {
                    seq: 9,
                    op: op.clone(),
                },
            );
            // Frame is 8 bytes (len + crc); the rest is the payload.
            assert_eq!(
                op.payload_bytes(),
                (bytes.len() - 8) as u64,
                "payload_bytes out of sync with encode_record for {op:?}"
            );
        }
    }

    #[test]
    fn extension_record_roundtrips_bit_exact() {
        let record = WalRecord {
            seq: 11,
            op: WalOp::Extension {
                name: "adapt/session".into(),
                blob: (0..=255u8).cycle().take(1000).collect(),
            },
        };
        let mut bytes = WAL_MAGIC.to_vec();
        encode_record(&mut bytes, &record);
        let read = read_segment(&bytes);
        assert_eq!(read.records, vec![record]);
        assert_eq!(read.truncated_bytes, 0);
    }

    /// The append-time cap, at the boundary: a record at exactly
    /// `MAX_RECORD_BYTES` is accepted and round-trips through the reader;
    /// one byte over is rejected *before* framing, so the log stays clean
    /// and every later committed record survives recovery.
    #[test]
    fn append_cap_boundary_roundtrip_and_rejection() {
        let dir = std::env::temp_dir().join(format!("pinnsoc_wal_cap_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut wal = WalWriter::create(&dir, 0, 1, u64::MAX, false).unwrap();

        // Exactly at the cap: accepted.
        let at_cap = WalOp::Extension {
            name: "cap".into(),
            blob: vec![0x5A; blob_len_for_payload("cap", MAX_RECORD_BYTES as u64)],
        };
        assert_eq!(at_cap.payload_bytes(), MAX_RECORD_BYTES as u64);
        assert_eq!(wal.append(at_cap.clone()), Ok(1));

        // One byte over: rejected, no sequence number consumed, nothing
        // buffered.
        let over_cap = WalOp::Extension {
            name: "cap".into(),
            blob: vec![0x5A; blob_len_for_payload("cap", MAX_RECORD_BYTES as u64 + 1)],
        };
        assert_eq!(
            wal.append(over_cap),
            Err(OversizedRecord {
                payload_bytes: MAX_RECORD_BYTES as u64 + 1
            })
        );
        assert_eq!(wal.buffered_records(), 1, "rejected record must not buffer");

        // A committed record *after* the rejection must survive recovery —
        // the exact failure mode the write-side cap exists to prevent.
        assert_eq!(wal.append(WalOp::Commit { tick: 1 }), Ok(2));
        wal.flush().unwrap();

        let scan = read_wal_dir(&dir).unwrap();
        assert_eq!(scan.truncated_bytes, 0, "log must parse clean");
        assert_eq!(
            scan.records,
            vec![
                WalRecord { seq: 1, op: at_cap },
                WalRecord {
                    seq: 2,
                    op: WalOp::Commit { tick: 1 }
                },
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
