//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the per-record
//! and per-snapshot checksum. Implemented in-crate over const-built tables
//! so the durability layer stays dependency-free, like everything else in
//! the workspace. Uses slicing-by-8 (eight derived tables, one 8-byte
//! chunk per step) because the WAL checksums every flushed byte: at
//! 100k-cell fleets that is megabytes per second, and the classic bytewise
//! loop would dominate the flush.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes: lets one step
    // fold 8 input bytes via 8 independent lookups.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the zlib/PNG convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_path_matches_bytewise_reference_at_every_length() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..64u32)
            .map(|k| (k.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"pinnsoc durable wal record".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
