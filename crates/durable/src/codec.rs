//! Fixed-width little-endian binary encoding shared by the WAL and the
//! snapshot format.
//!
//! Floats are encoded through [`f64::to_bits`], so every value — including
//! the fleet's `-inf` "no network estimate yet" sentinel, negative zero,
//! and any NaN payload — round-trips bit-exactly. The decoder is
//! no-panic by construction: every read returns `Option`, and a corrupt or
//! truncated buffer yields `None` instead of an out-of-bounds slice.

/// Appends fixed-width primitives to a byte buffer.
#[derive(Debug)]
pub(crate) struct Enc<'a>(pub &'a mut Vec<u8>);

impl Enc<'_> {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed byte blob (`u32` length, then the bytes).
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
}

/// Cursor over a byte slice; every read is bounds-checked.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Length-prefixed byte blob. `None` when the prefix overruns the
    /// buffer — a huge corrupt length cannot trigger a huge allocation,
    /// because the slice is taken before anything is copied.
    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return None;
        }
        let v = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Some(v)
    }

    /// Exactly `n` raw bytes.
    pub(crate) fn raw(&mut self, n: usize) -> Option<&'a [u8]> {
        let v = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        let mut enc = Enc(&mut buf);
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX);
        enc.f64(f64::NEG_INFINITY);
        enc.f64(-0.0);
        enc.bytes(b"blob");
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.u8(), Some(7));
        assert_eq!(dec.u32(), Some(0xDEAD_BEEF));
        assert_eq!(dec.u64(), Some(u64::MAX));
        assert_eq!(
            dec.f64().map(f64::to_bits),
            Some(f64::NEG_INFINITY.to_bits())
        );
        assert_eq!(dec.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(dec.bytes(), Some(&b"blob"[..]));
        assert_eq!(dec.remaining(), 0);
        assert_eq!(dec.u8(), None, "reads past the end are None, not panics");
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        Enc(&mut buf).u32(u32::MAX); // absurd blob length, no payload
        assert_eq!(Dec::new(&buf).bytes(), None);
    }
}
