//! Adversarial property tests for the WAL reader: against arbitrary
//! truncation, bit flips, duplicated frames, and raw garbage, the reader
//! never panics, never yields a record that was not written, and always
//! recovers the longest valid prefix the damage allows.
//!
//! Records are compared by their encoded frames, not `PartialEq` — the
//! strategies generate telemetry from raw bit patterns (NaNs included),
//! and the contract is bit-exactness.

use pinnsoc_durable::{encode_record, read_segment, WalOp, WalRecord, WAL_MAGIC};
use pinnsoc_fleet::Telemetry;
use proptest::prelude::*;

fn any_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (0u64..=u64::MAX, 0.0f64..=1.0, 0.1f64..100.0).prop_map(
            |(id, initial_soc, capacity_ah)| WalOp::Register {
                id,
                initial_soc,
                capacity_ah,
            }
        ),
        (0u64..=u64::MAX).prop_map(|id| WalOp::Deregister { id }),
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
        )
            .prop_map(|(id, t, v, c, temp)| WalOp::Report {
                id,
                // From-bits floats: the codec must round-trip ANY payload,
                // including NaNs and infinities, bit-exactly.
                telemetry: Telemetry {
                    time_s: f64::from_bits(t),
                    voltage_v: f64::from_bits(v),
                    current_a: f64::from_bits(c),
                    temperature_c: f64::from_bits(temp),
                },
            }),
        (0u64..=u64::MAX).prop_map(|tick| WalOp::Commit { tick }),
        // Variable-width records: arbitrary binary blobs under arbitrary
        // (possibly empty, possibly non-ASCII) names.
        (
            collection::vec(0u8..=255, 0usize..12),
            collection::vec(0u8..=255, 0usize..96),
        )
            .prop_map(|(name, blob)| WalOp::Extension {
                name: String::from_utf8_lossy(&name).into_owned(),
                blob,
            }),
    ]
}

fn any_segment() -> impl Strategy<Value = (Vec<WalRecord>, Vec<u8>)> {
    collection::vec(any_op(), 0usize..24).prop_map(|ops| {
        let records: Vec<WalRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| WalRecord {
                seq: i as u64 + 1,
                op,
            })
            .collect();
        let mut bytes = WAL_MAGIC.to_vec();
        for record in &records {
            encode_record(&mut bytes, record);
        }
        (records, bytes)
    })
}

fn frame(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record(&mut out, record);
    out
}

/// Scales a sampled unit fraction onto `0..len` (`len > 0`).
fn index(frac: f64, len: usize) -> usize {
    ((frac * len as f64) as usize).min(len - 1)
}

/// Bit-exact prefix check: every yielded record re-encodes to the frame of
/// the original at the same position.
fn assert_is_prefix(read: &[WalRecord], written: &[WalRecord]) {
    assert!(read.len() <= written.len(), "reader invented records");
    for (i, (got, want)) in read.iter().zip(written).enumerate() {
        assert_eq!(frame(got), frame(want), "record {i} not bit-identical");
    }
}

proptest! {
    /// Truncation at an arbitrary offset: the reader yields a bit-exact
    /// record prefix and refuses exactly the bytes past it.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        (records, bytes) in any_segment(),
        frac in 0.0f64..1.0,
    ) {
        let cut = index(frac, bytes.len() + 1);
        let read = read_segment(&bytes[..cut]);
        assert_is_prefix(&read.records, &records);
        let consumed: usize =
            WAL_MAGIC.len() + read.records.iter().map(|r| frame(r).len()).sum::<usize>();
        if cut == bytes.len() {
            prop_assert_eq!(read.records.len(), records.len());
            prop_assert_eq!(read.truncated_bytes, 0);
        } else if cut < WAL_MAGIC.len() {
            prop_assert_eq!(read.records.len(), 0);
            prop_assert_eq!(read.truncated_bytes, cut as u64);
        } else {
            prop_assert_eq!(read.truncated_bytes, (cut - consumed) as u64);
        }
    }

    /// A single flipped bit anywhere in the file: never a panic, never a
    /// corrupt record — only a (possibly shorter) bit-exact prefix.
    #[test]
    fn single_bit_flip_never_yields_a_corrupt_record(
        (records, bytes) in any_segment(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut damaged = bytes.clone();
        let pos = index(frac, damaged.len());
        damaged[pos] ^= 1 << bit;
        let read = read_segment(&damaged);
        if pos < WAL_MAGIC.len() {
            prop_assert_eq!(read.records.len(), 0, "bad magic must refuse the whole file");
            prop_assert_eq!(read.truncated_bytes, damaged.len() as u64);
        } else {
            assert_is_prefix(&read.records, &records);
        }
    }

    /// Duplicated frames (a retried write) decode as duplicates — the
    /// reader is frame-faithful; replay's monotonic-seq filter upstream
    /// handles the rest.
    #[test]
    fn duplicated_frames_are_yielded_verbatim(
        (records, bytes) in any_segment(),
        frac in 0.0f64..1.0,
    ) {
        if !records.is_empty() {
            let dup = index(frac, records.len());
            let mut doubled = bytes.clone();
            encode_record(&mut doubled, &records[dup]);
            let read = read_segment(&doubled);
            prop_assert_eq!(read.records.len(), records.len() + 1);
            assert_is_prefix(&read.records[..records.len()], &records);
            prop_assert_eq!(
                frame(&read.records[records.len()]),
                frame(&records[dup]),
                "the duplicate decodes bit-identically"
            );
            prop_assert_eq!(read.truncated_bytes, 0);
        }
    }

    /// Raw garbage after the magic: no panic, and decode + truncation fully
    /// account for the input.
    #[test]
    fn arbitrary_garbage_never_panics(noise in collection::vec(0u8..=255, 0usize..512)) {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&noise);
        let read = read_segment(&bytes);
        let consumed: usize = read.records.iter().map(|r| frame(r).len()).sum();
        prop_assert_eq!(consumed + read.truncated_bytes as usize, noise.len());
    }
}
