//! End-to-end crash/recover integration: a [`DurableFleet`] killed
//! mid-tick (buffered records lost, torn tail on disk) recovers to the
//! last committed tick and — fed the remaining telemetry — lands on
//! estimates bit-identical to an uninterrupted control engine.

use pinnsoc_durable::{recover, DurableConfig, DurableFleet};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
use std::path::PathBuf;

const CELLS: u64 = 40;
const SHARDS: usize = 4;
const TICKS: u64 = 12;
const KILL_TICK: u64 = 7;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pinnsoc-durable-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(workers: usize) -> FleetEngine {
    FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: SHARDS,
            micro_batch: 8,
            workers,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    )
}

/// Deterministic per-(tick, cell) telemetry — the "feed" both the control
/// engine and the crash/recover run consume.
fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.5 + 0.01 * ((id % 7) as f64) + 0.001 * (tick as f64),
        current_a: 0.8 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn run_control(workers: usize) -> FleetEngine {
    let mut control = engine(workers);
    for id in 0..CELLS {
        control.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    for tick in 1..=TICKS {
        for id in 0..CELLS {
            control.ingest(id, feed(tick, id));
        }
        control.process_pending();
    }
    control
}

fn assert_bit_identical(control: &FleetEngine, recovered: &FleetEngine) {
    assert_eq!(control.ids(), recovered.ids());
    for id in control.ids() {
        let (lhs, lhs_src) = control.estimate(id).expect("control estimate");
        let (rhs, rhs_src) = recovered.estimate(id).expect("recovered estimate");
        assert_eq!(
            lhs.to_bits(),
            rhs.to_bits(),
            "cell {id}: control {lhs} vs recovered {rhs}"
        );
        assert_eq!(lhs_src, rhs_src, "cell {id} estimate source");
    }
}

/// The core contract, exercised at both worker counts: kill mid-tick
/// (half a tick's reports buffered but unflushed), recover, finish the
/// feed, and bit-match the uninterrupted control.
fn crash_recover_roundtrip(workers: usize, tag: &str) {
    let dir = tmpdir(tag);
    let mut durable = DurableFleet::create(
        engine(workers),
        DurableConfig {
            snapshot_every_ticks: 3,
            ..DurableConfig::new(&dir)
        },
    )
    .expect("create");
    for id in 0..CELLS {
        durable.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    for tick in 1..=KILL_TICK {
        for id in 0..CELLS {
            durable.ingest(id, feed(tick, id));
        }
        durable.process_pending().expect("tick");
    }
    // The torn tick: half the reports land in the buffer, then the
    // process "dies" — no flush, no commit.
    for id in 0..CELLS / 2 {
        durable.ingest(id, feed(KILL_TICK + 1, id));
    }
    drop(durable);

    let (mut recovered, report) = recover(DurableConfig::new(&dir), workers).expect("recover");
    assert_eq!(report.tick, KILL_TICK, "recovers to the last commit");
    assert_eq!(
        report.dropped_uncommitted_records, 0,
        "buffered-but-unflushed records never reached disk"
    );
    assert!(report.commits_replayed <= KILL_TICK);

    // Resume the feed from the recovered tick boundary.
    for tick in recovered.tick() + 1..=TICKS {
        for id in 0..CELLS {
            recovered.ingest(id, feed(tick, id));
        }
        recovered.process_pending().expect("resumed tick");
    }
    assert_eq!(recovered.tick(), TICKS);
    assert_bit_identical(&run_control(workers), recovered.engine());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn crash_recovery_is_bit_identical_inline() {
    crash_recover_roundtrip(0, "inline");
}

#[test]
fn crash_recovery_is_bit_identical_workers() {
    crash_recover_roundtrip(2, "workers");
}

/// A flushed-but-uncommitted tail (crash after flush, before the next
/// commit was flushed) is dropped and counted.
#[test]
fn flushed_uncommitted_tail_is_dropped() {
    let dir = tmpdir("uncommitted");
    let mut durable = DurableFleet::create(engine(0), DurableConfig::new(&dir)).expect("create");
    for id in 0..4 {
        durable.register(
            id,
            CellConfig {
                initial_soc: 0.5,
                capacity_ah: 3.0,
            },
        );
    }
    for id in 0..4 {
        durable.ingest(id, feed(1, id));
    }
    durable.process_pending().expect("tick 1");
    // Force tick-2 reports onto disk without their commit.
    for id in 0..4 {
        durable.ingest(id, feed(2, id));
    }
    durable.flush_wal().expect("flush without commit");
    drop(durable);

    let (recovered, report) = recover(DurableConfig::new(&dir), 0).expect("recover");
    assert_eq!(report.tick, 1);
    assert_eq!(report.dropped_uncommitted_records, 4);
    assert_eq!(recovered.tick(), 1);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A torn write (garbage appended to the live segment) is truncated away,
/// never an error.
#[test]
fn torn_tail_bytes_are_truncated() {
    let dir = tmpdir("torn");
    let mut durable = DurableFleet::create(engine(0), DurableConfig::new(&dir)).expect("create");
    durable.register(
        1,
        CellConfig {
            initial_soc: 0.7,
            capacity_ah: 2.0,
        },
    );
    durable.ingest(1, feed(1, 1));
    durable.process_pending().expect("tick");
    drop(durable);
    let segment = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with("wal-"))
                .unwrap_or(false)
        })
        .max()
        .expect("live segment");

    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(segment)
        .expect("open segment");
    file.write_all(&[0xAB; 37]).expect("torn bytes");
    drop(file);

    let (recovered, report) = recover(DurableConfig::new(&dir), 0).expect("recover");
    assert_eq!(report.truncated_tail_bytes, 37);
    assert_eq!(report.tick, 1);
    assert!(recovered.engine().contains(1));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Snapshot truncation keeps the directory bounded: after a snapshot,
/// only the fresh segment survives, and recovery needs no replay.
#[test]
fn snapshot_truncates_the_log() {
    let dir = tmpdir("truncate");
    let mut durable = DurableFleet::create(
        engine(0),
        DurableConfig {
            snapshot_every_ticks: 2,
            ..DurableConfig::new(&dir)
        },
    )
    .expect("create");
    durable.register(
        9,
        CellConfig {
            initial_soc: 0.6,
            capacity_ah: 3.0,
        },
    );
    for tick in 1..=4 {
        durable.ingest(9, feed(tick, 9));
        durable.process_pending().expect("tick");
    }
    drop(durable);

    let segments: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .collect();
    assert_eq!(segments.len(), 1, "snapshot drops covered segments");

    let (_, report) = recover(DurableConfig::new(&dir), 0).expect("recover");
    assert_eq!(
        report.records_replayed, 0,
        "snapshot already holds everything"
    );
    assert_eq!(report.tick, 4);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Extension blobs survive the crash loop.
#[test]
fn extensions_round_trip_through_recovery() {
    let dir = tmpdir("ext");
    let mut durable = DurableFleet::create(engine(0), DurableConfig::new(&dir)).expect("create");
    durable
        .set_extension("adapt-session", b"{\"seen\":42}".to_vec())
        .expect("small blob");
    durable.snapshot_now().expect("snapshot");
    drop(durable);

    let (recovered, report) = recover(DurableConfig::new(&dir), 0).expect("recover");
    assert_eq!(
        report.extensions,
        vec![("adapt-session".to_string(), b"{\"seen\":42}".to_vec())]
    );
    assert_eq!(
        recovered.extension("adapt-session"),
        Some(&b"{\"seen\":42}"[..])
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Guard rails: recovery demands a snapshot; create demands a clean dir.
#[test]
fn recover_requires_a_snapshot_and_create_requires_a_clean_dir() {
    let dir = tmpdir("guards");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let err = recover(DurableConfig::new(&dir), 0).expect_err("no snapshot");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    let durable = DurableFleet::create(engine(0), DurableConfig::new(&dir)).expect("create");
    drop(durable);
    let err = DurableFleet::create(engine(0), DurableConfig::new(&dir))
        .expect_err("dir already holds state");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// An extension blob set *between* snapshots is WAL-logged and survives a
/// crash: recovery replays it up to the last commit, without any snapshot
/// having carried it. (Before the write-path cap fix, extensions only
/// persisted at the next snapshot — a crash in between silently lost
/// them.)
#[test]
fn wal_logged_extension_survives_crash_without_snapshot() {
    let dir = tmpdir("extension");
    let mut durable = DurableFleet::create(
        engine(0),
        DurableConfig {
            // Cadence disabled: nothing snapshots after creation, so the
            // blob can only come back through WAL replay.
            snapshot_every_ticks: 0,
            ..DurableConfig::new(&dir)
        },
    )
    .expect("create");
    durable.register(
        3,
        CellConfig {
            initial_soc: 0.8,
            capacity_ah: 3.0,
        },
    );
    durable
        .set_extension("adapt/session", vec![1, 2, 3])
        .expect("small blob");
    durable.ingest(3, feed(1, 3));
    durable.process_pending().expect("tick 1 commits the blob");
    // Overwritten after the last commit: this version must NOT survive —
    // replay is commit-bounded for extensions exactly like every other op.
    durable
        .set_extension("adapt/session", vec![9, 9, 9])
        .expect("small blob");
    drop(durable);

    let (recovered, report) = recover(DurableConfig::new(&dir), 0).expect("recover");
    assert_eq!(report.tick, 1);
    assert_eq!(
        recovered.extension("adapt/session"),
        Some(&[1u8, 2, 3][..]),
        "committed extension must survive without a snapshot"
    );
    assert_eq!(
        report.extensions,
        vec![("adapt/session".to_string(), vec![1, 2, 3])]
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
