//! Property-based tests for the drive-cycle substrate: any seed must yield
//! physically plausible speed and current traces.

use pinnsoc_cycles::{DriveSchedule, MixedCycleBuilder, SpeedProfile, Vehicle};
use proptest::prelude::*;

fn any_schedule() -> impl Strategy<Value = DriveSchedule> {
    prop_oneof![
        Just(DriveSchedule::Udds),
        Just(DriveSchedule::Hwfet),
        Just(DriveSchedule::La92),
        Just(DriveSchedule::Us06),
    ]
}

proptest! {
    // Generation at 0.1 s for a quarter hour is the slow part; keep cases low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn schedules_respect_speed_and_accel_caps(schedule in any_schedule(), seed in 0u64..1000) {
        let stats = schedule.stats();
        let p = schedule.generate_with_dt(seed, 1.0);
        prop_assert!(p.max_speed() <= stats.max_speed + 1e-9);
        prop_assert!(p.speeds().iter().all(|v| *v >= 0.0 && v.is_finite()));
        let max_accel = p
            .accelerations()
            .iter()
            .fold(0.0_f64, |m, &a| m.max(a.abs()));
        prop_assert!(
            max_accel <= stats.max_accel + 1e-6,
            "{schedule}: accel {max_accel} exceeds cap {}",
            stats.max_accel
        );
    }

    #[test]
    fn schedule_duration_independent_of_seed(schedule in any_schedule(), seed in 0u64..1000) {
        let p = schedule.generate_with_dt(seed, 1.0);
        prop_assert!((p.duration_s() - schedule.stats().duration_s).abs() < 1.5);
    }

    #[test]
    fn mixed_cycles_always_valid(seed in 0u64..500, segments in 1usize..4) {
        let p = MixedCycleBuilder::new().segments(segments).dt_s(1.0).build(seed);
        prop_assert!(p.speeds().iter().all(|v| *v >= 0.0 && v.is_finite()));
        // Seams are ramped: global acceleration stays within the most
        // aggressive schedule's cap.
        let max_accel = p.accelerations().iter().fold(0.0_f64, |m, &a| m.max(a.abs()));
        prop_assert!(max_accel <= 3.78 + 1e-6, "seam spike {max_accel}");
    }

    #[test]
    fn vehicle_currents_finite_and_bounded(schedule in any_schedule(), seed in 0u64..200) {
        let profile = Vehicle::compact_ev().current_profile(&schedule.generate_with_dt(seed, 1.0));
        prop_assert!(profile.currents().iter().all(|c| c.is_finite()));
        // A compact EV on a 96s20p pack cannot pull more than ~8C from an
        // HG2-class cell nor regen more than ~4C.
        prop_assert!(profile.peak_discharge() < 24.0);
        prop_assert!(profile.peak_charge() < 12.0);
    }

    #[test]
    fn every_cycle_net_discharges(schedule in any_schedule(), seed in 0u64..200) {
        let profile = Vehicle::compact_ev().current_profile(&schedule.generate_with_dt(seed, 1.0));
        prop_assert!(profile.net_charge_ah() > 0.0, "{schedule} net-charged the cell");
    }
}

proptest! {
    #[test]
    fn cruise_power_monotone_in_speed(v1 in 1.0f64..35.0, dv in 0.1f64..10.0) {
        let ev = Vehicle::compact_ev();
        prop_assert!(ev.pack_power_w(v1 + dv, 0.0) > ev.pack_power_w(v1, 0.0));
    }

    #[test]
    fn profile_stats_consistent(speeds in proptest::collection::vec(0.0f64..40.0, 2..100)) {
        let p = SpeedProfile::new(1.0, speeds.clone());
        let max = speeds.iter().fold(0.0_f64, |m, &v| m.max(v));
        prop_assert!((p.max_speed() - max).abs() < 1e-12);
        prop_assert!(p.mean_speed() <= p.max_speed() + 1e-12);
        prop_assert!((p.distance_m() - speeds.iter().sum::<f64>()).abs() < 1e-9);
    }
}
