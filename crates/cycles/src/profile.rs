//! Time-series containers for speed and current profiles.

use serde::{Deserialize, Serialize};

/// A vehicle speed trace sampled on a fixed grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedProfile {
    dt_s: f64,
    /// Speeds in m/s, one per sample.
    speeds: Vec<f64>,
}

impl SpeedProfile {
    /// Creates a profile from a sampling interval and speed samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive, `speeds` is empty, or any speed is
    /// negative or non-finite.
    pub fn new(dt_s: f64, speeds: Vec<f64>) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        assert!(
            !speeds.is_empty(),
            "profile must contain at least one sample"
        );
        assert!(
            speeds.iter().all(|v| v.is_finite() && *v >= 0.0),
            "speeds must be finite and non-negative"
        );
        Self { dt_s, speeds }
    }

    /// Sampling interval, seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Speed samples, m/s.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Total duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.speeds.len() as f64 * self.dt_s
    }

    /// Mean speed, m/s.
    pub fn mean_speed(&self) -> f64 {
        self.speeds.iter().sum::<f64>() / self.speeds.len() as f64
    }

    /// Maximum speed, m/s.
    pub fn max_speed(&self) -> f64 {
        self.speeds.iter().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// Fraction of samples at (near) standstill, below 0.1 m/s.
    pub fn idle_fraction(&self) -> f64 {
        let idle = self.speeds.iter().filter(|v| **v < 0.1).count();
        idle as f64 / self.speeds.len() as f64
    }

    /// Acceleration at each sample (forward difference, m/s²); same length
    /// as the speed trace, with the last sample repeated.
    pub fn accelerations(&self) -> Vec<f64> {
        let n = self.speeds.len();
        let mut acc = Vec::with_capacity(n);
        for i in 0..n {
            let a = if i + 1 < n {
                (self.speeds[i + 1] - self.speeds[i]) / self.dt_s
            } else if n >= 2 {
                (self.speeds[n - 1] - self.speeds[n - 2]) / self.dt_s
            } else {
                0.0
            };
            acc.push(a);
        }
        acc
    }

    /// Concatenates another profile with the same `dt_s`.
    ///
    /// # Panics
    ///
    /// Panics if sampling intervals differ.
    pub fn concat(mut self, other: &SpeedProfile) -> SpeedProfile {
        assert!(
            (self.dt_s - other.dt_s).abs() < 1e-12,
            "cannot concatenate profiles with different sampling intervals"
        );
        self.speeds.extend_from_slice(&other.speeds);
        self
    }

    /// Distance covered, meters.
    pub fn distance_m(&self) -> f64 {
        self.speeds.iter().sum::<f64>() * self.dt_s
    }
}

/// A battery current demand trace on a fixed grid
/// (positive = discharge, matching `pinnsoc-battery`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurrentProfile {
    dt_s: f64,
    currents: Vec<f64>,
}

impl CurrentProfile {
    /// Creates a profile from a sampling interval and current samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive, the trace is empty, or any value is
    /// non-finite.
    pub fn new(dt_s: f64, currents: Vec<f64>) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        assert!(
            !currents.is_empty(),
            "profile must contain at least one sample"
        );
        assert!(
            currents.iter().all(|v| v.is_finite()),
            "currents must be finite"
        );
        Self { dt_s, currents }
    }

    /// Sampling interval, seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Current samples, amps.
    pub fn currents(&self) -> &[f64] {
        &self.currents
    }

    /// Consumes the profile, returning the raw samples.
    pub fn into_currents(self) -> Vec<f64> {
        self.currents
    }

    /// Total duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.currents.len() as f64 * self.dt_s
    }

    /// Mean of the (signed) current, amps.
    pub fn mean_current(&self) -> f64 {
        self.currents.iter().sum::<f64>() / self.currents.len() as f64
    }

    /// Largest discharge current, amps.
    pub fn peak_discharge(&self) -> f64 {
        self.currents.iter().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// Largest charge (regen) current magnitude, amps.
    pub fn peak_charge(&self) -> f64 {
        -self.currents.iter().fold(0.0_f64, |m, &v| m.min(v))
    }

    /// Net charge drawn over the profile, amp-hours (positive = net discharge).
    pub fn net_charge_ah(&self) -> f64 {
        self.currents.iter().sum::<f64>() * self.dt_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_profile_stats() {
        let p = SpeedProfile::new(1.0, vec![0.0, 10.0, 20.0, 10.0]);
        assert_eq!(p.duration_s(), 4.0);
        assert_eq!(p.max_speed(), 20.0);
        assert_eq!(p.mean_speed(), 10.0);
        assert_eq!(p.idle_fraction(), 0.25);
        assert_eq!(p.distance_m(), 40.0);
    }

    #[test]
    fn accelerations_forward_difference() {
        let p = SpeedProfile::new(0.5, vec![0.0, 1.0, 1.0]);
        let a = p.accelerations();
        assert_eq!(a, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = SpeedProfile::new(1.0, vec![1.0]);
        let b = SpeedProfile::new(1.0, vec![2.0, 3.0]);
        let c = a.concat(&b);
        assert_eq!(c.speeds(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "different sampling intervals")]
    fn concat_rejects_mismatched_dt() {
        let a = SpeedProfile::new(1.0, vec![1.0]);
        let b = SpeedProfile::new(0.1, vec![2.0]);
        let _ = a.concat(&b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_rejected() {
        let _ = SpeedProfile::new(1.0, vec![-1.0]);
    }

    #[test]
    fn current_profile_stats() {
        let p = CurrentProfile::new(0.5, vec![3.0, -1.0, 6.0, 0.0]);
        assert_eq!(p.peak_discharge(), 6.0);
        assert_eq!(p.peak_charge(), 1.0);
        assert_eq!(p.mean_current(), 2.0);
        assert!((p.net_charge_ah() - 8.0 * 0.5 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let p = CurrentProfile::new(0.1, vec![1.0, 2.0]);
        let json = serde_json::to_string(&p).unwrap();
        let back: CurrentProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
