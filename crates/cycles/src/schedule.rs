//! Synthetic EPA-style driving schedules.
//!
//! The LG dataset applies four standard dynamometer schedules (UDDS, HWFET,
//! LA92, US06) to the cell. The measured schedules are not redistributable,
//! so this module generates *statistically equivalent* speed traces: a
//! seeded segment process (stop → accelerate → cruise → decelerate) whose
//! parameters are tuned per schedule to match the published summary
//! statistics (duration, mean/max speed, stop density, acceleration
//! aggressiveness). That preserves exactly what matters to the SoC task:
//! the distribution and autocorrelation of current demand.

use crate::profile::SpeedProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Standard dynamometer driving schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriveSchedule {
    /// Urban Dynamometer Driving Schedule: stop-and-go city traffic.
    Udds,
    /// Highway Fuel Economy Test: steady highway cruising, no stops.
    Hwfet,
    /// LA92 "Unified" cycle: aggressive urban driving.
    La92,
    /// US06 supplemental: very aggressive, high speed and acceleration.
    Us06,
}

impl fmt::Display for DriveSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DriveSchedule::Udds => "UDDS",
            DriveSchedule::Hwfet => "HWFET",
            DriveSchedule::La92 => "LA92",
            DriveSchedule::Us06 => "US06",
        };
        f.write_str(s)
    }
}

impl DriveSchedule {
    /// The four schedules in the LG dataset's test set.
    pub const ALL: [DriveSchedule; 4] = [
        DriveSchedule::Udds,
        DriveSchedule::Hwfet,
        DriveSchedule::La92,
        DriveSchedule::Us06,
    ];

    /// Generator parameters tuned to the published schedule statistics.
    pub fn stats(self) -> ScheduleStats {
        match self {
            // UDDS: 1369 s, avg 31.5 km/h ≈ 8.8 m/s, max 91.2 km/h ≈ 25 m/s,
            // 17 stops.
            DriveSchedule::Udds => ScheduleStats {
                duration_s: 1369.0,
                max_accel: 1.48,
                cruise_speed_mean: 11.0,
                cruise_speed_std: 4.5,
                max_speed: 25.3,
                accel_mean: 1.1,
                decel_mean: 1.2,
                stop_dur_mean: 18.0,
                cruise_dur_mean: 45.0,
                speed_jitter: 0.45,
                initial_stop: true,
            },
            // HWFET: 765 s, avg 77.7 km/h ≈ 21.6 m/s, max 96.4 km/h ≈ 26.8,
            // essentially no stops.
            DriveSchedule::Hwfet => ScheduleStats {
                duration_s: 765.0,
                max_accel: 1.43,
                cruise_speed_mean: 22.0,
                cruise_speed_std: 2.5,
                max_speed: 26.8,
                accel_mean: 0.6,
                decel_mean: 0.7,
                stop_dur_mean: 1.0,
                cruise_dur_mean: 220.0,
                speed_jitter: 0.35,
                initial_stop: false,
            },
            // LA92: 1435 s, avg 39.6 km/h ≈ 11.0 m/s, max 108.1 km/h ≈ 30.0,
            // harder accelerations than UDDS.
            DriveSchedule::La92 => ScheduleStats {
                duration_s: 1435.0,
                max_accel: 3.10,
                cruise_speed_mean: 13.5,
                cruise_speed_std: 6.0,
                max_speed: 30.0,
                accel_mean: 1.6,
                decel_mean: 1.8,
                stop_dur_mean: 14.0,
                cruise_dur_mean: 40.0,
                speed_jitter: 0.6,
                initial_stop: true,
            },
            // US06: 600 s, avg 77.9 km/h ≈ 21.6 m/s, max 129.2 km/h ≈ 35.9,
            // accelerations up to 3.8 m/s².
            DriveSchedule::Us06 => ScheduleStats {
                duration_s: 600.0,
                max_accel: 3.78,
                cruise_speed_mean: 24.0,
                cruise_speed_std: 6.5,
                max_speed: 35.9,
                accel_mean: 2.4,
                decel_mean: 2.6,
                stop_dur_mean: 6.0,
                cruise_dur_mean: 55.0,
                speed_jitter: 0.8,
                initial_stop: true,
            },
        }
    }

    /// Generates a synthetic speed trace for this schedule at the LG
    /// dataset's 0.1 s sampling rate.
    pub fn generate(self, seed: u64) -> SpeedProfile {
        self.generate_with_dt(seed, 0.1)
    }

    /// Generates a synthetic speed trace with an explicit sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive.
    pub fn generate_with_dt(self, seed: u64, dt_s: f64) -> SpeedProfile {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        let stats = self.stats();
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        let samples = (stats.duration_s / dt_s).round() as usize;
        let mut speeds = Vec::with_capacity(samples);
        let mut generator = SegmentProcess::new(stats, &mut rng);
        for _ in 0..samples {
            speeds.push(generator.next_speed(dt_s, &mut rng));
        }
        SpeedProfile::new(dt_s, speeds)
    }
}

/// Summary-statistic parameters steering the segment process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Total schedule duration, seconds.
    pub duration_s: f64,
    /// Mean of sampled cruise target speeds, m/s.
    pub cruise_speed_mean: f64,
    /// Standard deviation of cruise target speeds, m/s.
    pub cruise_speed_std: f64,
    /// Hard cap on speed, m/s.
    pub max_speed: f64,
    /// Mean acceleration magnitude, m/s².
    pub accel_mean: f64,
    /// Mean deceleration magnitude, m/s².
    pub decel_mean: f64,
    /// Mean stop duration, seconds (1 s ≈ no real stops).
    pub stop_dur_mean: f64,
    /// Mean cruise segment duration, seconds.
    pub cruise_dur_mean: f64,
    /// Within-cruise speed jitter standard deviation, m/s.
    pub speed_jitter: f64,
    /// Whether the cycle starts from standstill.
    pub initial_stop: bool,
    /// Hard cap on acceleration magnitude, m/s² (published schedule maxima).
    pub max_accel: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Stopped { remaining_s: f64 },
    Accelerating { target: f64, rate: f64 },
    Cruising { target: f64, remaining_s: f64 },
    Decelerating { target: f64, rate: f64 },
}

/// Stop → accelerate → cruise → (decelerate | re-accelerate) process.
#[derive(Debug)]
struct SegmentProcess {
    stats: ScheduleStats,
    speed: f64,
    phase: Phase,
}

impl SegmentProcess {
    fn new(stats: ScheduleStats, rng: &mut StdRng) -> Self {
        let phase = if stats.initial_stop {
            Phase::Stopped {
                remaining_s: stats.stop_dur_mean.max(2.0),
            }
        } else {
            Phase::Cruising {
                target: stats.cruise_speed_mean,
                remaining_s: stats.cruise_dur_mean,
            }
        };
        let speed = if stats.initial_stop {
            0.0
        } else {
            stats.cruise_speed_mean
        };
        let mut process = Self {
            stats,
            speed,
            phase,
        };
        // Warm the phase up so the first samples are not degenerate.
        if !stats.initial_stop {
            process.phase = process.pick_cruise(rng);
        }
        process
    }

    fn sample_target(&self, rng: &mut StdRng) -> f64 {
        let normal = Normal::new(self.stats.cruise_speed_mean, self.stats.cruise_speed_std)
            .expect("std validated by construction");
        normal.sample(rng).clamp(2.0, self.stats.max_speed)
    }

    fn sample_duration(&self, mean: f64, rng: &mut StdRng) -> f64 {
        // Log-normal keeps durations positive with a realistic long tail.
        let sigma = 0.6_f64;
        let mu = mean.max(0.5).ln() - sigma * sigma / 2.0;
        let ln = LogNormal::new(mu, sigma).expect("parameters are finite");
        ln.sample(rng).clamp(0.5, mean * 4.0)
    }

    fn sample_rate(&self, mean: f64, rng: &mut StdRng) -> f64 {
        let normal = Normal::new(mean, mean * 0.3).expect("finite");
        normal.sample(rng).clamp(mean * 0.3, mean * 2.0)
    }

    fn pick_cruise(&mut self, rng: &mut StdRng) -> Phase {
        Phase::Cruising {
            target: self.sample_target(rng),
            remaining_s: self.sample_duration(self.stats.cruise_dur_mean, rng),
        }
    }

    fn next_speed(&mut self, dt: f64, rng: &mut StdRng) -> f64 {
        let previous = self.speed;
        self.advance_phase(dt, rng);
        // Physical limit: no sample-to-sample change may exceed the
        // schedule's published maximum acceleration. Acceleration capability
        // tapers with speed (power-limited traction), as in the real cycles.
        let taper = 1.0 - 0.75 * (previous / self.stats.max_speed).clamp(0.0, 1.0);
        let max_up = self.stats.max_accel * taper * dt;
        // Braking is friction-assisted, so deceleration keeps the full cap.
        let max_down = self.stats.max_accel * dt;
        self.speed = self
            .speed
            .clamp(previous - max_down, previous + max_up)
            .max(0.0);
        self.speed
    }

    fn advance_phase(&mut self, dt: f64, rng: &mut StdRng) {
        match self.phase {
            Phase::Stopped { remaining_s } => {
                self.speed = 0.0;
                if remaining_s <= 0.0 {
                    let target = self.sample_target(rng);
                    let rate = self.sample_rate(self.stats.accel_mean, rng);
                    self.phase = Phase::Accelerating { target, rate };
                } else {
                    self.phase = Phase::Stopped {
                        remaining_s: remaining_s - dt,
                    };
                }
            }
            Phase::Accelerating { target, rate } => {
                self.speed = (self.speed + rate * dt).min(self.stats.max_speed);
                if self.speed >= target {
                    self.speed = target;
                    self.phase = Phase::Cruising {
                        target,
                        remaining_s: self.sample_duration(self.stats.cruise_dur_mean, rng),
                    };
                }
            }
            Phase::Cruising {
                target,
                remaining_s,
            } => {
                // Track the target with a ~3 s time constant and add
                // Brownian jitter scaled by sqrt(dt) so the acceleration
                // spectrum is independent of the sampling rate.
                let alpha = (dt / 3.0).min(1.0);
                let jitter = Normal::new(0.0, self.stats.speed_jitter * dt.sqrt())
                    .expect("finite")
                    .sample(rng);
                self.speed = (self.speed + alpha * (target - self.speed) + jitter)
                    .clamp(0.0, self.stats.max_speed);
                if remaining_s <= 0.0 {
                    // End of cruise: stop, slow down, or speed up.
                    let roll: f64 = rng.gen();
                    let stops_matter = self.stats.stop_dur_mean > 2.0;
                    if stops_matter && roll < 0.45 {
                        let rate = self.sample_rate(self.stats.decel_mean, rng);
                        self.phase = Phase::Decelerating { target: 0.0, rate };
                    } else if roll < 0.75 {
                        let new_target = self.sample_target(rng);
                        if new_target < self.speed {
                            self.phase = Phase::Decelerating {
                                target: new_target,
                                rate: self.sample_rate(self.stats.decel_mean, rng),
                            };
                        } else {
                            let rate = self.sample_rate(self.stats.accel_mean, rng);
                            self.phase = Phase::Accelerating {
                                target: new_target,
                                rate,
                            };
                        }
                    } else {
                        self.phase = self.pick_cruise(rng);
                    }
                } else {
                    self.phase = Phase::Cruising {
                        target,
                        remaining_s: remaining_s - dt,
                    };
                }
            }
            Phase::Decelerating { target, rate } => {
                self.speed = (self.speed - rate * dt).max(target);
                if self.speed <= target + 1e-9 {
                    self.speed = target;
                    self.phase = if target <= 0.1 {
                        Phase::Stopped {
                            remaining_s: self.sample_duration(self.stats.stop_dur_mean, rng),
                        }
                    } else {
                        Phase::Cruising {
                            target,
                            remaining_s: self.sample_duration(self.stats.cruise_dur_mean, rng),
                        }
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = DriveSchedule::Udds.generate(7);
        let b = DriveSchedule::Udds.generate(7);
        assert_eq!(a, b);
        let c = DriveSchedule::Udds.generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn durations_match_published_schedules() {
        for (s, d) in [
            (DriveSchedule::Udds, 1369.0),
            (DriveSchedule::Hwfet, 765.0),
            (DriveSchedule::La92, 1435.0),
            (DriveSchedule::Us06, 600.0),
        ] {
            let p = s.generate(1);
            assert!((p.duration_s() - d).abs() < 1.0, "{s}: {}", p.duration_s());
        }
    }

    #[test]
    fn udds_is_stop_and_go() {
        let p = DriveSchedule::Udds.generate(3);
        assert!(
            p.idle_fraction() > 0.08,
            "UDDS idle fraction {}",
            p.idle_fraction()
        );
        assert!(
            p.mean_speed() > 5.0 && p.mean_speed() < 15.0,
            "mean {}",
            p.mean_speed()
        );
    }

    #[test]
    fn hwfet_is_sustained_cruising() {
        let p = DriveSchedule::Hwfet.generate(3);
        assert!(
            p.idle_fraction() < 0.05,
            "HWFET idle fraction {}",
            p.idle_fraction()
        );
        assert!(p.mean_speed() > 17.0, "HWFET mean speed {}", p.mean_speed());
    }

    #[test]
    fn us06_is_most_aggressive() {
        let us06 = DriveSchedule::Us06.generate(5);
        let udds = DriveSchedule::Udds.generate(5);
        let max_a = |p: &SpeedProfile| {
            p.accelerations()
                .iter()
                .fold(0.0_f64, |m, &a| m.max(a.abs()))
        };
        assert!(
            max_a(&us06) > max_a(&udds),
            "US06 should out-accelerate UDDS"
        );
        assert!(us06.max_speed() > udds.max_speed());
    }

    #[test]
    fn speeds_respect_caps() {
        for s in DriveSchedule::ALL {
            let p = s.generate(11);
            assert!(p.max_speed() <= s.stats().max_speed + 1e-9, "{s}");
            assert!(p.speeds().iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn sampling_interval_configurable() {
        let p = DriveSchedule::Us06.generate_with_dt(1, 1.0);
        assert_eq!(p.dt_s(), 1.0);
        assert!((p.duration_s() - 600.0).abs() < 1.5);
    }

    #[test]
    fn mean_speeds_roughly_match_published() {
        // Generous bands: the point is that the four schedules are distinct
        // in the right ordering, not exact replication.
        let means: Vec<f64> = DriveSchedule::ALL
            .iter()
            .map(|s| {
                // Average several seeds to damp variance.
                (0..5)
                    .map(|k| s.generate(100 + k).mean_speed())
                    .sum::<f64>()
                    / 5.0
            })
            .collect();
        let (udds, hwfet, la92, us06) = (means[0], means[1], means[2], means[3]);
        assert!(
            udds < hwfet,
            "UDDS {udds} should be slower than HWFET {hwfet}"
        );
        assert!(la92 < us06, "LA92 {la92} should be slower than US06 {us06}");
        assert!(hwfet > 15.0 && us06 > 15.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DriveSchedule::La92.to_string(), "LA92");
    }
}
