//! Laboratory load patterns (Sandia-style) and mixed drive cycles (LG-style).

use crate::profile::{CurrentProfile, SpeedProfile};
use crate::schedule::DriveSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Constant-current segment lasting `duration_s` at `current_a`
/// (positive = discharge).
///
/// # Panics
///
/// Panics if duration or `dt_s` is not positive.
pub fn constant_current(current_a: f64, duration_s: f64, dt_s: f64) -> CurrentProfile {
    assert!(duration_s > 0.0 && dt_s > 0.0, "durations must be positive");
    let n = (duration_s / dt_s).round().max(1.0) as usize;
    CurrentProfile::new(dt_s, vec![current_a; n])
}

/// Alternating pulse train: `high_a` for `pulse_s`, then `low_a` for
/// `rest_s`, repeated `cycles` times. Used for HPPC-style characterization
/// tests and failure-injection scenarios.
///
/// # Panics
///
/// Panics if any duration is non-positive or `cycles` is zero.
pub fn pulse_train(
    high_a: f64,
    pulse_s: f64,
    low_a: f64,
    rest_s: f64,
    cycles: usize,
    dt_s: f64,
) -> CurrentProfile {
    assert!(
        pulse_s > 0.0 && rest_s > 0.0 && dt_s > 0.0,
        "durations must be positive"
    );
    assert!(cycles > 0, "at least one cycle required");
    let pulse_n = (pulse_s / dt_s).round().max(1.0) as usize;
    let rest_n = (rest_s / dt_s).round().max(1.0) as usize;
    let mut currents = Vec::with_capacity(cycles * (pulse_n + rest_n));
    for _ in 0..cycles {
        currents.extend(std::iter::repeat_n(high_a, pulse_n));
        currents.extend(std::iter::repeat_n(low_a, rest_n));
    }
    CurrentProfile::new(dt_s, currents)
}

/// One Sandia-protocol lab cycle: constant-current discharge at
/// `discharge_c` (as a positive C-rate) followed by a 0.5C recharge.
/// Durations here are upper bounds — the simulator terminates each phase at
/// its voltage cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabCycle {
    /// Discharge C-rate (positive).
    pub discharge_c: f64,
    /// Charge C-rate (positive; applied as negative current).
    pub charge_c: f64,
    /// Ambient temperature for the cycle, °C.
    pub ambient_c: f64,
}

impl LabCycle {
    /// The paper's Sandia training condition: 0.5C charge / 1C discharge.
    pub fn sandia_train(ambient_c: f64) -> Self {
        Self {
            discharge_c: 1.0,
            charge_c: 0.5,
            ambient_c,
        }
    }

    /// The paper's Sandia test conditions: 0.5C charge and 2C or 3C
    /// discharge.
    ///
    /// # Panics
    ///
    /// Panics if `discharge_c` is not positive.
    pub fn sandia_test(discharge_c: f64, ambient_c: f64) -> Self {
        assert!(discharge_c > 0.0, "discharge rate must be positive");
        Self {
            discharge_c,
            charge_c: 0.5,
            ambient_c,
        }
    }
}

/// Builds LG-style "mixed" cycles: random concatenations of the four drive
/// schedules, as used for the dataset's eight mixed charge/discharge cycles.
#[derive(Debug, Clone)]
pub struct MixedCycleBuilder {
    segments: usize,
    dt_s: f64,
}

impl Default for MixedCycleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MixedCycleBuilder {
    /// Default builder: 6 segments at the LG dataset's 0.1 s sampling.
    pub fn new() -> Self {
        Self {
            segments: 6,
            dt_s: 0.1,
        }
    }

    /// Sets the number of schedule segments to concatenate.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn segments(mut self, segments: usize) -> Self {
        assert!(segments > 0, "at least one segment required");
        self.segments = segments;
        self
    }

    /// Sets the sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive.
    pub fn dt_s(mut self, dt_s: f64) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        self.dt_s = dt_s;
        self
    }

    /// Generates a mixed speed profile: `segments` randomly chosen schedules
    /// back to back, each with an independent sub-seed. A bounded-
    /// acceleration ramp (±1.5 m/s²) bridges each seam so the concatenation
    /// never implies an unphysical speed jump.
    pub fn build(&self, seed: u64) -> SpeedProfile {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut profile: Option<SpeedProfile> = None;
        for k in 0..self.segments {
            let schedule = DriveSchedule::ALL[rng.gen_range(0..DriveSchedule::ALL.len())];
            let sub_seed = rng.gen::<u64>() ^ k as u64;
            let segment = schedule.generate_with_dt(sub_seed, self.dt_s);
            profile = Some(match profile {
                None => segment,
                Some(p) => {
                    let bridge = transition_ramp(
                        *p.speeds().last().expect("non-empty"),
                        segment.speeds()[0],
                        1.5,
                        self.dt_s,
                    );
                    match bridge {
                        Some(ramp) => p.concat(&ramp).concat(&segment),
                        None => p.concat(&segment),
                    }
                }
            });
        }
        profile.expect("segments > 0 validated")
    }
}

/// Linear speed ramp from `from` to `to` at `accel` m/s², or `None` when the
/// gap is already within one sample's reach.
fn transition_ramp(from: f64, to: f64, accel: f64, dt_s: f64) -> Option<SpeedProfile> {
    let gap = to - from;
    let max_step = accel * dt_s;
    if gap.abs() <= max_step {
        return None;
    }
    let steps = (gap.abs() / max_step).ceil() as usize;
    let speeds = (1..=steps)
        .map(|k| (from + gap * k as f64 / steps as f64).max(0.0))
        .collect();
    Some(SpeedProfile::new(dt_s, speeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_ramp_bounds_acceleration() {
        let ramp = transition_ramp(0.0, 22.0, 1.5, 0.1).expect("gap needs a ramp");
        let max_da = ramp
            .accelerations()
            .iter()
            .fold(0.0_f64, |m, &a| m.max(a.abs()));
        assert!(max_da <= 1.5 + 1e-9, "ramp accel {max_da}");
        assert!((ramp.speeds().last().unwrap() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn transition_ramp_skipped_for_tiny_gap() {
        assert!(transition_ramp(10.0, 10.05, 1.5, 0.1).is_none());
    }

    #[test]
    fn mixed_cycle_has_no_seam_spikes() {
        let p = MixedCycleBuilder::new().segments(4).build(0x16AA + 1000);
        let max_a = p
            .accelerations()
            .iter()
            .fold(0.0_f64, |m, &a| m.max(a.abs()));
        assert!(max_a < 4.0, "seam acceleration spike: {max_a} m/s²");
    }

    #[test]
    fn constant_current_length_and_value() {
        let p = constant_current(3.0, 60.0, 0.5);
        assert_eq!(p.currents().len(), 120);
        assert!(p.currents().iter().all(|&c| c == 3.0));
    }

    #[test]
    fn pulse_train_shape() {
        let p = pulse_train(6.0, 10.0, 0.0, 5.0, 3, 1.0);
        assert_eq!(p.currents().len(), 45);
        assert_eq!(p.currents()[0], 6.0);
        assert_eq!(p.currents()[10], 0.0);
        assert_eq!(p.peak_discharge(), 6.0);
    }

    #[test]
    fn lab_cycle_presets() {
        let train = LabCycle::sandia_train(25.0);
        assert_eq!(train.discharge_c, 1.0);
        assert_eq!(train.charge_c, 0.5);
        let test = LabCycle::sandia_test(3.0, 15.0);
        assert_eq!(test.discharge_c, 3.0);
        assert_eq!(test.ambient_c, 15.0);
    }

    #[test]
    fn mixed_cycle_is_deterministic_and_long() {
        let b = MixedCycleBuilder::new().segments(4);
        let a = b.build(5);
        let c = b.build(5);
        assert_eq!(a, c);
        // Four schedule segments: at least 4 × 600 s.
        assert!(
            a.duration_s() >= 2400.0 - 1.0,
            "duration {}",
            a.duration_s()
        );
    }

    #[test]
    fn mixed_cycles_differ_by_seed() {
        let b = MixedCycleBuilder::new().segments(3);
        assert_ne!(b.build(1), b.build(2));
    }

    #[test]
    fn mixed_cycle_respects_dt() {
        let p = MixedCycleBuilder::new().segments(2).dt_s(1.0).build(9);
        assert_eq!(p.dt_s(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = MixedCycleBuilder::new().segments(0);
    }
}
