//! # pinnsoc-cycles
//!
//! Load-profile substrate for the `pinnsoc` workspace: synthetic driving
//! schedules statistically matched to the EPA cycles used by the LG dataset
//! (UDDS, HWFET, LA92, US06), a longitudinal vehicle model converting speed
//! into per-cell battery current, and the laboratory patterns of the Sandia
//! protocol.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_cycles::{DriveSchedule, Vehicle};
//!
//! let speeds = DriveSchedule::Udds.generate(42);
//! let currents = Vehicle::compact_ev().current_profile(&speeds);
//! assert!(currents.peak_discharge() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod patterns;
pub mod profile;
pub mod schedule;
pub mod vehicle;

pub use patterns::{constant_current, pulse_train, LabCycle, MixedCycleBuilder};
pub use profile::{CurrentProfile, SpeedProfile};
pub use schedule::{DriveSchedule, ScheduleStats};
pub use vehicle::Vehicle;
