//! Longitudinal vehicle model: speed trace → per-cell battery current.
//!
//! The LG dataset was produced by scaling EV drive-cycle power demand onto a
//! single 18650 cell. This module does the same: a road-load equation
//! converts speed and acceleration into traction power, and a pack
//! configuration scales that power to one cell.

use crate::profile::{CurrentProfile, SpeedProfile};
use serde::{Deserialize, Serialize};

/// Road-load and drivetrain parameters of the simulated EV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Curb mass plus payload, kg.
    pub mass_kg: f64,
    /// Aerodynamic drag area `Cd·A`, m².
    pub drag_area: f64,
    /// Rolling resistance coefficient.
    pub rolling_coeff: f64,
    /// Drivetrain efficiency (battery → wheel) in `(0, 1]`.
    pub drivetrain_eff: f64,
    /// Regenerative braking recapture efficiency in `[0, 1]`.
    pub regen_eff: f64,
    /// Constant auxiliary power draw (HVAC, electronics), watts.
    pub aux_power_w: f64,
    /// Maximum regenerative power accepted by the pack, watts.
    pub regen_cap_w: f64,
    /// Cells in series.
    pub cells_series: u32,
    /// Cells in parallel.
    pub cells_parallel: u32,
    /// Nominal per-cell voltage used for the power→current conversion, volts.
    pub nominal_cell_v: f64,
}

impl Vehicle {
    /// A compact EV whose pack stresses an HG2-class cell between roughly
    /// −2C (regen) and +3C (hard acceleration), matching the current range
    /// of the LG dataset.
    pub fn compact_ev() -> Self {
        Self {
            mass_kg: 1550.0,
            drag_area: 0.61,
            rolling_coeff: 0.0095,
            drivetrain_eff: 0.88,
            regen_eff: 0.6,
            aux_power_w: 450.0,
            regen_cap_w: 35_000.0,
            cells_series: 96,
            cells_parallel: 20,
            nominal_cell_v: 3.6,
        }
    }

    /// Total number of cells in the pack.
    pub fn cell_count(&self) -> u32 {
        self.cells_series * self.cells_parallel
    }

    /// Traction power at the wheels for a speed/acceleration operating
    /// point, watts (negative while braking).
    pub fn wheel_power_w(&self, speed_ms: f64, accel_ms2: f64) -> f64 {
        const AIR_DENSITY: f64 = 1.20; // kg/m³
        const GRAVITY: f64 = 9.81; // m/s²
        if speed_ms <= 0.0 {
            return 0.0;
        }
        let aero = 0.5 * AIR_DENSITY * self.drag_area * speed_ms.powi(3);
        let rolling = self.mass_kg * GRAVITY * self.rolling_coeff * speed_ms;
        let inertia = self.mass_kg * accel_ms2 * speed_ms;
        aero + rolling + inertia
    }

    /// Battery-side pack power, watts (positive = discharging), including
    /// drivetrain losses, partial regen recapture, and auxiliary load.
    pub fn pack_power_w(&self, speed_ms: f64, accel_ms2: f64) -> f64 {
        let wheel = self.wheel_power_w(speed_ms, accel_ms2);
        let traction = if wheel >= 0.0 {
            wheel / self.drivetrain_eff
        } else {
            (wheel * self.regen_eff).max(-self.regen_cap_w)
        };
        traction + self.aux_power_w
    }

    /// Per-cell current for an operating point, amps
    /// (positive = discharge).
    pub fn cell_current_a(&self, speed_ms: f64, accel_ms2: f64) -> f64 {
        let pack_v = self.nominal_cell_v * self.cells_series as f64;
        let pack_current = self.pack_power_w(speed_ms, accel_ms2) / pack_v;
        pack_current / self.cells_parallel as f64
    }

    /// Converts a full speed profile into a per-cell current demand trace.
    pub fn current_profile(&self, speeds: &SpeedProfile) -> CurrentProfile {
        let accels = speeds.accelerations();
        let currents = speeds
            .speeds()
            .iter()
            .zip(&accels)
            .map(|(&v, &a)| self.cell_current_a(v, a))
            .collect();
        CurrentProfile::new(speeds.dt_s(), currents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DriveSchedule;

    fn ev() -> Vehicle {
        Vehicle::compact_ev()
    }

    #[test]
    fn standstill_power_is_aux_only() {
        let v = ev();
        assert_eq!(v.wheel_power_w(0.0, 0.0), 0.0);
        assert_eq!(v.pack_power_w(0.0, 0.0), v.aux_power_w);
    }

    #[test]
    fn cruise_power_is_positive_and_reasonable() {
        let v = ev();
        // 100 km/h cruise: typical compact EV draws 12–25 kW at the pack.
        let p = v.pack_power_w(27.8, 0.0);
        assert!(p > 8_000.0 && p < 30_000.0, "cruise power {p}");
    }

    #[test]
    fn braking_recovers_energy() {
        let v = ev();
        let p = v.pack_power_w(20.0, -2.5);
        assert!(p < 0.0, "hard braking should regen, got {p}");
        // Regen must recover less than the wheel power magnitude.
        assert!(p.abs() < v.wheel_power_w(20.0, -2.5).abs());
    }

    #[test]
    fn cell_current_in_dataset_range_over_schedules() {
        let v = ev();
        for s in DriveSchedule::ALL {
            let profile = v.current_profile(&s.generate(42));
            let peak_d = profile.peak_discharge();
            let peak_c = profile.peak_charge();
            // HG2 is a 3 Ah cell rated for 20 A: stay within the dataset's
            // roughly -3C..+6C envelope.
            assert!(peak_d > 1.0, "{s}: peak discharge {peak_d} too small");
            assert!(peak_d < 18.0, "{s}: peak discharge {peak_d} too large");
            assert!(peak_c < 9.0, "{s}: peak regen {peak_c} too large");
        }
    }

    #[test]
    fn us06_draws_more_than_udds() {
        let v = ev();
        let udds = v.current_profile(&DriveSchedule::Udds.generate(9));
        let us06 = v.current_profile(&DriveSchedule::Us06.generate(9));
        assert!(
            us06.mean_current() > udds.mean_current(),
            "US06 {} vs UDDS {}",
            us06.mean_current(),
            udds.mean_current()
        );
    }

    #[test]
    fn net_discharge_over_any_cycle() {
        let v = ev();
        for s in DriveSchedule::ALL {
            let p = v.current_profile(&s.generate(17));
            assert!(p.net_charge_ah() > 0.0, "{s} should net-discharge the cell");
        }
    }

    #[test]
    fn inertia_term_scales_with_acceleration() {
        let v = ev();
        let gentle = v.cell_current_a(15.0, 0.5);
        let hard = v.cell_current_a(15.0, 2.5);
        assert!(hard > gentle * 2.0, "gentle {gentle} vs hard {hard}");
    }

    #[test]
    fn serde_roundtrip() {
        let v = ev();
        let json = serde_json::to_string(&v).unwrap();
        let back: Vehicle = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
