//! End-to-end telemetry-plane walkthrough: build a small serve tier,
//! attach the full observability stack (metrics hub, flight recorder,
//! SLO engine, health board), bind the HTTP plane on an ephemeral port,
//! drive a few ticks of traffic, and fetch `/metrics` + `/healthz` over
//! real TCP — exactly what a Prometheus scraper and an orchestrator
//! liveness probe would see.
//!
//! ```text
//! cargo run --release -p pinnsoc-serve --example obs_dashboard
//! ```
//!
//! CI runs this as the HTTP-plane smoke: any panic (bind failure, a
//! non-200, malformed JSON) fails the job.

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, Telemetry};
use pinnsoc_obs::{http_get, FlightRecorder, HealthSource, ObsHub, PlaneConfig, TelemetryPlane};
use pinnsoc_serve::{ServeConfig, ServeTier, SloConfig};
use std::sync::Arc;

const CELLS: u64 = 24;
const TICKS: u64 = 5;

fn main() {
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: 2,
            ring_capacity: 4 * CELLS as usize,
            fleet: FleetConfig {
                shards: 2,
                micro_batch: 8,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
            durability: None,
        },
    )
    .expect("serve tier");
    for id in 0..CELLS {
        tier.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }

    // The full observability stack, attached exactly as a deployment
    // would: metrics, causal tracing, SLO burn rates, health.
    let hub = ObsHub::new();
    let recorder = FlightRecorder::with_default_capacity();
    tier.attach_obs(&hub);
    tier.attach_tracer(&recorder);
    tier.attach_slo(&hub, SloConfig::default());
    let board = tier.health_board();
    let plane = TelemetryPlane::bind(
        "127.0.0.1:0",
        Arc::clone(&hub),
        PlaneConfig {
            recorder: Some(Arc::clone(&recorder)),
            process_names: tier.trace_process_names(),
            health: Some(board as Arc<dyn HealthSource>),
        },
    )
    .expect("bind telemetry plane");
    println!("telemetry plane listening on http://{}", plane.addr());

    let handle = tier.handle();
    for tick in 1..=TICKS {
        for id in 0..CELLS {
            handle.ingest(
                id,
                Telemetry {
                    time_s: tick as f64 * 10.0,
                    voltage_v: 3.5 + 0.001 * (tick as f64) + 0.01 * ((id % 7) as f64),
                    current_a: 0.8,
                    temperature_c: 25.0,
                },
            );
        }
        tier.tick().expect("tick");
    }
    println!("drove {TICKS} ticks x {CELLS} cells\n");

    // What a Prometheus scrape sees (serve series only, for brevity).
    let (code, metrics) = http_get(plane.addr(), "/metrics").expect("GET /metrics");
    assert_eq!(code, 200, "/metrics must answer 200");
    let serve_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("pinnsoc_serve_") && !l.contains("_bucket"))
        .collect();
    assert!(!serve_lines.is_empty(), "serve series must be exported");
    println!(
        "GET /metrics -> {code} ({} bytes), serve series:",
        metrics.len()
    );
    for line in &serve_lines {
        println!("  {line}");
    }

    // What an orchestrator probe sees.
    let (code, health) = http_get(plane.addr(), "/healthz").expect("GET /healthz");
    assert_eq!(code, 200, "/healthz must answer 200 on a healthy tier");
    println!("\nGET /healthz -> {code}: {health}");

    // The flight recorder keeps capturing; one drain shows the tree size.
    let (code, trace) = http_get(plane.addr(), "/trace.json").expect("GET /trace.json");
    assert_eq!(code, 200);
    let spans = trace.matches("\"ph\":\"X\"").count();
    assert!(spans > 0, "ticks must have produced spans");
    println!("\nGET /trace.json -> {code}: {spans} spans (Perfetto-loadable)");
}
