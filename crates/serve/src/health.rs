//! Live health and SLO state for the serve tier.
//!
//! Two pieces:
//!
//! - [`SloConfig`] / the tier's per-tick SLO feed: two
//!   [`SloTracker`]s — *latency* (ingest-to-estimate latency over
//!   [`SloConfig::latency_threshold_s`] counts as bad) and *delivery*
//!   (frames refused by ring backpressure or rejected as
//!   non-finite/time-reversed count as bad) — surfaced as
//!   `pinnsoc_serve_slo_*` gauges, ring events on every alert
//!   transition, and `/healthz` detail.
//! - [`HealthBoard`]: a small shared scoreboard the tier updates each
//!   tick (and on crash/recover), read by the HTTP plane through the
//!   [`HealthSource`] trait. The board is behind one mutex touched only
//!   by the tick loop's boundary update and probe reads — never by
//!   workers.
//!
//! Readiness semantics: a crashed-but-buffering lane **degrades** health
//! but does not fail readiness — its ring keeps accepting telemetry and
//! the other lanes keep serving, so routing traffic away entirely would
//! turn a partial outage into a total one. Readiness only drops when no
//! lane can serve. A paging SLO also reports not-ready: estimates are
//! flowing but violating their objective badly enough that a load
//! balancer should prefer a healthier replica.

use pinnsoc_obs::{
    AlertState, HealthReport, HealthSource, HealthStatus, MetricId, ObsHub, SloSpec, SloStatus,
    SloTracker, SloTransition,
};
use serde::Serialize;
use std::sync::{Arc, Mutex};

/// SLO configuration for [`ServeTier::attach_slo`](crate::ServeTier::attach_slo).
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Ingest-to-estimate latency above this is an SLO-bad event
    /// (seconds).
    pub latency_threshold_s: f64,
    /// The latency SLO (budget + windows + burn thresholds).
    pub latency: SloSpec,
    /// The delivery SLO over backpressure/reject fractions.
    pub delivery: SloSpec,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_threshold_s: 0.05,
            latency: SloSpec::latency_default(),
            delivery: SloSpec::delivery_default(),
        }
    }
}

/// The tier's SLO engine: both trackers plus their exported gauges.
pub(crate) struct ServeSlo {
    pub hub: Arc<ObsHub>,
    pub config: SloConfig,
    pub latency: SloTracker,
    pub delivery: SloTracker,
    /// Cumulative backpressure already fed, so each tick feeds its delta.
    pub last_backpressure: u64,
    state_gauges: [MetricId; 2],
    fast_gauges: [MetricId; 2],
    slow_gauges: [MetricId; 2],
}

impl ServeSlo {
    pub fn new(hub: &Arc<ObsHub>, config: SloConfig, backpressure_base: u64) -> Self {
        let registry = hub.registry();
        let gauge = |name: &'static str, help: &'static str, slo: &'static str| {
            registry.gauge_with(name, help, &[("slo", slo)])
        };
        let per_slo = |name: &'static str, help: &'static str| {
            [gauge(name, help, "latency"), gauge(name, help, "delivery")]
        };
        ServeSlo {
            hub: Arc::clone(hub),
            latency: SloTracker::new(config.latency.clone()),
            delivery: SloTracker::new(config.delivery.clone()),
            config,
            last_backpressure: backpressure_base,
            state_gauges: per_slo(
                "pinnsoc_serve_slo_state",
                "Alert state (0=ok, 1=warning, 2=page)",
            ),
            fast_gauges: per_slo(
                "pinnsoc_serve_slo_fast_burn",
                "Fast-window burn rate (bad fraction / budget)",
            ),
            slow_gauges: per_slo(
                "pinnsoc_serve_slo_slow_burn",
                "Slow-window burn rate (bad fraction / budget)",
            ),
        }
    }

    /// Feeds one tick's events into both trackers, refreshes the gauges,
    /// and emits a ring event per alert transition.
    pub fn observe(&mut self, tick: u64, feeds: [(u64, u64); 2]) {
        let registry = self.hub.registry();
        let trackers = [&mut self.latency, &mut self.delivery];
        for (i, (tracker, (good, bad))) in trackers.into_iter().zip(feeds).enumerate() {
            let name = tracker.spec().name;
            if let Some(transition) = tracker.observe(tick, good, bad) {
                self.hub.emit(
                    "serve",
                    format!(
                        "slo {name}: {} -> {} at tick {tick} (fast burn {:.2}, slow burn {:.2})",
                        transition.from.as_str(),
                        transition.to.as_str(),
                        transition.fast_burn,
                        transition.slow_burn,
                    ),
                );
            }
            registry.set(self.state_gauges[i], tracker.state().severity());
            registry.set(self.fast_gauges[i], tracker.fast_burn());
            registry.set(self.slow_gauges[i], tracker.slow_burn());
        }
    }

    pub fn statuses(&self) -> Vec<SloStatus> {
        vec![self.latency.status(), self.delivery.status()]
    }
}

/// Serializable SLO summary for bench output (`BENCH_serve.json`'s `slo`
/// block): window configuration, worst observed burn, and every alert
/// transition.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    /// The latency-bad threshold the run used (seconds).
    pub latency_threshold_s: f64,
    /// Per-SLO summaries.
    pub slos: Vec<SloSummary>,
}

/// One SLO's end-of-run summary.
#[derive(Debug, Clone, Serialize)]
pub struct SloSummary {
    /// Spec (name, budget, windows, thresholds).
    pub spec: SloSpec,
    /// Final alert state.
    pub final_state: AlertState,
    /// Highest fast-window burn observed during the run.
    pub worst_fast_burn: f64,
    /// Every alert transition, in order.
    pub transitions: Vec<SloTransition>,
}

impl SloSummary {
    pub(crate) fn of(tracker: &SloTracker) -> Self {
        SloSummary {
            spec: tracker.spec().clone(),
            final_state: tracker.state(),
            worst_fast_burn: tracker.worst_fast_burn(),
            transitions: tracker.transitions().to_vec(),
        }
    }
}

/// One lane's state as the board last saw it.
#[derive(Debug, Clone, Serialize)]
pub struct LaneHealth {
    /// Lane index.
    pub engine: usize,
    /// Whether the lane's engine is serving.
    pub up: bool,
    /// Frames buffered in the lane's ring (a down lane keeps buffering).
    pub buffered: usize,
}

#[derive(Debug, Default)]
struct BoardInner {
    tick: u64,
    lanes: Vec<LaneHealth>,
    slos: Vec<SloStatus>,
}

/// Shared live-health scoreboard: written by the tier at tick boundaries
/// and on crash/recover, read by the HTTP plane's `/healthz`+`/readyz`.
#[derive(Debug)]
pub struct HealthBoard {
    inner: Mutex<BoardInner>,
}

/// The JSON document embedded as `/healthz` detail. Owned (the vendored
/// serde derive has no lifetime support) — built on the cold probe path.
#[derive(Debug, Serialize)]
struct HealthDetail {
    tick: u64,
    lanes_up: usize,
    lanes: Vec<LaneHealth>,
    slos: Vec<SloStatus>,
}

impl HealthBoard {
    /// A board with `engines` lanes, all initially up.
    pub fn new(engines: usize) -> Arc<Self> {
        Arc::new(HealthBoard {
            inner: Mutex::new(BoardInner {
                tick: 0,
                lanes: (0..engines)
                    .map(|engine| LaneHealth {
                        engine,
                        up: true,
                        buffered: 0,
                    })
                    .collect(),
                slos: Vec::new(),
            }),
        })
    }

    pub(crate) fn update(&self, tick: u64, lanes: Vec<LaneHealth>, slos: Vec<SloStatus>) {
        let mut inner = self.inner.lock().expect("health board poisoned");
        inner.tick = tick;
        inner.lanes = lanes;
        inner.slos = slos;
    }

    pub(crate) fn set_lane_up(&self, engine: usize, up: bool) {
        let mut inner = self.inner.lock().expect("health board poisoned");
        if let Some(lane) = inner.lanes.get_mut(engine) {
            lane.up = up;
        }
    }

    /// Lane states as of the last update.
    pub fn lanes(&self) -> Vec<LaneHealth> {
        self.inner
            .lock()
            .expect("health board poisoned")
            .lanes
            .clone()
    }
}

impl HealthSource for HealthBoard {
    fn health(&self) -> HealthReport {
        let inner = self.inner.lock().expect("health board poisoned");
        let lanes_up = inner.lanes.iter().filter(|l| l.up).count();
        let any_down = lanes_up < inner.lanes.len();
        let worst_slo = inner
            .slos
            .iter()
            .map(|s| s.state)
            .max()
            .unwrap_or(AlertState::Ok);
        let status = if lanes_up == 0 || worst_slo == AlertState::Page {
            HealthStatus::Page
        } else if any_down || worst_slo == AlertState::Warning {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        // A down-but-buffering lane degrades health; readiness holds as
        // long as anything serves and no SLO is paging.
        let ready = lanes_up > 0 && worst_slo != AlertState::Page;
        let detail = HealthDetail {
            tick: inner.tick,
            lanes_up,
            lanes: inner.lanes.clone(),
            slos: inner.slos.clone(),
        };
        let detail_json = serde_json::to_string(&detail).unwrap_or_else(|_| "{}".to_string());
        HealthReport {
            status,
            ready,
            detail_json,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_maps_lane_and_slo_state_to_health() {
        let board = HealthBoard::new(2);
        let report = board.health();
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.ready);

        // One lane down: degraded but still ready.
        board.set_lane_up(1, false);
        let report = board.health();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.ready, "buffering lane must not fail readiness");
        let detail: serde_json::Value =
            serde_json::from_str(&report.detail_json).expect("detail JSON");
        assert_eq!(detail["lanes_up"], 1u64);
        assert_eq!(detail["lanes"][1]["up"].as_bool(), Some(false));

        // All lanes down: page + not ready.
        board.set_lane_up(0, false);
        let report = board.health();
        assert_eq!(report.status, HealthStatus::Page);
        assert!(!report.ready);

        // Recovery restores Ok.
        board.set_lane_up(0, true);
        board.set_lane_up(1, true);
        assert_eq!(board.health().status, HealthStatus::Ok);
    }

    #[test]
    fn paging_slo_pages_even_with_all_lanes_up() {
        let board = HealthBoard::new(1);
        let mut tracker = SloTracker::new(SloSpec {
            name: "latency",
            budget: 0.05,
            fast_window: 1,
            slow_window: 2,
            warn_burn: 2.0,
            page_burn: 10.0,
        });
        tracker.observe(1, 0, 100);
        tracker.observe(2, 0, 100);
        assert_eq!(tracker.state(), AlertState::Page);
        board.update(
            2,
            vec![LaneHealth {
                engine: 0,
                up: true,
                buffered: 0,
            }],
            vec![tracker.status()],
        );
        let report = board.health();
        assert_eq!(report.status, HealthStatus::Page);
        assert!(!report.ready);
        let detail: serde_json::Value =
            serde_json::from_str(&report.detail_json).expect("detail JSON");
        assert_eq!(detail["slos"][0]["state"], "page");
    }

    #[test]
    fn warning_slo_degrades_without_paging() {
        let board = HealthBoard::new(1);
        let mut tracker = SloTracker::new(SloSpec::latency_default());
        board.update(
            1,
            vec![LaneHealth {
                engine: 0,
                up: true,
                buffered: 3,
            }],
            vec![{
                // Drive to warning: burn between warn (2) and page (10)
                // in both windows. 5% budget, 25% bad → burn 5.
                for tick in 0..100 {
                    tracker.observe(tick, 75, 25);
                }
                assert_eq!(tracker.state(), AlertState::Warning);
                tracker.status()
            }],
        );
        let report = board.health();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.ready);
    }
}
