//! Bounded lock-free ingest ring (Vyukov-style MPMC array queue).
//!
//! Telemetry producers — gateway threads, scenario fault channels, bench
//! traffic generators — enqueue with a single CAS and no locks; the tick
//! loop drains from the other end. The ring is *bounded* on purpose: when
//! an engine falls behind, producers get an immediate `Err` back (surfaced
//! as [`crate::IngestOutcome::Backpressure`]) instead of blocking the
//! gateway or silently dropping frames. Every refused frame is counted in
//! [`IngestRing::overflow_total`], so ingest accounting always reconciles:
//! `attempts == enqueued + overflow`.
//!
//! The algorithm is Dmitry Vyukov's bounded MPMC queue: each slot carries
//! a sequence number that encodes both its lap and its state. A producer
//! claims a slot by CAS-ing the enqueue cursor, writes the value, then
//! releases the slot to the consumer by bumping the sequence; a consumer
//! mirrors this from the dequeue cursor. Slots hand over with
//! acquire/release pairs on the sequence, so the value write in `push`
//! happens-before the value read in `pop`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One ring slot: the sequence encodes lap + occupancy, the value is only
/// alive between a producer's release and a consumer's acquire.
struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer ring buffer.
///
/// Producers call [`push`](Self::push) from any thread without locking;
/// the serve tier's tick loop is the (single, but not required to be)
/// consumer calling [`pop`](Self::pop). Capacity is rounded up to the
/// next power of two.
pub struct IngestRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next position a producer will claim.
    enqueue_pos: AtomicUsize,
    /// Next position a consumer will claim.
    dequeue_pos: AtomicUsize,
    /// Frames refused because the ring was full, since construction.
    overflow: AtomicU64,
}

// SAFETY: the queue hands each value from exactly one producer to exactly
// one consumer (slot ownership is transferred by the sequence protocol
// below), so sharing the ring across threads only requires the payload
// itself to be sendable.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for IngestRing<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for IngestRing<T> {}

impl<T> IngestRing<T> {
    /// Builds a ring holding at least `capacity` frames (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ingest ring needs at least one slot");
        let capacity = capacity.next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        IngestRing {
            slots,
            mask: capacity - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Usable slot count (the rounded-up power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Frames refused because the ring was full, since construction.
    pub fn overflow_total(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Approximate occupancy — exact when no producer or consumer is
    /// mid-operation.
    pub fn len(&self) -> usize {
        self.enqueue_pos
            .load(Ordering::Relaxed)
            .wrapping_sub(self.dequeue_pos.load(Ordering::Relaxed))
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without locking. `Err(value)` hands the frame back when
    /// the ring is full — the caller decides whether to retry, shed, or
    /// surface backpressure — and bumps [`Self::overflow_total`].
    #[allow(unsafe_code)]
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot is free on our lap: claim it by advancing the cursor.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of slot `pos & mask` for this lap: no
                        // other producer can claim position `pos` again,
                        // and consumers skip the slot until the Release
                        // store below publishes `pos + 1`.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot still holds last lap's value: the ring is full.
                self.overflow.fetch_add(1, Ordering::Relaxed);
                return Err(value);
            } else {
                // Another producer claimed this position; reload and retry.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest frame, or `None` when the ring is empty.
    #[allow(unsafe_code)]
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of the slot, whose value was fully
                        // written before the producer's Release store we
                        // Acquired above. Reading moves the value out;
                        // the sequence store below marks the slot free
                        // for the producers' next lap.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for IngestRing<T> {
    fn drop(&mut self) {
        // Drain so undelivered frames run their destructors.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for IngestRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("overflow", &self.overflow_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let ring = IngestRing::with_capacity(8);
        for i in 0..8u64 {
            ring.push(i).expect("fits");
        }
        for i in 0..8u64 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(IngestRing::<u8>::with_capacity(1).capacity(), 1);
        assert_eq!(IngestRing::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(IngestRing::<u8>::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn full_ring_refuses_and_counts_overflow() {
        let ring = IngestRing::with_capacity(4);
        for i in 0..4u64 {
            ring.push(i).expect("fits");
        }
        assert_eq!(ring.push(99), Err(99), "full ring hands the frame back");
        assert_eq!(ring.push(98), Err(98));
        assert_eq!(ring.overflow_total(), 2);
        // Draining one slot makes room for exactly one more.
        assert_eq!(ring.pop(), Some(0));
        ring.push(4).expect("slot freed");
        assert_eq!(ring.push(97), Err(97));
        assert_eq!(ring.overflow_total(), 3);
    }

    #[test]
    fn wraparound_many_laps() {
        let ring = IngestRing::with_capacity(4);
        let mut next_out = 0u64;
        for lap in 0..100u64 {
            for i in 0..3 {
                ring.push(lap * 3 + i).expect("never more than 3 in flight");
            }
            for _ in 0..3 {
                assert_eq!(ring.pop(), Some(next_out));
                next_out += 1;
            }
        }
        assert_eq!(ring.overflow_total(), 0);
    }

    /// Multi-producer stress: every pushed value is popped exactly once,
    /// and pushes + overflows account for every attempt.
    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 20_000;
        let ring = Arc::new(IngestRing::with_capacity(256));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                let mut enqueued = 0u64;
                for i in 0..PER_PRODUCER {
                    if ring.push(p * PER_PRODUCER + i).is_ok() {
                        enqueued += 1;
                    }
                }
                enqueued
            }));
        }
        let mut popped: Vec<u64> = Vec::new();
        // Consume concurrently until every producer has finished, then
        // drain the tail.
        let mut done = false;
        while !done || !ring.is_empty() {
            done = handles.iter().all(|h| h.is_finished());
            while let Some(v) = ring.pop() {
                popped.push(v);
            }
        }
        let enqueued: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .sum();
        assert_eq!(popped.len() as u64, enqueued, "every push is popped once");
        assert_eq!(
            enqueued + ring.overflow_total(),
            PRODUCERS * PER_PRODUCER,
            "attempts reconcile as enqueued + overflow"
        );
        // No duplicates, and per-producer order is preserved.
        let mut seen = std::collections::HashSet::new();
        let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
        for &v in &popped {
            assert!(seen.insert(v), "value {v} delivered twice");
            let p = (v / PER_PRODUCER) as usize;
            if let Some(prev) = last_per_producer[p] {
                assert!(prev < v, "producer {p} frames reordered");
            }
            last_per_producer[p] = Some(v);
        }
    }
}
