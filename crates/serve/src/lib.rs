//! # pinnsoc-serve
//!
//! Multi-engine deployment tier for the `pinnsoc` workspace: the layer
//! that turns one [`pinnsoc_fleet::FleetEngine`] into a *service* — N
//! independent engines behind a consistent-hash router, lock-free bounded
//! ingest, crash-isolated per-engine durability, and read-side snapshot
//! queries that never contend with the tick loop.
//!
//! The paper's estimator is a 2,322-parameter network built for
//! resource-constrained BMS hosts; the serving story that matters at
//! fleet scale is therefore *deployment shape*, not model size. This
//! crate composes the existing subsystems into that shape:
//!
//! - **Routing** ([`EngineRouter`]): rendezvous hashing partitions cell
//!   ids across engines with minimal reshuffling when the tier grows.
//!   Estimates depend only on a cell's own telemetry, so placement never
//!   changes the numbers.
//! - **Ingest** ([`IngestHandle`], [`IngestRing`]): producers enqueue
//!   telemetry onto the owning engine's bounded lock-free ring from any
//!   thread. A full ring surfaces [`IngestOutcome::Backpressure`]
//!   immediately — explicit, counted, never blocking, never silent —
//!   composing with the engine-side [`pinnsoc_fleet::AbsorbOutcome`]
//!   causes reported per tick.
//! - **The tick loop** ([`ServeTier::tick`]): drains each live ring
//!   (bounded), runs each engine's batch pass, and publishes one
//!   id-sorted [`ServeSnapshot`] for the whole tier.
//! - **Reads** ([`SnapshotReader`]): histograms, threshold scans, and
//!   per-cell breakdowns served from the published snapshot — readers
//!   pin an `Arc` and query off-lock, so a slow reader costs the tick
//!   loop nothing.
//! - **Durability** ([`DurabilitySpec`]): each engine wraps in its own
//!   [`pinnsoc_durable::DurableFleet`] subdirectory; one engine can
//!   [crash](ServeTier::crash_engine) and
//!   [recover](ServeTier::recover_engine) while its peers keep serving
//!   and its ring buffers the outage.
//!
//! Everything stays under the workspace's bit-exactness contract: tier
//! outputs (snapshot cells and aggregates) are bit-identical across
//! worker counts, per-engine shard counts, and engine counts, because
//! per-cell estimates are placement-independent and every tier-level
//! reduction folds in ascending id order.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_fleet::testing::untrained_model;
//! use pinnsoc_fleet::{CellConfig, Telemetry};
//! use pinnsoc_serve::{ServeConfig, ServeTier};
//!
//! let mut tier = ServeTier::new(untrained_model(), ServeConfig::default())?;
//! for id in 0..100 {
//!     tier.register(id, CellConfig { initial_soc: 0.9, capacity_ah: 3.0 });
//! }
//! let producer = tier.handle();
//! let reader = tier.reader();
//! let outcome = producer.ingest(7, Telemetry {
//!     time_s: 1.0, voltage_v: 3.8, current_a: 1.5, temperature_c: 25.0,
//! });
//! assert!(outcome.enqueued());
//! tier.tick()?;
//! assert!(reader.snapshot().breakdown(7).is_some());
//! # std::io::Result::Ok(())
//! ```
//!
//! Unsafe code is confined to the ingest ring's slot handoff
//! ([`ring`]) and denied everywhere else in the crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod ring;
pub mod router;
pub mod snapshot;
pub mod tier;

pub use health::{HealthBoard, LaneHealth, SloConfig, SloReport, SloSummary};
pub use ring::IngestRing;
pub use router::EngineRouter;
pub use snapshot::{ServeSnapshot, SnapshotReader};
pub use tier::{
    DurabilitySpec, IngestFrame, IngestHandle, IngestOutcome, ServeConfig, ServeTier, TickReport,
};
