//! The serve tier itself: N independent fleet engines behind a rendezvous
//! router, each fed by its own bounded ingest ring and drained by one
//! tick loop that publishes a read-side snapshot per tick.
//!
//! ## Dataflow
//!
//! ```text
//! producers ──IngestHandle::ingest──▶ ring[route(id)]          (lock-free)
//!                                        │
//! tick():  drain ≤ capacity frames ──▶ engine.ingest ──▶ process_pending
//!                                        │
//!          for_each_breakdown sweep ──▶ ServeSnapshot (id-sorted) ──▶ publish
//!                                        │
//! readers ──SnapshotReader::snapshot──▶ Arc clone, query off-lock
//! ```
//!
//! Backpressure is explicit end to end: a full ring returns
//! [`IngestOutcome::Backpressure`] to the producer immediately (nothing
//! blocks, nothing is silently dropped), and once frames are drained the
//! engines' own [`pinnsoc_fleet::AbsorbOutcome`] accounting — duplicates,
//! non-finite fields, time-reversed stamps, unknown cells — lands in the
//! per-tick [`TickReport::telemetry`] delta.

use crate::health::{HealthBoard, LaneHealth, ServeSlo, SloConfig, SloReport, SloSummary};
use crate::ring::IngestRing;
use crate::router::EngineRouter;
use crate::snapshot::{ServeSnapshot, SnapshotReader, SnapshotSlot};
use pinnsoc::SocModel;
use pinnsoc_durable::{record_recovery, recover, DurableConfig, DurableFleet, RecoveryReport};
use pinnsoc_fleet::{
    CellConfig, CellId, EstimateBreakdown, FleetConfig, FleetEngine, Telemetry, TelemetryStats,
};
use pinnsoc_obs::{FlightRecorder, MetricId, ObsHub, TraceSink};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Per-engine durability: each engine gets its own `engine-NNN`
/// subdirectory under `root`, WAL-logged and snapshotted independently,
/// so one engine's crash never touches its peers' state.
#[derive(Debug, Clone)]
pub struct DurabilitySpec {
    /// Root directory; lane `i` persists under `root/engine-00i`.
    pub root: PathBuf,
    /// Snapshot cadence per engine, in committed ticks (`0` disables the
    /// cadence).
    pub snapshot_every_ticks: u64,
}

/// Tier-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent [`FleetEngine`] instances cells are partitioned
    /// across.
    pub engines: usize,
    /// Ingest ring slots per engine (rounded up to a power of two). Also
    /// the per-lane drain bound per tick, so one tick's work is bounded
    /// even while producers keep pushing.
    pub ring_capacity: usize,
    /// Configuration applied to every engine.
    pub fleet: FleetConfig,
    /// When set, every engine is wrapped in a [`DurableFleet`].
    pub durability: Option<DurabilitySpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engines: 2,
            ring_capacity: 4096,
            fleet: FleetConfig::default(),
            durability: None,
        }
    }
}

/// One telemetry frame in flight between a producer and its engine.
#[derive(Debug, Clone, Copy)]
pub struct IngestFrame {
    /// Destination cell.
    pub id: CellId,
    /// The report itself.
    pub telemetry: Telemetry,
    /// When the producer enqueued it — the start of the
    /// ingest-to-estimate latency measured at snapshot publish.
    pub enqueued: Instant,
}

/// What happened to one [`IngestHandle::ingest`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Enqueued on the owning engine's ring; it will integrate at that
    /// engine's next drain.
    Enqueued {
        /// The engine the router picked.
        engine: usize,
    },
    /// The owning engine's ring is full — the frame was refused and
    /// counted, not dropped silently and not blocked on. The producer
    /// decides whether to retry after the next tick, shed load, or
    /// escalate.
    Backpressure {
        /// The engine whose ring refused the frame.
        engine: usize,
    },
}

impl IngestOutcome {
    /// Whether the frame made it onto a ring.
    pub fn enqueued(self) -> bool {
        matches!(self, IngestOutcome::Enqueued { .. })
    }

    /// The engine the router picked, regardless of outcome.
    pub fn engine(self) -> usize {
        match self {
            IngestOutcome::Enqueued { engine } | IngestOutcome::Backpressure { engine } => engine,
        }
    }
}

/// Cloneable, lock-free producer handle: route a report to its engine's
/// ring from any thread.
#[derive(Debug, Clone)]
pub struct IngestHandle {
    router: EngineRouter,
    rings: Vec<Arc<IngestRing<IngestFrame>>>,
}

impl IngestHandle {
    /// Enqueues one report on the owning engine's ring.
    pub fn ingest(&self, id: CellId, telemetry: Telemetry) -> IngestOutcome {
        let engine = self.router.route(id);
        let frame = IngestFrame {
            id,
            telemetry,
            enqueued: Instant::now(),
        };
        match self.rings[engine].push(frame) {
            Ok(()) => IngestOutcome::Enqueued { engine },
            Err(_) => IngestOutcome::Backpressure { engine },
        }
    }

    /// The router this handle shares with the tier.
    pub fn router(&self) -> &EngineRouter {
        &self.router
    }
}

/// What one [`ServeTier::tick`] did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// The tier tick just completed (1-based).
    pub tick: u64,
    /// Frames drained from the rings this tick.
    pub drained: usize,
    /// Reports the engines folded into cell state this tick.
    pub integrated: usize,
    /// Cells re-estimated by the batch passes this tick.
    pub estimated: usize,
    /// This tick's absorb accounting delta, summed over live engines:
    /// accepted, duplicate-timestamp, non-finite, time-reversed, and
    /// unknown-cell counts.
    pub telemetry: TelemetryStats,
    /// Cumulative frames refused ring-side since tier construction — the
    /// backpressure outcome, sitting alongside the engine-side causes in
    /// [`Self::telemetry`].
    pub backpressure_total: u64,
    /// Crashed lanes skipped this tick (their rings keep buffering).
    pub skipped_lanes: usize,
    /// Reporting cells in the snapshot just published.
    pub snapshot_cells: usize,
    /// Ingest-to-estimate latency per frame drained this tick: producer
    /// enqueue to snapshot publish, seconds.
    pub latencies_s: Vec<f64>,
}

/// Registered metric ids for the tier (see `pinnsoc-obs`).
struct ServeObs {
    hub: Arc<ObsHub>,
    ingest_total: MetricId,
    backpressure_total: MetricId,
    skipped_lane_ticks_total: MetricId,
    snapshot_cells: MetricId,
    latency_seconds: MetricId,
    last_backpressure: u64,
}

impl ServeObs {
    fn new(hub: &Arc<ObsHub>) -> Self {
        let registry = hub.registry();
        ServeObs {
            hub: Arc::clone(hub),
            ingest_total: registry.counter(
                "pinnsoc_serve_ingest_total",
                "Telemetry frames drained from ingest rings",
            ),
            backpressure_total: registry.counter(
                "pinnsoc_serve_backpressure_total",
                "Frames refused because an ingest ring was full",
            ),
            skipped_lane_ticks_total: registry.counter(
                "pinnsoc_serve_skipped_lane_ticks_total",
                "Lane-ticks skipped because the engine was down",
            ),
            snapshot_cells: registry.gauge(
                "pinnsoc_serve_snapshot_cells",
                "Reporting cells in the latest published snapshot",
            ),
            latency_seconds: registry.histogram(
                "pinnsoc_serve_ingest_latency_seconds",
                "Producer enqueue to snapshot publish, per frame",
                &[
                    10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1.0,
                ],
            ),
            last_backpressure: 0,
        }
    }

    fn record(&mut self, report: &TickReport) {
        let registry = self.hub.registry();
        registry.add(self.ingest_total, report.drained as u64);
        let backpressure_delta = report.backpressure_total - self.last_backpressure;
        self.last_backpressure = report.backpressure_total;
        registry.add(self.backpressure_total, backpressure_delta);
        registry.add(self.skipped_lane_ticks_total, report.skipped_lanes as u64);
        registry.set(self.snapshot_cells, report.snapshot_cells as f64);
        for &latency in &report.latencies_s {
            registry.observe(self.latency_seconds, latency);
        }
    }
}

/// The tier's flight-recorder attachment: its own sink for the root
/// `tick` span (pid 0), lane spans (one per engine, pid `i + 1`), and the
/// `publish` span, plus the recorder handle so
/// [`ServeTier::recover_engine`] can re-attach a recovered engine's
/// tracer.
struct TierTracer {
    recorder: Arc<FlightRecorder>,
    sink: TraceSink,
}

/// One engine's seat in the tier.
struct Lane {
    backend: Backend,
    ring: Arc<IngestRing<IngestFrame>>,
    /// The durability configuration this lane was created with — what
    /// [`ServeTier::recover_engine`] replays from.
    durable_config: Option<DurableConfig>,
}

enum Backend {
    Plain(Box<FleetEngine>),
    Durable(Box<DurableFleet>),
    /// Simulated (or real) process death: the engine is gone; its ring
    /// keeps accepting frames until full, then surfaces backpressure —
    /// graceful degradation instead of lost telemetry.
    Down,
}

impl Backend {
    fn engine(&self) -> Option<&FleetEngine> {
        match self {
            Backend::Plain(engine) => Some(engine),
            Backend::Durable(fleet) => Some(fleet.engine()),
            Backend::Down => None,
        }
    }
}

/// A multi-engine serving deployment: construction, control plane, and
/// the tick loop. See the [crate docs](crate) for the full contract.
pub struct ServeTier {
    lanes: Vec<Lane>,
    router: EngineRouter,
    slot: Arc<SnapshotSlot>,
    /// Reclaimed snapshot buffer (double-buffering: this and the one
    /// readers hold alternate in steady state).
    spare: Option<Vec<(CellId, EstimateBreakdown)>>,
    tick: u64,
    config: ServeConfig,
    obs: Option<ServeObs>,
    tracer: Option<TierTracer>,
    slo: Option<ServeSlo>,
    health: Option<Arc<HealthBoard>>,
    /// Scratch for enqueue timestamps drained this tick.
    drained_at: Vec<Instant>,
}

impl ServeTier {
    /// Builds the tier: `config.engines` engines, each serving a clone of
    /// `model`, each with its own ingest ring, and — when
    /// [`ServeConfig::durability`] is set — each inside its own
    /// [`DurableFleet`] subdirectory.
    ///
    /// # Errors
    ///
    /// Propagates durability-directory creation failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.engines` is zero.
    pub fn new(model: SocModel, config: ServeConfig) -> io::Result<Self> {
        let router = EngineRouter::new(config.engines);
        let mut lanes = Vec::with_capacity(config.engines);
        for idx in 0..config.engines {
            let engine = FleetEngine::new(model.clone(), config.fleet.clone());
            let (backend, durable_config) = match &config.durability {
                Some(spec) => {
                    let durable_config = DurableConfig {
                        snapshot_every_ticks: spec.snapshot_every_ticks,
                        ..DurableConfig::new(spec.root.join(format!("engine-{idx:03}")))
                    };
                    let fleet = DurableFleet::create(engine, durable_config.clone())?;
                    (Backend::Durable(Box::new(fleet)), Some(durable_config))
                }
                None => (Backend::Plain(Box::new(engine)), None),
            };
            lanes.push(Lane {
                backend,
                ring: Arc::new(IngestRing::with_capacity(config.ring_capacity)),
                durable_config,
            });
        }
        Ok(ServeTier {
            lanes,
            router,
            slot: SnapshotSlot::new(),
            spare: None,
            tick: 0,
            config,
            obs: None,
            tracer: None,
            slo: None,
            health: None,
            drained_at: Vec::new(),
        })
    }

    /// Attaches observability: tier-level ingest/backpressure/latency
    /// series plus each engine's own fleet series.
    pub fn attach_obs(&mut self, hub: &Arc<ObsHub>) {
        for lane in &mut self.lanes {
            match &mut lane.backend {
                Backend::Plain(engine) => engine.attach_obs(hub),
                Backend::Durable(fleet) => fleet.attach_obs(hub),
                Backend::Down => {}
            }
        }
        self.obs = Some(ServeObs::new(hub));
    }

    /// Attaches a flight recorder: each [tick](Self::tick) records a root
    /// `tick` span (trace process 0) with one `lane` span per live engine
    /// (process `i + 1`), the engines' own `engine_tick` → `pass` → stage
    /// trees nested inside their lane, and a `publish` span for the
    /// snapshot sweep. A lane recovered by [`Self::recover_engine`]
    /// re-attaches automatically.
    pub fn attach_tracer(&mut self, recorder: &Arc<FlightRecorder>) {
        for (idx, lane) in self.lanes.iter_mut().enumerate() {
            let pid = idx as u32 + 1;
            match &mut lane.backend {
                Backend::Plain(engine) => engine.attach_tracer(recorder, pid),
                Backend::Durable(fleet) => fleet.engine_mut().attach_tracer(recorder, pid),
                Backend::Down => {}
            }
        }
        self.tracer = Some(TierTracer {
            recorder: Arc::clone(recorder),
            sink: recorder.sink(),
        });
    }

    /// Whether a flight recorder is attached.
    pub fn tracer_attached(&self) -> bool {
        self.tracer.is_some()
    }

    /// Trace process names for
    /// [`FlightRecorder::drain_chrome_json`]: the tier plus one row per
    /// engine lane.
    pub fn trace_process_names(&self) -> Vec<(u32, String)> {
        let mut names = vec![(0, "serve-tier".to_string())];
        names.extend((0..self.lanes.len()).map(|i| (i as u32 + 1, format!("engine-{i:03}"))));
        names
    }

    /// Attaches the SLO engine: a latency tracker (ingest-to-estimate
    /// latency over [`SloConfig::latency_threshold_s`] is bad) and a
    /// delivery tracker (ring backpressure and non-finite/time-reversed
    /// rejects are bad), fed once per [tick](Self::tick). Alert state is
    /// exported as `pinnsoc_serve_slo_*` gauges, transitions land in the
    /// hub's ring log, and the [health board](Self::health_board) carries
    /// the current status into `/healthz` detail.
    pub fn attach_slo(&mut self, hub: &Arc<ObsHub>, config: SloConfig) {
        self.slo = Some(ServeSlo::new(hub, config, self.backpressure_total()));
    }

    /// End-of-run SLO summary for bench output (`None` until
    /// [`Self::attach_slo`]).
    pub fn slo_report(&self) -> Option<SloReport> {
        self.slo.as_ref().map(|slo| SloReport {
            latency_threshold_s: slo.config.latency_threshold_s,
            slos: vec![SloSummary::of(&slo.latency), SloSummary::of(&slo.delivery)],
        })
    }

    /// The tier's live-health scoreboard, created on first call — hand it
    /// to [`pinnsoc_obs::PlaneConfig`] as the [`HealthSource`] behind
    /// `/healthz` and `/readyz`. Updated at every tick boundary and
    /// immediately on [crash](Self::crash_engine) /
    /// [recover](Self::recover_engine); a down-but-buffering lane degrades
    /// health without failing readiness.
    ///
    /// [`HealthSource`]: pinnsoc_obs::HealthSource
    pub fn health_board(&mut self) -> Arc<HealthBoard> {
        if self.health.is_none() {
            let board = HealthBoard::new(self.lanes.len());
            for (idx, lane) in self.lanes.iter().enumerate() {
                if matches!(lane.backend, Backend::Down) {
                    board.set_lane_up(idx, false);
                }
            }
            self.health = Some(board);
        }
        Arc::clone(self.health.as_ref().expect("just created"))
    }

    /// A cloneable producer handle (safe to hand to other threads).
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            router: self.router,
            rings: self.lanes.iter().map(|l| Arc::clone(&l.ring)).collect(),
        }
    }

    /// A cloneable read handle over the published snapshots.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            slot: Arc::clone(&self.slot),
        }
    }

    /// The router (also embedded in every [`IngestHandle`]).
    pub fn router(&self) -> &EngineRouter {
        &self.router
    }

    /// Engine count (live or down).
    pub fn engines(&self) -> usize {
        self.lanes.len()
    }

    /// Ticks completed.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// The tier's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Whether lane `engine` is currently down.
    pub fn is_down(&self, engine: usize) -> bool {
        matches!(self.lanes[engine].backend, Backend::Down)
    }

    /// Cumulative ring-refused frames across all lanes.
    pub fn backpressure_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.ring.overflow_total()).sum()
    }

    /// Read access to one lane's engine (`None` while it is down) — the
    /// test seam for comparing snapshots against direct engine queries.
    pub fn engine(&self, engine: usize) -> Option<&FleetEngine> {
        self.lanes[engine].backend.engine()
    }

    /// Registers a cell on its owning engine (control plane — not the
    /// ingest hot path). Returns `false` if the cell already exists or
    /// its engine is down.
    pub fn register(&mut self, id: CellId, config: CellConfig) -> bool {
        match &mut self.lanes[self.router.route(id)].backend {
            Backend::Plain(engine) => engine.register(id, config),
            Backend::Durable(fleet) => fleet.register(id, config),
            Backend::Down => false,
        }
    }

    /// Deregisters a cell from its owning engine. Returns `false` if it
    /// was not registered or its engine is down.
    pub fn deregister(&mut self, id: CellId) -> bool {
        match &mut self.lanes[self.router.route(id)].backend {
            Backend::Plain(engine) => engine.deregister(id),
            Backend::Durable(fleet) => fleet.deregister(id),
            Backend::Down => false,
        }
    }

    /// Whether `id` is registered on a live engine.
    pub fn contains(&self, id: CellId) -> bool {
        self.lanes[self.router.route(id)]
            .backend
            .engine()
            .is_some_and(|e| e.contains(id))
    }

    fn cumulative_stats(&self) -> TelemetryStats {
        let mut total = TelemetryStats::default();
        for lane in &self.lanes {
            if let Some(engine) = lane.backend.engine() {
                let stats = engine.telemetry_stats();
                total.accepted += stats.accepted;
                total.duplicate_timestamp += stats.duplicate_timestamp;
                total.rejected_non_finite += stats.rejected_non_finite;
                total.rejected_time_reversed += stats.rejected_time_reversed;
                total.unknown_cell += stats.unknown_cell;
            }
        }
        total
    }

    /// One tier tick: drain every live lane's ring (bounded at ring
    /// capacity per lane), run each engine's batch pass, then build and
    /// publish the snapshot.
    ///
    /// Down lanes are skipped — their rings keep buffering until full,
    /// at which point producers see backpressure.
    ///
    /// # Errors
    ///
    /// Propagates WAL flush/commit failures from durable lanes.
    pub fn tick(&mut self) -> io::Result<TickReport> {
        self.tick += 1;
        let before = self.cumulative_stats();
        // One flag decides every trace cost this tick: with no recorder
        // (or a disabled one) the tick takes zero extra clock reads.
        let tracing = self.tracer.as_ref().is_some_and(|t| t.sink.is_on());
        let tick_start = tracing.then(Instant::now);
        // The root span id is minted up front so lane and engine spans —
        // recorded before the tick's duration is known — can parent under
        // it; the span itself is completed at the end of the tick.
        let tick_span = match self.tracer.as_mut() {
            Some(tracer) if tracing => tracer.sink.open(),
            _ => 0,
        };
        let mut drained_at = std::mem::take(&mut self.drained_at);
        drained_at.clear();
        let mut drained = 0usize;
        let mut integrated = 0usize;
        let mut estimated = 0usize;
        let mut skipped_lanes = 0usize;
        for (idx, lane) in self.lanes.iter_mut().enumerate() {
            // The drain bound: at most one ring's worth per lane per tick,
            // so concurrent producers can never pin the tick loop in the
            // drain.
            let bound = lane.ring.capacity();
            let lane_start = tracing.then(Instant::now);
            let lane_span = match self.tracer.as_mut() {
                Some(tracer) if tracing => tracer.sink.open(),
                _ => 0,
            };
            match &mut lane.backend {
                Backend::Down => skipped_lanes += 1,
                Backend::Plain(engine) => {
                    engine.set_trace_parent(lane_span);
                    for _ in 0..bound {
                        let Some(frame) = lane.ring.pop() else { break };
                        engine.ingest(frame.id, frame.telemetry);
                        drained_at.push(frame.enqueued);
                        drained += 1;
                    }
                    let (i, e) = engine.process_pending();
                    integrated += i;
                    estimated += e;
                }
                Backend::Durable(fleet) => {
                    fleet.engine_mut().set_trace_parent(lane_span);
                    for _ in 0..bound {
                        let Some(frame) = lane.ring.pop() else { break };
                        fleet.ingest(frame.id, frame.telemetry);
                        drained_at.push(frame.enqueued);
                        drained += 1;
                    }
                    let (i, e) = fleet.process_pending()?;
                    integrated += i;
                    estimated += e;
                }
            }
            if let (Some(tracer), Some(start)) = (self.tracer.as_mut(), lane_start) {
                tracer.sink.complete(
                    lane_span,
                    "lane",
                    "serve",
                    idx as u32 + 1,
                    0,
                    tick_span,
                    start,
                    Instant::now(),
                );
            }
        }

        // Snapshot sweep: every live engine's reporting cells, then one
        // id sort for the canonical order (see `snapshot` module docs).
        let publish_start = tracing.then(Instant::now);
        let mut cells = self
            .spare
            .take()
            .map(|mut v| {
                v.clear();
                v
            })
            .unwrap_or_default();
        let mut registered = 0usize;
        let mut live_engines = 0usize;
        for lane in &self.lanes {
            if let Some(engine) = lane.backend.engine() {
                live_engines += 1;
                registered += engine.len();
                engine.for_each_breakdown(|id, breakdown| cells.push((id, breakdown)));
            }
        }
        let snapshot = Arc::new(ServeSnapshot::build(
            self.tick,
            registered,
            live_engines,
            cells,
        ));
        let snapshot_cells = snapshot.cells.len();
        let previous = self.slot.publish(snapshot);
        if let Ok(previous) = Arc::try_unwrap(previous) {
            self.spare = Some(previous.cells);
        }

        let published = Instant::now();
        if let (Some(tracer), Some(start)) = (self.tracer.as_mut(), publish_start) {
            let _ = tracer
                .sink
                .record("publish", "serve", 0, 0, tick_span, start, published);
        }
        let latencies_s = drained_at
            .iter()
            .map(|enqueued| published.duration_since(*enqueued).as_secs_f64())
            .collect();
        self.drained_at = drained_at;

        let report = TickReport {
            tick: self.tick,
            drained,
            integrated,
            estimated,
            telemetry: self.cumulative_stats().delta(&before),
            backpressure_total: self.backpressure_total(),
            skipped_lanes,
            snapshot_cells,
            latencies_s,
        };
        if let Some(obs) = &mut self.obs {
            obs.record(&report);
        }
        if let Some(slo) = self.slo.as_mut() {
            let threshold = slo.config.latency_threshold_s;
            let bad_latency = report
                .latencies_s
                .iter()
                .filter(|&&latency| latency > threshold)
                .count() as u64;
            let good_latency = report.latencies_s.len() as u64 - bad_latency;
            let backpressure = report.backpressure_total - slo.last_backpressure;
            slo.last_backpressure = report.backpressure_total;
            let rejected =
                report.telemetry.rejected_non_finite + report.telemetry.rejected_time_reversed;
            let delivered = report.telemetry.accepted + report.telemetry.duplicate_timestamp;
            slo.observe(
                report.tick,
                [
                    (good_latency, bad_latency),
                    (delivered, backpressure + rejected),
                ],
            );
        }
        if let (Some(tracer), Some(start)) = (self.tracer.as_mut(), tick_start) {
            tracer
                .sink
                .complete(tick_span, "tick", "serve", 0, 0, 0, start, Instant::now());
            let recorder = Arc::clone(&tracer.recorder);
            recorder.merge(&mut tracer.sink);
        }
        if let Some(board) = &self.health {
            let lanes = self
                .lanes
                .iter()
                .enumerate()
                .map(|(idx, lane)| LaneHealth {
                    engine: idx,
                    up: !matches!(lane.backend, Backend::Down),
                    buffered: lane.ring.len(),
                })
                .collect();
            let slos = self
                .slo
                .as_ref()
                .map(ServeSlo::statuses)
                .unwrap_or_default();
            board.update(report.tick, lanes, slos);
        }
        Ok(report)
    }

    /// Simulates (or acknowledges) lane `engine` dying: the
    /// [`DurableFleet`] is dropped exactly as a process death would leave
    /// it — buffered WAL records lost, no shutdown flush — and the lane
    /// goes [down](Self::is_down). Returns the lane's durability
    /// directory so a crash harness can vandalize it (e.g.
    /// `pinnsoc_scenario`'s `tear_directory`).
    ///
    /// The lane's ring stays up and keeps buffering: telemetry arriving
    /// during the outage is preserved up to ring capacity, and overflow
    /// surfaces as backpressure at the producers.
    ///
    /// # Panics
    ///
    /// Panics if the lane is not durable or is already down.
    pub fn crash_engine(&mut self, engine: usize) -> PathBuf {
        let lane = &mut self.lanes[engine];
        let config = lane
            .durable_config
            .clone()
            .expect("crash_engine requires a durable tier");
        match std::mem::replace(&mut lane.backend, Backend::Down) {
            Backend::Durable(fleet) => drop(fleet),
            Backend::Plain(_) => panic!("lane {engine} is not durable"),
            Backend::Down => panic!("lane {engine} is already down"),
        }
        if let Some(board) = &self.health {
            board.set_lane_up(engine, false);
        }
        config.dir
    }

    /// Recovers a [crashed](Self::crash_engine) lane from its durability
    /// directory and brings it back into rotation; its ring's buffered
    /// frames drain on the next tick.
    ///
    /// # Errors
    ///
    /// Propagates recovery failures (the lane stays down).
    ///
    /// # Panics
    ///
    /// Panics if the lane is not down.
    pub fn recover_engine(&mut self, engine: usize) -> io::Result<RecoveryReport> {
        assert!(
            self.is_down(engine),
            "lane {engine} is live — nothing to recover"
        );
        let config = self.lanes[engine]
            .durable_config
            .clone()
            .expect("down lanes are always durable");
        let (mut fleet, report) = recover(config, self.config.fleet.workers)?;
        if let Some(obs) = &self.obs {
            fleet.attach_obs(&obs.hub);
            record_recovery(&obs.hub, &report);
        }
        if let Some(tracer) = &self.tracer {
            fleet
                .engine_mut()
                .attach_tracer(&tracer.recorder, engine as u32 + 1);
        }
        self.lanes[engine].backend = Backend::Durable(Box::new(fleet));
        if let Some(board) = &self.health {
            board.set_lane_up(engine, true);
        }
        Ok(report)
    }
}

impl std::fmt::Debug for ServeTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTier")
            .field("engines", &self.lanes.len())
            .field("tick", &self.tick)
            .field("backpressure_total", &self.backpressure_total())
            .finish()
    }
}
