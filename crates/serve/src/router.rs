//! Consistent cell-to-engine routing via rendezvous (highest-random-weight)
//! hashing.
//!
//! Each cell id is scored against every engine with a seeded mix hash; the
//! engine with the highest score owns the cell. Rendezvous hashing gives
//! the two properties the serve tier needs:
//!
//! - **A partition**: every id maps to exactly one engine, with no shared
//!   routing table to keep consistent — any handle holding the engine
//!   count routes identically.
//! - **Minimal disruption**: growing the tier from `n` to `n + 1` engines
//!   moves only the `1 / (n + 1)` of cells whose new engine wins the
//!   score, instead of reshuffling nearly everything the way `id % n`
//!   does.
//!
//! Note the distinction from intra-engine sharding: the router decides
//! *which engine* owns a cell; `pinnsoc_fleet`'s shard route decides which
//! shard inside that engine. Estimates depend only on a cell's own
//! telemetry stream, so placement never changes the numbers — snapshot
//! aggregates are built from an id-sorted sweep precisely so the tier's
//! outputs stay bit-identical across engine counts (see
//! [`crate::ServeSnapshot`]).

use pinnsoc_fleet::CellId;

/// `splitmix64` finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless rendezvous router over `engines` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineRouter {
    engines: usize,
}

impl EngineRouter {
    /// Builds a router over `engines` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is zero.
    pub fn new(engines: usize) -> Self {
        assert!(engines > 0, "router needs at least one engine");
        EngineRouter { engines }
    }

    /// Number of engines routed across.
    pub fn engines(&self) -> usize {
        self.engines
    }

    /// The engine owning `id`: the highest-scoring lane under the mix
    /// hash. Deterministic, allocation-free, and identical on every
    /// handle with the same engine count.
    pub fn route(&self, id: CellId) -> usize {
        let mut best = 0usize;
        let mut best_score = mix(id ^ mix(1));
        for engine in 1..self.engines {
            let score = mix(id ^ mix(engine as u64 + 1));
            if score > best_score {
                best = engine;
                best_score = score;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_a_partition_and_deterministic() {
        let router = EngineRouter::new(5);
        for id in 0..10_000u64 {
            let engine = router.route(id);
            assert!(engine < 5);
            assert_eq!(engine, router.route(id), "routing must be stable");
        }
    }

    #[test]
    fn load_spreads_across_engines() {
        let router = EngineRouter::new(4);
        let mut counts = [0usize; 4];
        for id in 0..40_000u64 {
            counts[router.route(id)] += 1;
        }
        for (engine, &count) in counts.iter().enumerate() {
            assert!(
                (7_000..=13_000).contains(&count),
                "engine {engine} got {count} of 40000 cells — hash is skewed"
            );
        }
    }

    /// The rendezvous property: adding an engine only relocates cells that
    /// move TO the new engine; every other assignment is untouched.
    #[test]
    fn growth_moves_only_cells_bound_for_the_new_engine() {
        let before = EngineRouter::new(4);
        let after = EngineRouter::new(5);
        let mut moved = 0usize;
        for id in 0..20_000u64 {
            let (old, new) = (before.route(id), after.route(id));
            if old != new {
                assert_eq!(new, 4, "cell {id} moved between old engines");
                moved += 1;
            }
        }
        // Expected share ≈ 1/5; allow wide slack for hash variance.
        assert!(
            (2_000..=6_000).contains(&moved),
            "moved {moved} of 20000 — not the ~1/5 rendezvous share"
        );
    }
}
