//! Read-side snapshots: immutable, id-sorted views of the whole tier,
//! published once per tick and queried without ever touching the engines.
//!
//! ## Consistency model
//!
//! - A snapshot is **tick-atomic**: it reflects every frame drained up to
//!   one tick boundary and nothing later. Readers never see a half-applied
//!   tick.
//! - Readers are **wait-free in practice**: [`SnapshotReader::snapshot`]
//!   holds the publish lock only long enough to clone an `Arc` (no
//!   allocation, no engine access); all query work — histograms,
//!   threshold scans, per-cell lookups — runs against the reader's own
//!   pinned snapshot. A reader iterating a snapshot for minutes costs the
//!   tick loop nothing but delayed buffer reuse.
//! - The tick loop **double-buffers**: publishing swaps an `Arc` pointer
//!   and hands the previous snapshot back; once the last reader drops it,
//!   its cell buffer is reclaimed for a future tick
//!   (`Arc::try_unwrap`), so steady-state serving re-uses two buffers
//!   instead of allocating per tick.
//! - Aggregates are computed from the **id-sorted** cell sweep, giving
//!   every float reduction one canonical summation order. That is what
//!   makes tier outputs bit-identical across engine counts, per-engine
//!   shard counts, and worker counts: placement changes where a cell
//!   lives, never where it lands in the sorted sweep.

use pinnsoc_fleet::{CellId, EstimateBreakdown, FleetStats};
use std::sync::{Arc, RwLock};

/// An immutable view of every reporting cell in the tier at one tick
/// boundary, sorted by cell id.
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// The tier tick this snapshot was published at (0 = the empty
    /// pre-first-tick snapshot).
    pub tick: u64,
    /// Registered cells across all live engines (reporting or not).
    pub registered: usize,
    /// Engines that contributed (crashed lanes are excluded until
    /// recovered).
    pub live_engines: usize,
    /// `(id, breakdown)` for every reporting cell, ascending by id.
    pub cells: Vec<(CellId, EstimateBreakdown)>,
    stats: FleetStats,
}

impl ServeSnapshot {
    /// The empty snapshot readers see before the first tick.
    pub fn empty() -> Self {
        ServeSnapshot {
            tick: 0,
            registered: 0,
            live_engines: 0,
            cells: Vec::new(),
            stats: FleetStats {
                cells: 0,
                reporting: 0,
                mean_soc: 0.0,
                min_soc: 0.0,
                max_soc: 0.0,
            },
        }
    }

    /// Builds a snapshot from an unsorted cell sweep: sorts by id and
    /// folds the aggregates in that canonical order.
    pub(crate) fn build(
        tick: u64,
        registered: usize,
        live_engines: usize,
        mut cells: Vec<(CellId, EstimateBreakdown)>,
    ) -> Self {
        cells.sort_unstable_by_key(|(id, _)| *id);
        let mut stats = FleetStats {
            cells: registered,
            reporting: 0,
            mean_soc: 0.0,
            min_soc: f64::MAX,
            max_soc: f64::MIN,
        };
        for (_, breakdown) in &cells {
            let soc = breakdown.best.0;
            stats.reporting += 1;
            stats.mean_soc += soc;
            stats.min_soc = stats.min_soc.min(soc);
            stats.max_soc = stats.max_soc.max(soc);
        }
        if stats.reporting == 0 {
            stats.min_soc = 0.0;
            stats.max_soc = 0.0;
        } else {
            stats.mean_soc /= stats.reporting as f64;
        }
        ServeSnapshot {
            tick,
            registered,
            live_engines,
            cells,
            stats,
        }
    }

    /// Fleet-level summary over the snapshot's reporting cells, folded in
    /// id order (bit-stable across tier topology).
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// One cell's full per-estimator breakdown, by binary search.
    pub fn breakdown(&self, id: CellId) -> Option<&EstimateBreakdown> {
        self.cells
            .binary_search_by_key(&id, |(id, _)| *id)
            .ok()
            .map(|idx| &self.cells[idx].1)
    }

    /// Histogram of best-estimate SoC: `bins` equal buckets over `[0, 1]`,
    /// last bucket closed — the same binning as
    /// [`pinnsoc_fleet::FleetEngine::soc_histogram`], summed over the
    /// whole tier.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn soc_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        let mut histogram = vec![0usize; bins];
        for (_, breakdown) in &self.cells {
            let bin = ((breakdown.best.0 * bins as f64) as usize).min(bins - 1);
            histogram[bin] += 1;
        }
        histogram
    }

    /// Ids of reporting cells whose best estimate is below `threshold`,
    /// ascending (already sorted — the sweep is in id order).
    pub fn cells_below(&self, threshold: f64) -> Vec<CellId> {
        self.cells
            .iter()
            .filter(|(_, b)| b.best.0 < threshold)
            .map(|(id, _)| *id)
            .collect()
    }
}

/// The publish point: a single `Arc` swap per tick.
#[derive(Debug)]
pub(crate) struct SnapshotSlot {
    current: RwLock<Arc<ServeSnapshot>>,
}

impl SnapshotSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(SnapshotSlot {
            current: RwLock::new(Arc::new(ServeSnapshot::empty())),
        })
    }

    /// Swaps in `next` and returns the displaced snapshot so the tick
    /// loop can reclaim its buffer once readers let go.
    pub(crate) fn publish(&self, next: Arc<ServeSnapshot>) -> Arc<ServeSnapshot> {
        let mut guard = self.current.write().expect("snapshot lock poisoned");
        std::mem::replace(&mut *guard, next)
    }

    pub(crate) fn load(&self) -> Arc<ServeSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }
}

/// A cloneable read handle: pin the current snapshot with
/// [`snapshot`](Self::snapshot), then query it for as long as needed
/// without affecting the tick loop.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    pub(crate) slot: Arc<SnapshotSlot>,
}

impl SnapshotReader {
    /// The most recently published snapshot.
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.slot.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinnsoc_fleet::SocEstimate;

    fn cell(id: CellId, soc: f64) -> (CellId, EstimateBreakdown) {
        (
            id,
            EstimateBreakdown {
                best: (soc, SocEstimate::Coulomb),
                network: None,
                network_fresh: false,
                coulomb: soc,
                ekf: None,
                ekf_soc_std: None,
            },
        )
    }

    #[test]
    fn build_sorts_and_aggregates_in_id_order() {
        let snap = ServeSnapshot::build(3, 5, 2, vec![cell(9, 0.2), cell(1, 0.8), cell(4, 0.5)]);
        let ids: Vec<u64> = snap.cells.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 4, 9]);
        let stats = snap.stats();
        assert_eq!(stats.cells, 5);
        assert_eq!(stats.reporting, 3);
        assert_eq!(stats.min_soc, 0.2);
        assert_eq!(stats.max_soc, 0.8);
        // Canonical order: id order is 1, 4, 9 → 0.8 then 0.5 then 0.2.
        let expected: f64 = (0.8 + 0.5 + 0.2) / 3.0;
        assert_eq!(stats.mean_soc.to_bits(), expected.to_bits());
        assert_eq!(snap.breakdown(4).expect("present").best.0, 0.5);
        assert!(snap.breakdown(2).is_none());
        assert_eq!(snap.cells_below(0.6), vec![4, 9]);
        // 0.2 → bin 0; 0.5 and 0.8 → bin 1 (half-open buckets).
        assert_eq!(snap.soc_histogram(2), vec![1, 2]);
    }

    #[test]
    fn empty_snapshot_is_well_formed() {
        let snap = ServeSnapshot::empty();
        assert_eq!(snap.stats().reporting, 0);
        assert_eq!(snap.stats().mean_soc, 0.0);
        assert!(snap.cells_below(1.0).is_empty());
        assert_eq!(snap.soc_histogram(4), vec![0; 4]);
    }

    #[test]
    fn publish_swaps_and_returns_previous() {
        let slot = SnapshotSlot::new();
        let reader = SnapshotReader {
            slot: Arc::clone(&slot),
        };
        let pinned = reader.snapshot();
        assert_eq!(pinned.tick, 0);
        let prev = slot.publish(Arc::new(ServeSnapshot::build(1, 0, 1, Vec::new())));
        assert_eq!(prev.tick, 0);
        // The pinned snapshot stays valid after the swap...
        assert_eq!(pinned.tick, 0);
        // ...and new reads see the fresh one.
        assert_eq!(reader.snapshot().tick, 1);
    }
}
