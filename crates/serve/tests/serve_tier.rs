//! Serve-tier integration: topology-invariant outputs, explicit
//! backpressure accounting, snapshot/engine query equivalence, and
//! readers that never perturb the tick loop.

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_serve::{IngestOutcome, ServeConfig, ServeTier};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const CELLS: u64 = 60;
const TICKS: u64 = 9;

fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.5 + 0.01 * ((id % 7) as f64) + 0.001 * (tick as f64),
        current_a: 0.8 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn tier(engines: usize, shards: usize, workers: usize) -> ServeTier {
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines,
            ring_capacity: 2 * CELLS as usize,
            fleet: FleetConfig {
                shards,
                micro_batch: 8,
                workers,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
            durability: None,
        },
    )
    .expect("plain tier never does IO");
    for id in 0..CELLS {
        assert!(tier.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        ));
    }
    tier
}

fn run_traffic(tier: &mut ServeTier) {
    let handle = tier.handle();
    for tick in 1..=TICKS {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        let report = tier.tick().expect("plain tick");
        assert_eq!(report.drained, CELLS as usize);
        assert_eq!(report.telemetry.accepted, CELLS);
        assert_eq!(report.telemetry.rejected(), 0);
    }
}

/// Every per-cell field of the final snapshot, bit-exact.
fn snapshot_bits(tier: &ServeTier) -> Vec<(u64, u64, Option<u64>, bool, u64)> {
    let snapshot = tier.reader().snapshot();
    assert_eq!(snapshot.cells.len() as u64, CELLS);
    snapshot
        .cells
        .iter()
        .map(|(id, b)| {
            (
                *id,
                b.best.0.to_bits(),
                b.network.map(f64::to_bits),
                b.network_fresh,
                b.coulomb.to_bits(),
            )
        })
        .collect()
}

/// The tentpole contract: identical traffic through different engine
/// counts, per-engine shard counts, and worker counts lands on
/// bit-identical snapshots — placement and parallelism never change the
/// numbers or the aggregates.
#[test]
fn snapshots_bit_identical_across_topologies() {
    let mut reference = tier(1, 2, 0);
    run_traffic(&mut reference);
    let expected = snapshot_bits(&reference);
    let expected_stats = reference.reader().snapshot().stats();
    let expected_histogram = reference.reader().snapshot().soc_histogram(16);

    for (engines, shards, workers) in [(2, 3, 0), (3, 4, 2), (4, 7, 1)] {
        let mut other = tier(engines, shards, workers);
        run_traffic(&mut other);
        assert_eq!(
            snapshot_bits(&other),
            expected,
            "{engines} engines / {shards} shards / {workers} workers diverged"
        );
        let stats = other.reader().snapshot().stats();
        assert_eq!(stats.mean_soc.to_bits(), expected_stats.mean_soc.to_bits());
        assert_eq!(stats.min_soc.to_bits(), expected_stats.min_soc.to_bits());
        assert_eq!(stats.max_soc.to_bits(), expected_stats.max_soc.to_bits());
        assert_eq!(stats.reporting, expected_stats.reporting);
        assert_eq!(
            other.reader().snapshot().soc_histogram(16),
            expected_histogram
        );
    }
}

/// Snapshot queries agree with querying a lone engine directly.
#[test]
fn snapshot_queries_match_direct_engine_queries() {
    let mut tier = tier(1, 3, 0);
    run_traffic(&mut tier);

    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 3,
            micro_batch: 8,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..CELLS {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    for tick in 1..=TICKS {
        for id in 0..CELLS {
            engine.ingest(id, feed(tick, id));
        }
        engine.process_pending();
    }

    let snapshot = tier.reader().snapshot();
    assert_eq!(snapshot.soc_histogram(10), engine.soc_histogram(10));
    let threshold = snapshot.stats().mean_soc;
    assert_eq!(
        snapshot.cells_below(threshold),
        engine.cells_below(threshold)
    );
    for id in 0..CELLS {
        let served = snapshot.breakdown(id).expect("reporting cell");
        let direct = engine.estimate_breakdown(id).expect("reporting cell");
        assert_eq!(served.best.0.to_bits(), direct.best.0.to_bits());
        assert_eq!(served.best.1, direct.best.1);
        assert_eq!(served.coulomb.to_bits(), direct.coulomb.to_bits());
    }
    let stats = snapshot.stats();
    let direct = engine.stats();
    assert_eq!(stats.cells, direct.cells);
    assert_eq!(stats.reporting, direct.reporting);
    assert_eq!(stats.min_soc.to_bits(), direct.min_soc.to_bits());
    assert_eq!(stats.max_soc.to_bits(), direct.max_soc.to_bits());
}

/// A full ring refuses frames with an explicit outcome and exact
/// accounting; it never blocks and never drops silently.
#[test]
fn full_ring_surfaces_backpressure_with_exact_accounting() {
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: 1,
            ring_capacity: 4,
            fleet: FleetConfig {
                shards: 1,
                micro_batch: 8,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
            durability: None,
        },
    )
    .expect("plain tier");
    tier.register(
        0,
        CellConfig {
            initial_soc: 0.9,
            capacity_ah: 3.0,
        },
    );
    let handle = tier.handle();

    let mut enqueued = 0u64;
    let mut refused = 0u64;
    for attempt in 0..10u64 {
        match handle.ingest(0, feed(attempt + 1, 0)) {
            IngestOutcome::Enqueued { engine } => {
                assert_eq!(engine, 0);
                enqueued += 1;
            }
            IngestOutcome::Backpressure { engine } => {
                assert_eq!(engine, 0);
                refused += 1;
            }
        }
    }
    assert_eq!(enqueued, 4, "ring holds exactly its capacity");
    assert_eq!(refused, 6);
    assert_eq!(tier.backpressure_total(), 6, "every refusal is counted");

    let report = tier.tick().expect("tick");
    assert_eq!(report.drained, 4);
    assert_eq!(report.backpressure_total, 6);
    // The drain made room: producers recover without interventions.
    assert!(handle.ingest(0, feed(20, 0)).enqueued());
}

/// Engine-side absorb causes surface per tick, alongside (not mixed into)
/// the ring-side backpressure outcome.
#[test]
fn tick_report_carries_absorb_outcome_causes() {
    let mut tier = tier(2, 2, 0);
    let handle = tier.handle();
    for id in 0..CELLS {
        handle.ingest(id, feed(1, id));
    }
    tier.tick().expect("warm-up tick");

    // One non-finite report, one time-reversed report, one duplicate
    // timestamp, one unknown cell, and one clean report.
    handle.ingest(
        0,
        Telemetry {
            voltage_v: f64::NAN,
            ..feed(2, 0)
        },
    );
    handle.ingest(1, feed(0, 1)); // time 0 < time 10 already accepted
    handle.ingest(2, feed(1, 2)); // same timestamp as the accepted tick-1 report
    handle.ingest(CELLS + 5, feed(2, CELLS + 5)); // never registered
    handle.ingest(3, feed(2, 3));
    let report = tier.tick().expect("tick");
    assert_eq!(report.drained, 5, "all five frames reached the engines");
    assert_eq!(report.telemetry.rejected_non_finite, 1);
    assert_eq!(report.telemetry.rejected_time_reversed, 1);
    assert_eq!(report.telemetry.duplicate_timestamp, 1);
    assert_eq!(report.telemetry.unknown_cell, 1);
    assert_eq!(report.telemetry.accepted, 2, "clean + duplicate overwrite");
    assert_eq!(report.backpressure_total, 0);
}

/// Readers hammering snapshots from other threads never panic, always
/// see monotonic ticks, and never corrupt what the tick loop publishes.
#[test]
fn concurrent_readers_see_monotonic_consistent_snapshots() {
    let mut tier = tier(2, 2, 0);
    let handle = tier.handle();
    let reader = tier.reader();
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..4 {
        let reader = reader.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut last_tick = 0u64;
            let mut queries = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snapshot = reader.snapshot();
                assert!(
                    snapshot.tick >= last_tick,
                    "snapshot ticks went backwards: {} after {last_tick}",
                    snapshot.tick
                );
                last_tick = snapshot.tick;
                // Queries run on the pinned Arc — fully off-lock.
                let histogram = snapshot.soc_histogram(8);
                assert_eq!(histogram.iter().sum::<usize>(), snapshot.cells.len());
                assert!(snapshot.cells_below(0.0).is_empty());
                queries += 1;
            }
            queries
        }));
    }

    for tick in 1..=40 {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        let report = tier.tick().expect("tick under readers");
        assert_eq!(report.drained, CELLS as usize);
    }
    stop.store(true, Ordering::Relaxed);
    for thread in readers {
        let queries = thread.join().expect("reader thread");
        assert!(queries > 0, "reader never got a snapshot");
    }
    assert_eq!(tier.reader().snapshot().tick, 40);
}

/// Control-plane routing: register/deregister land on the owning engine
/// and the tier-wide `contains` agrees.
#[test]
fn register_deregister_route_consistently() {
    let mut tier = tier(3, 2, 0);
    assert!(tier.contains(7));
    assert!(!tier.register(
        7,
        CellConfig {
            initial_soc: 0.5,
            capacity_ah: 1.0,
        }
    ));
    assert!(tier.deregister(7));
    assert!(!tier.contains(7));
    assert!(!tier.deregister(7));
    // Exactly one engine owns each id.
    for id in 0..CELLS {
        let owners = (0..tier.engines())
            .filter(|&e| tier.engine(e).expect("live").contains(id))
            .count();
        assert_eq!(owners, usize::from(id != 7), "cell {id} owner count");
    }
}
