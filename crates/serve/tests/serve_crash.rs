//! End-to-end serve-tier crash recovery: one engine's [`DurableFleet`]
//! dies mid-run under router traffic, its directory is vandalized the
//! way `pinnsoc_scenario`'s crash harness does, and after recovery the
//! tier must finish bit-identical to an uninterrupted control — at a
//! *different* engine/shard/worker topology, so the test pins crash
//! safety and topology invariance in one comparison.
//!
//! [`DurableFleet`]: pinnsoc_durable::DurableFleet

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, Telemetry};
use pinnsoc_scenario::{tear_directory, CrashPoint};
use pinnsoc_serve::{DurabilitySpec, ServeConfig, ServeTier};
use std::path::PathBuf;

const CELLS: u64 = 48;
const TICKS: u64 = 12;
const KILL_TICK: u64 = 6;
const CRASHED_ENGINE: usize = 1;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pinnsoc-serve-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.5 + 0.01 * ((id % 7) as f64) + 0.001 * (tick as f64),
        current_a: 0.8 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn fleet_config(shards: usize, workers: usize) -> FleetConfig {
    FleetConfig {
        shards,
        micro_batch: 8,
        workers,
        ekf_fallback: None,
        ..FleetConfig::default()
    }
}

fn register_all(tier: &mut ServeTier) {
    for id in 0..CELLS {
        assert!(tier.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        ));
    }
}

/// An uninterrupted plain tier at a different topology, fed the same
/// traffic tick-for-tick.
fn control_bits() -> Vec<(u64, u64)> {
    let mut control = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: 2,
            ring_capacity: 2 * CELLS as usize,
            fleet: fleet_config(3, 2),
            durability: None,
        },
    )
    .expect("plain tier");
    register_all(&mut control);
    let handle = control.handle();
    for tick in 1..=TICKS {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        control.tick().expect("control tick");
    }
    let snapshot = control.reader().snapshot();
    assert_eq!(snapshot.cells.len() as u64, CELLS);
    snapshot
        .cells
        .iter()
        .map(|(id, b)| (*id, b.best.0.to_bits()))
        .collect()
}

fn crash_recover_run(point: CrashPoint, tag: &str) {
    let root = tmpdir(tag);
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: 3,
            ring_capacity: 2 * CELLS as usize,
            fleet: fleet_config(2, 0),
            durability: Some(DurabilitySpec {
                root: root.clone(),
                snapshot_every_ticks: 3,
            }),
        },
    )
    .expect("durable tier");
    register_all(&mut tier);
    let handle = tier.handle();

    for tick in 1..=KILL_TICK {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        tier.tick().expect("pre-crash tick");
    }

    // The next tick's traffic is already in flight on the rings when the
    // engine dies: the outage must not lose it.
    for id in 0..CELLS {
        assert!(handle.ingest(id, feed(KILL_TICK + 1, id)).enqueued());
    }
    let dir = tier.crash_engine(CRASHED_ENGINE);
    assert!(tier.is_down(CRASHED_ENGINE));

    // The survivors keep serving the degraded tier.
    let report = tier.tick().expect("degraded tick");
    assert_eq!(report.skipped_lanes, 1);
    assert!(report.drained < CELLS as usize, "dead lane kept its frames");
    let degraded = tier.reader().snapshot();
    assert_eq!(degraded.live_engines, 2);
    assert!(
        (degraded.cells.len() as u64) < CELLS,
        "dead engine's cells drop out of the degraded snapshot"
    );

    // Vandalize the directory exactly the way the scenario crash harness
    // models process death at this crash point, then recover.
    tear_directory(&dir, 0xC4A5_0FDE ^ KILL_TICK, point).expect("tear");
    let recovery = tier.recover_engine(CRASHED_ENGINE).expect("recover");
    assert_eq!(
        recovery.tick, KILL_TICK,
        "recovery lands on the last commit"
    );
    assert!(!tier.is_down(CRASHED_ENGINE));

    // The buffered outage traffic drains on the first post-recovery tick.
    let report = tier.tick().expect("catch-up tick");
    assert_eq!(report.skipped_lanes, 0);
    assert!(
        report.drained > 0,
        "ring-buffered frames survive the outage"
    );
    assert_eq!(
        tier.reader().snapshot().cells.len() as u64,
        CELLS,
        "every cell reports again after recovery"
    );

    for tick in KILL_TICK + 2..=TICKS {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        tier.tick().expect("post-recovery tick");
    }

    let snapshot = tier.reader().snapshot();
    let crashed_bits: Vec<(u64, u64)> = snapshot
        .cells
        .iter()
        .map(|(id, b)| (*id, b.best.0.to_bits()))
        .collect();
    assert_eq!(
        crashed_bits,
        control_bits(),
        "{point:?}: crash + recovery moved a bit vs the uninterrupted control"
    );
    drop(tier);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn engine_crash_mid_tick_recovers_bit_identical() {
    crash_recover_run(CrashPoint::MidTick, "midtick");
}

#[test]
fn engine_crash_mid_snapshot_recovers_bit_identical() {
    crash_recover_run(CrashPoint::MidSnapshot, "midsnapshot");
}

#[test]
fn engine_crash_mid_rotation_recovers_bit_identical() {
    crash_recover_run(CrashPoint::MidRotation, "midrotation");
}

/// During an outage the dead lane's ring fills and surfaces backpressure;
/// accounting reconciles exactly and enqueued frames all land after
/// recovery.
#[test]
fn outage_overflow_is_explicit_and_enqueued_frames_all_land() {
    let root = tmpdir("overflow");
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: 2,
            ring_capacity: 8,
            fleet: fleet_config(1, 0),
            durability: Some(DurabilitySpec {
                root: root.clone(),
                snapshot_every_ticks: 0,
            }),
        },
    )
    .expect("durable tier");
    // One cell pinned to each engine so the dead lane is addressable.
    let router = *tier.router();
    let on_dead = (0..).find(|&id| router.route(id) == 0).expect("routable");
    register_all(&mut tier);
    tier.register(
        on_dead + CELLS,
        CellConfig {
            initial_soc: 0.9,
            capacity_ah: 3.0,
        },
    );

    let handle = tier.handle();
    handle.ingest(on_dead, feed(1, on_dead));
    tier.tick().expect("tick");
    let dir = tier.crash_engine(0);
    let mut enqueued = 0u64;
    let mut refused = 0u64;
    for attempt in 0..20u64 {
        if handle
            .ingest(on_dead, feed(attempt + 2, on_dead))
            .enqueued()
        {
            enqueued += 1;
        } else {
            refused += 1;
        }
    }
    assert_eq!(enqueued, 8, "ring buffers exactly its capacity");
    assert_eq!(refused, 12);
    assert_eq!(tier.backpressure_total(), 12);

    tear_directory(&dir, 7, CrashPoint::MidTick).expect("tear");
    tier.recover_engine(0).expect("recover");
    let report = tier.tick().expect("catch-up");
    assert_eq!(report.drained, 8, "every enqueued frame lands");
    assert_eq!(report.telemetry.accepted, 8);
    drop(tier);
    std::fs::remove_dir_all(&root).expect("cleanup");
}
