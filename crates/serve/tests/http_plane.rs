//! End-to-end acceptance for the HTTP telemetry plane over a *live*
//! serve tier on a real TCP socket (ephemeral port):
//!
//! - `/metrics` serves parseable Prometheus text with the
//!   `pinnsoc_serve_*` series;
//! - `/healthz` flips to `degraded` while an engine is crashed and
//!   returns to `ok` after recovery — without ever dropping readiness,
//!   because the dead lane keeps buffering;
//! - `/trace.json` carries at least one complete
//!   tick → lane → engine_tick → pass → stage span tree per engine;
//! - a scraper polling `/metrics` + `/snapshot.json` concurrently with
//!   live ticks never blocks the tick loop and never observes a torn
//!   histogram (`ObsHub::snapshot`'s contention contract).

use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, Telemetry};
use pinnsoc_obs::{
    http_get, FlightRecorder, HealthSource, ObsHub, PlaneConfig, SampleValue, TelemetryPlane,
};
use pinnsoc_scenario::{tear_directory, CrashPoint};
use pinnsoc_serve::{DurabilitySpec, ServeConfig, ServeTier, SloConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const CELLS: u64 = 32;
const ENGINES: usize = 2;
const CRASHED_ENGINE: usize = 1;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pinnsoc-http-plane-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.5 + 0.01 * ((id % 7) as f64) + 0.001 * (tick as f64),
        current_a: 0.8 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn build_tier(durable_root: Option<PathBuf>) -> ServeTier {
    let mut tier = ServeTier::new(
        untrained_model(),
        ServeConfig {
            engines: ENGINES,
            ring_capacity: 4 * CELLS as usize,
            fleet: FleetConfig {
                shards: 2,
                micro_batch: 8,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
            durability: durable_root.map(|root| DurabilitySpec {
                root,
                snapshot_every_ticks: 2,
            }),
        },
    )
    .expect("tier");
    for id in 0..CELLS {
        assert!(tier.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        ));
    }
    tier
}

fn drive_tick(tier: &mut ServeTier, tick: u64) {
    let handle = tier.handle();
    for id in 0..CELLS {
        handle.ingest(id, feed(tick, id));
    }
    tier.tick().expect("tick");
}

/// Parses Prometheus text exposition: every non-comment, non-blank line
/// must be `name{labels} value` with a parseable float. Returns the
/// sample names.
fn parse_prometheus(body: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
        let name = series.split('{').next().expect("series name");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        names.push(name.to_string());
    }
    names
}

fn health_status(addr: std::net::SocketAddr) -> (u16, String, bool) {
    let (code, body) = http_get(addr, "/healthz").expect("GET /healthz");
    let v: serde_json::Value = serde_json::from_str(&body).expect("health JSON");
    let status = v["status"].as_str().expect("status").to_string();
    let ready = v["ready"].as_bool().expect("ready");
    (code, status, ready)
}

#[test]
fn plane_serves_live_tier_through_crash_and_recovery() {
    let root = tmpdir("crash");
    let mut tier = build_tier(Some(root.clone()));
    let hub = ObsHub::new();
    let recorder = FlightRecorder::with_default_capacity();
    tier.attach_obs(&hub);
    tier.attach_tracer(&recorder);
    // A latency threshold no local tick can cross keeps the SLO section
    // of this test deterministic; the alerting cycle itself is pinned by
    // `serve_baseline` and the unit tests.
    tier.attach_slo(
        &hub,
        SloConfig {
            latency_threshold_s: 10.0,
            ..SloConfig::default()
        },
    );
    let board = tier.health_board();
    let plane = TelemetryPlane::bind(
        "127.0.0.1:0",
        Arc::clone(&hub),
        PlaneConfig {
            recorder: Some(Arc::clone(&recorder)),
            process_names: tier.trace_process_names(),
            health: Some(board as Arc<dyn HealthSource>),
        },
    )
    .expect("bind plane");
    let addr = plane.addr();

    for tick in 1..=4 {
        drive_tick(&mut tier, tick);
    }

    // -- /metrics: parseable Prometheus text with the serve series. --
    let (code, body) = http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    let names = parse_prometheus(&body);
    for expected in [
        "pinnsoc_serve_ingest_total",
        "pinnsoc_serve_backpressure_total",
        "pinnsoc_serve_snapshot_cells",
        "pinnsoc_serve_ingest_latency_seconds_bucket",
        "pinnsoc_serve_slo_state",
        "pinnsoc_serve_slo_fast_burn",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing {expected} in /metrics"
        );
    }

    // -- /snapshot.json parses and carries the same ingest counter. --
    let (code, body) = http_get(addr, "/snapshot.json").expect("GET /snapshot.json");
    assert_eq!(code, 200);
    let snap: serde_json::Value = serde_json::from_str(&body).expect("snapshot JSON");
    assert!(snap["uptime_s"].as_f64().expect("uptime") >= 0.0);

    // -- /trace.json: one complete tick → stage tree per engine. --
    let (code, body) = http_get(addr, "/trace.json").expect("GET /trace.json");
    assert_eq!(code, 200);
    let trace: serde_json::Value = serde_json::from_str(&body).expect("trace JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents");
    let meta_names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"] == "M")
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(
        meta_names.contains(&"serve-tier"),
        "process_name metadata labels the tier: {meta_names:?}"
    );
    // Index spans by id; verify the causal chain from a stage span up to
    // the tick root for every engine lane pid.
    let mut by_id: HashMap<u64, (&str, u64, u64)> = HashMap::new();
    for e in events.iter().filter(|e| e["ph"] == "X") {
        let id = e["args"]["id"].as_u64().expect("span id");
        let parent = e["args"]["parent"].as_u64().expect("span parent");
        let pid = e["pid"].as_u64().expect("span pid");
        by_id.insert(id, (e["name"].as_str().expect("name"), parent, pid));
    }
    for engine in 0..ENGINES as u64 {
        let pid = engine + 1;
        let stage = by_id
            .values()
            .find(|(name, _, p)| *p == pid && matches!(*name, "gather" | "gemm" | "scatter"))
            .unwrap_or_else(|| panic!("engine {engine}: no stage span at pid {pid}"));
        let mut chain = vec![stage.0];
        let mut parent = stage.1;
        while parent != 0 {
            let span = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("engine {engine}: dangling parent {parent}"));
            chain.push(span.0);
            parent = span.1;
        }
        let expected = vec![chain[0], "pass", "engine_tick", "lane", "tick"];
        assert_eq!(
            chain, expected,
            "engine {engine}: stage span must chain to the tick root"
        );
    }

    // -- /healthz: ok while everything serves. --
    let (code, status, ready) = health_status(addr);
    assert_eq!((code, status.as_str(), ready), (200, "ok", true));
    let (code, _) = http_get(addr, "/readyz").expect("GET /readyz");
    assert_eq!(code, 200);

    // -- Crash one engine: health degrades, readiness holds. --
    let dir = tier.crash_engine(CRASHED_ENGINE);
    let (code, status, ready) = health_status(addr);
    assert_eq!(
        (code, status.as_str(), ready),
        (200, "degraded", true),
        "a crashed-but-buffering lane degrades health without dropping readiness"
    );
    let (code, _) = http_get(addr, "/readyz").expect("GET degraded /readyz");
    assert_eq!(code, 200);
    drive_tick(&mut tier, 5); // survivors keep serving
    let (_, status, _) = health_status(addr);
    assert_eq!(status, "degraded");

    // -- Recover: health returns to ok. --
    tear_directory(&dir, 0xBEEF, CrashPoint::MidTick).expect("tear");
    tier.recover_engine(CRASHED_ENGINE).expect("recover");
    drive_tick(&mut tier, 6);
    let (code, status, ready) = health_status(addr);
    assert_eq!((code, status.as_str(), ready), (200, "ok", true));

    drop(plane);
    drop(tier);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The contention contract under live load: a scraper hammering
/// `/metrics` and `/snapshot.json` while the tier ticks never wedges the
/// tick loop (the test completes) and never observes a torn histogram —
/// every snapshot's bucket counts sum exactly to its `count`.
#[test]
fn scraper_polling_live_ticks_never_tears_or_blocks() {
    let mut tier = build_tier(None);
    let hub = ObsHub::new();
    tier.attach_obs(&hub);
    let plane = TelemetryPlane::bind("127.0.0.1:0", Arc::clone(&hub), PlaneConfig::default())
        .expect("bind plane");
    let addr = plane.addr();

    let stop = AtomicBool::new(false);
    let scrapes = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut ok = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (code, body) = http_get(addr, "/snapshot.json").expect("GET snapshot");
                assert_eq!(code, 200);
                let snap: serde_json::Value = serde_json::from_str(&body).expect("snapshot JSON");
                for metric in snap["metrics"]["metrics"].as_array().expect("metrics") {
                    let value = &metric["value"];
                    if let Some(hist) = value.get("Histogram") {
                        let count = hist["count"].as_f64().expect("count") as u64;
                        let bucket_sum: u64 = hist["counts"]
                            .as_array()
                            .expect("counts")
                            .iter()
                            .map(|c| c.as_f64().expect("bucket") as u64)
                            .sum();
                        assert_eq!(
                            bucket_sum, count,
                            "torn histogram visible over the wire: {metric:?}"
                        );
                    }
                }
                let (code, body) = http_get(addr, "/metrics").expect("GET metrics");
                assert_eq!(code, 200);
                parse_prometheus(&body);
                ok += 1;
            }
            ok
        });
        for tick in 1..=40 {
            drive_tick(&mut tier, tick);
        }
        stop.store(true, Ordering::Relaxed);
        scraper.join().expect("scraper thread")
    });
    assert!(scrapes > 0, "the scraper got at least one window in");

    // Direct hub reads obey the same contract (no HTTP in between).
    let snap = hub.snapshot();
    for metric in &snap.metrics.metrics {
        if let SampleValue::Histogram(hist) = &metric.value {
            assert_eq!(hist.counts.iter().sum::<u64>(), hist.count);
        }
    }
}
