//! Fleet observability: metric registration and per-shard recording.
//!
//! The engine thread registers every `pinnsoc_fleet_*` series once in
//! [`FleetEngine::attach_obs`](crate::FleetEngine::attach_obs); each shard
//! carries a [`ShardObs`] — a [`LocalMetrics`] buffer plus the shared
//! [`FleetMetricIds`] — that it records into *worker-side with plain
//! arithmetic*, reusing the stage durations [`StageTimes`] already
//! measures (no extra clock reads on the hot path). The engine merges
//! every shard's buffer into the registry when the shards check back in
//! at the tick boundary, so workers never touch a lock for metrics.

use crate::engine::{StageTimes, TelemetryStats};
use pinnsoc_obs::{LocalMetrics, MetricId, ObsHub, SpanId, TraceSink, DURATION_BUCKETS};
use std::sync::Arc;
use std::time::Instant;

/// Every fleet metric id, registered once per hub (idempotently) and
/// shared across shards via `Arc`.
#[derive(Debug)]
pub(crate) struct FleetMetricIds {
    /// `pinnsoc_fleet_stage_seconds{stage=...}`: the p50/p99 successor of
    /// the cumulative [`StageTimes`] sums (the accessor remains).
    pub stage_coalesce: MetricId,
    pub stage_gather: MetricId,
    pub stage_gemm: MetricId,
    pub stage_scatter: MetricId,
    /// One shard's full processing pass.
    pub shard_pass_seconds: MetricId,
    /// Telemetry book, by outcome.
    pub telemetry_accepted: MetricId,
    pub telemetry_duplicate: MetricId,
    pub telemetry_non_finite: MetricId,
    pub telemetry_time_reversed: MetricId,
    pub telemetry_unknown_cell: MetricId,
    /// Reports folded / cells re-estimated, fleet-wide.
    pub absorbed: MetricId,
    pub estimated: MetricId,
    /// Engine-level tick (one `process_pending`) and predict pass.
    pub tick_seconds: MetricId,
    pub ticks: MetricId,
    pub predict_seconds: MetricId,
    /// Fleet shape gauges, refreshed each tick.
    pub cells: MetricId,
    pub reporting: MetricId,
    pub model_version: MetricId,
    /// Detected GEMM kernel path ([`pinnsoc_nn::kernel::KernelPath`] as a
    /// numeric code: 1 = scalar, 2 = SSE2, 3 = AVX2), set at attach.
    pub kernel_path: MetricId,
    /// 1 when a gate-certified quantized shadow is installed, else 0.
    pub quantized_active: MetricId,
    /// Cell estimates served by the int8 quantized path.
    pub quantized_estimated: MetricId,
    /// Ticks whose batch passes served the quantized model.
    pub quantized_ticks: MetricId,
}

impl FleetMetricIds {
    /// Registers (or looks up) every fleet series on `hub`.
    pub fn register(hub: &ObsHub) -> Self {
        let reg = hub.registry();
        let stage = |name: &str| {
            reg.histogram_with(
                "pinnsoc_fleet_stage_seconds",
                "Per-shard batch-pass stage wall time.",
                &[("stage", name)],
                DURATION_BUCKETS,
            )
        };
        let outcome = |name: &str| {
            reg.counter_with(
                "pinnsoc_fleet_telemetry_reports_total",
                "Telemetry reports by ingest/absorb outcome.",
                &[("outcome", name)],
            )
        };
        Self {
            stage_coalesce: stage("coalesce"),
            stage_gather: stage("gather"),
            stage_gemm: stage("gemm"),
            stage_scatter: stage("scatter"),
            shard_pass_seconds: reg.histogram(
                "pinnsoc_fleet_shard_pass_seconds",
                "One shard's full processing pass (all stages).",
                DURATION_BUCKETS,
            ),
            telemetry_accepted: outcome("accepted"),
            telemetry_duplicate: outcome("duplicate_timestamp"),
            telemetry_non_finite: outcome("rejected_non_finite"),
            telemetry_time_reversed: outcome("rejected_time_reversed"),
            telemetry_unknown_cell: outcome("unknown_cell"),
            absorbed: reg.counter(
                "pinnsoc_fleet_reports_absorbed_total",
                "Reports folded into cell integrators.",
            ),
            estimated: reg.counter(
                "pinnsoc_fleet_cells_estimated_total",
                "Cell estimates refreshed by batch passes.",
            ),
            tick_seconds: reg.histogram(
                "pinnsoc_fleet_tick_seconds",
                "One process_pending call, queue to quiescence.",
                DURATION_BUCKETS,
            ),
            ticks: reg.counter("pinnsoc_fleet_ticks_total", "process_pending calls."),
            predict_seconds: reg.histogram(
                "pinnsoc_fleet_predict_seconds",
                "One fleet-wide predict_all pass.",
                DURATION_BUCKETS,
            ),
            cells: reg.gauge("pinnsoc_fleet_cells", "Registered cells."),
            reporting: reg.gauge(
                "pinnsoc_fleet_reporting_cells",
                "Cells with at least one accepted report.",
            ),
            model_version: reg.gauge(
                "pinnsoc_fleet_model_version",
                "Version of the served model.",
            ),
            kernel_path: reg.gauge(
                "pinnsoc_fleet_kernel_path",
                "Active GEMM kernel path (1=scalar, 2=sse2, 3=avx2).",
            ),
            quantized_active: reg.gauge(
                "pinnsoc_fleet_quantized_active",
                "Whether a gate-certified quantized model is installed (0/1).",
            ),
            quantized_estimated: reg.counter(
                "pinnsoc_fleet_quantized_cells_estimated_total",
                "Cell estimates served by the int8 quantized path.",
            ),
            quantized_ticks: reg.counter(
                "pinnsoc_fleet_quantized_ticks_total",
                "Ticks whose batch passes served the quantized model.",
            ),
        }
    }
}

/// One shard's recording buffer: travels with the shard through the
/// worker pool, records with plain arithmetic, merged by the engine
/// thread at the tick boundary.
#[derive(Debug)]
pub(crate) struct ShardObs {
    pub local: LocalMetrics,
    pub ids: Arc<FleetMetricIds>,
    /// Cumulative telemetry book as of the previous pass, so each pass
    /// records only its own delta.
    pub last_telemetry: TelemetryStats,
}

impl ShardObs {
    /// Records one completed processing pass from quantities the pass
    /// already computed — stage durations, absorb counts, and the
    /// cumulative telemetry book (differenced against the previous pass).
    pub fn record_pass(
        &mut self,
        stage: &StageTimes,
        absorbed: usize,
        estimated: usize,
        telemetry: &TelemetryStats,
        quantized: bool,
    ) {
        let ids = &self.ids;
        if quantized {
            self.local.add(ids.quantized_estimated, estimated as u64);
        }
        self.local
            .observe(ids.stage_coalesce, stage.coalesce.as_secs_f64());
        self.local
            .observe(ids.stage_gather, stage.gather.as_secs_f64());
        self.local.observe(ids.stage_gemm, stage.gemm.as_secs_f64());
        self.local
            .observe(ids.stage_scatter, stage.scatter.as_secs_f64());
        self.local
            .observe(ids.shard_pass_seconds, stage.total().as_secs_f64());
        self.local.add(ids.absorbed, absorbed as u64);
        self.local.add(ids.estimated, estimated as u64);
        let tick = telemetry.delta(&self.last_telemetry);
        self.last_telemetry = *telemetry;
        self.local.add(ids.telemetry_accepted, tick.accepted);
        self.local
            .add(ids.telemetry_duplicate, tick.duplicate_timestamp);
        self.local
            .add(ids.telemetry_non_finite, tick.rejected_non_finite);
        self.local
            .add(ids.telemetry_time_reversed, tick.rejected_time_reversed);
    }
}

/// The engine thread's own observability state.
#[derive(Debug)]
pub(crate) struct EngineObs {
    pub hub: Arc<ObsHub>,
    pub ids: Arc<FleetMetricIds>,
    pub local: LocalMetrics,
    /// Unknown-cell count already exported, so each tick adds its delta.
    pub last_unknown_cells: u64,
}

/// Model-registry observability: version gauge plus a swap event in the
/// ring log. Attached once via `OnceLock` so `swap` stays lock-free with
/// respect to obs state.
#[derive(Debug)]
pub(crate) struct RegistryObs {
    pub hub: Arc<ObsHub>,
    pub version_gauge: MetricId,
}

/// One shard's flight-recorder sink: travels with the shard through the
/// worker pool exactly like [`ShardObs`], records worker-side, merged by
/// the engine thread at the tick boundary. The span clock is the
/// `Instant` marks [`StageTimes`] measurement already takes — tracing a
/// pass adds **zero** extra clock reads on the hot path.
#[derive(Debug)]
pub(crate) struct ShardTracer {
    pub sink: TraceSink,
    /// Trace process row: the engine's lane pid.
    pub pid: u32,
    /// Trace thread row: this shard's index, fixed at attach.
    pub tid: u32,
    /// Parent span of the next pass — the engine points this at its
    /// current tick span before queueing the shard.
    pub parent: SpanId,
}

impl ShardTracer {
    /// Records one completed processing pass: a `pass` span over the
    /// whole pass plus sequential `gather`/`gemm`/`scatter` child spans
    /// synthesized from the stage durations the pass accumulated. The
    /// stage spans are laid end-to-end from the pass start — each is the
    /// stage's *total* across the pass's micro-batch chunks, not one
    /// contiguous interval, which keeps the hot path free of per-chunk
    /// recording while the trace still shows where the pass's time went.
    pub fn record_pass(&mut self, stage: &StageTimes, start: Instant, end: Instant) {
        if !self.sink.is_on() {
            return;
        }
        let pass = self
            .sink
            .record("pass", "fleet", self.pid, self.tid, self.parent, start, end);
        let mut at = start;
        for (name, dur) in [
            ("gather", stage.gather),
            ("gemm", stage.gemm),
            ("scatter", stage.scatter),
        ] {
            self.sink
                .record_at(name, "fleet", self.pid, self.tid, pass, at, dur);
            at += dur;
        }
    }
}

/// The engine thread's flight-recorder state: its own sink (for the
/// per-tick `engine_tick` span) plus the lane pid shared with shards.
#[derive(Debug)]
pub(crate) struct EngineTracer {
    pub sink: TraceSink,
    pub pid: u32,
    /// Parent for the next tick's `engine_tick` span — the serve tier
    /// points this at its lane span each tick; 0 for a standalone engine.
    pub parent: SpanId,
}
