//! # pinnsoc-fleet
//!
//! Fleet-scale SoC inference engine for the `pinnsoc` workspace.
//!
//! The paper keeps its two-branch PINN tiny (2,322 parameters) so it can run
//! on-device; the interesting scaling axis for a server is therefore *fleet
//! width* — one process estimating state of charge for hundreds of thousands
//! of cells concurrently. This crate turns the reproduction into that
//! serving layer:
//!
//! - [`FleetEngine`] owns per-cell state in structure-of-arrays shards
//!   ([`CellStore`]: latest telemetry split by field, a running
//!   [`pinnsoc_battery::CoulombCounter`], and an optional
//!   [`pinnsoc_battery::EkfEstimator`] fallback per cell), so batch
//!   assembly gathers features from contiguous arrays and scatters results
//!   back with linear writes.
//! - Batch passes run on a **persistent worker pool** (the shared
//!   [`pinnsoc_runtime::WorkerPool`], which also powers pool-parallel
//!   training): workers park between ticks and wake through an
//!   epoch/condvar handoff; the calling thread participates in draining
//!   the shard queue, so a single-core host runs the whole pass inline
//!   with zero thread spawns and zero steady-state allocations per tick.
//! - Telemetry integrates into the shard state **at ingest** (no staging
//!   queue to write and re-read); batch passes then estimate the touched
//!   cells in fixed-size **micro-batches**, each running through the fused
//!   batched forward paths
//!   ([`pinnsoc::SocModel::estimate_features_into`] /
//!   [`pinnsoc::SocModel::predict_uniform_into`]) — one fused GEMM per
//!   layer per batch instead of one tiny GEMM per cell.
//! - [`ModelRegistry`] hot-swaps trained models (loaded via
//!   `pinnsoc-nn::persist`) without stalling in-flight readers: workers pin
//!   an `Arc` snapshot per pass, so a swap lands at the next pass.
//! - Fleet-level queries: SoC histograms, cells below a threshold, and
//!   per-cell predicted time-to-empty. Per-stage timing
//!   ([`StageTimes`]: gather / GEMM / scatter) backs the bench harness's
//!   breakdown.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
//! # use pinnsoc_fleet::testing::untrained_model;
//!
//! let mut engine = FleetEngine::new(untrained_model(), FleetConfig::default());
//! for id in 0..100 {
//!     engine.register(id, CellConfig { initial_soc: 0.9, capacity_ah: 3.0 });
//! }
//! engine.ingest(7, Telemetry { time_s: 1.0, voltage_v: 3.8, current_a: 1.5, temperature_c: 25.0 });
//! engine.process_pending();
//! assert!(engine.estimate(7).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod engine;
mod id_index;
mod obs;
mod pool;
pub mod registry;
pub mod telemetry;

pub use cell::{
    AbsorbOutcome, CellConfig, CellPersist, CellSnapshot, CellStore, EstimateBreakdown, SocEstimate,
};
pub use engine::{
    FleetConfig, FleetEngine, FleetStats, ServingMode, StageTimes, TelemetryStats, WorkloadQuery,
};
pub use registry::{GateCertificate, GateTolerance, InstallError, ModelRegistry, ServingSnapshot};
pub use telemetry::{CellId, Telemetry};

/// Helpers for doctests and benches that need a model without a training
/// run.
pub mod testing {
    use pinnsoc::{Branch1, Branch2, QuantizedSocModel, SecondStage, SocModel};
    use pinnsoc_data::Normalizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Builds an untrained two-branch model with sane normalizers — enough
    /// for exercising the serving machinery when a trained model is not
    /// worth the setup cost.
    pub fn untrained_model() -> SocModel {
        untrained_model_seeded(0)
    }

    /// [`untrained_model`] with an explicit weight seed (distinct seeds give
    /// distinct weights — useful for hot-swap tests).
    pub fn untrained_model_seeded(seed: u64) -> SocModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows3: Vec<Vec<f64>> = vec![vec![2.8, -5.0, 0.0], vec![4.2, 9.0, 45.0]];
        let refs3: Vec<&[f64]> = rows3.iter().map(|r| r.as_slice()).collect();
        let rows2: Vec<Vec<f64>> = vec![vec![-5.0, 0.0], vec![9.0, 45.0]];
        let refs2: Vec<&[f64]> = rows2.iter().map(|r| r.as_slice()).collect();
        SocModel {
            branch1: Branch1::new(Normalizer::fit(refs3.iter().copied()), &mut rng),
            stage2: SecondStage::Network(Branch2::new(
                Normalizer::fit(refs2.iter().copied()),
                120.0,
                &mut rng,
            )),
            label: "untrained".into(),
        }
    }

    /// Int8-quantizes `model` with a small calibration sweep over the
    /// same sensor ranges [`untrained_model`]'s normalizers were fit on —
    /// enough for exercising the quantized serving machinery in tests.
    pub fn quantize_untrained(model: &Arc<SocModel>) -> QuantizedSocModel {
        let readings: Vec<[f64; 3]> = (0..64)
            .map(|i| {
                let t = i as f64 / 63.0;
                [2.8 + 1.4 * t, 14.0 * t - 5.0, 45.0 * t]
            })
            .collect();
        let b1 = model.branch1.feature_matrix(&readings);
        let b2 = match &model.stage2 {
            SecondStage::Network(b2) => {
                let rows: Vec<[f64; 4]> = (0..64)
                    .map(|i| {
                        let t = i as f64 / 63.0;
                        [t, 14.0 * t - 5.0, 45.0 * t, 15.0 + 585.0 * t]
                    })
                    .collect();
                Some(b2.feature_matrix(&rows))
            }
            SecondStage::Coulomb { .. } => None,
        };
        QuantizedSocModel::quantize(Arc::clone(model), &b1, b2.as_ref())
            .expect("calibration sweep covers the normalizer ranges")
    }
}
