//! The fleet engine: sharded per-cell state, micro-batched inference, and
//! fleet-level queries.

use crate::cell::{
    AbsorbOutcome, CellConfig, CellPersist, CellSnapshot, CellStore, EstimateBreakdown, SocEstimate,
};
use crate::id_index::IdIndex;
use crate::obs::{EngineObs, EngineTracer, FleetMetricIds, ShardObs, ShardTracer};
use crate::pool::{Done, JobKind, TaskOutput, WorkerPool};
use crate::registry::ModelRegistry;
use crate::telemetry::{CellId, Telemetry};
use pinnsoc::{BatchScratch, QuantBatchScratch, QuantizedSocModel, SocModel};
use pinnsoc_battery::CellParams;
use pinnsoc_nn::Matrix;
use pinnsoc_obs::{FlightRecorder, ObsHub, SpanId};
use pinnsoc_runtime::{PoolObs, PoolTracer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which network the batch passes serve with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingMode {
    /// The f32 incumbent — the accuracy reference; always available.
    #[default]
    F32,
    /// The int8 quantized shadow, when one is installed in the registry
    /// (a [`crate::GateCertificate`]-backed
    /// [`ModelRegistry::install_quantized`]). Until then — and again after
    /// any [`ModelRegistry::swap`], which clears the shadow — passes
    /// degrade to the f32 incumbent rather than stalling; each pass picks
    /// per its pinned snapshot, so the transition lands at a batch
    /// boundary like a hot swap. Featurization and the ingest-side physics
    /// (Coulomb / EKF) stay f32 either way; only the network forward runs
    /// int8.
    Int8,
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards; cells are distributed by `id % shards` and shards
    /// are drained from the persistent worker pool's queue during batch
    /// passes. Defaults to the machine's available parallelism.
    pub shards: usize,
    /// Cells per batched forward pass. Micro-batches bound the latency of a
    /// model hot-swap (a swap applies at the next batch boundary) and keep
    /// per-worker scratch buffers cache-resident (256 rows × 32-wide
    /// hidden layers ≈ 32 kB per ping-pong buffer — L1-sized; measured
    /// fastest among 128–4096 on the reference core).
    pub micro_batch: usize,
    /// Persistent worker threads assisting the calling thread during batch
    /// passes. `0` means auto: one less than the machine's available
    /// parallelism (the caller participates in every pass), capped at the
    /// shard count — so a single-core host runs the whole pass on the
    /// calling thread with no cross-thread handoff at all.
    pub workers: usize,
    /// When set, every registered cell carries an EKF fallback estimator
    /// built from these parameters (used when no network estimate covers
    /// the latest telemetry).
    pub ekf_fallback: Option<CellParams>,
    /// Which network the batch passes serve with (see [`ServingMode`]).
    pub serving: ServingMode,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(4, usize::from),
            micro_batch: 256,
            workers: 0,
            ekf_fallback: None,
            serving: ServingMode::F32,
        }
    }
}

/// A described future workload, applied to one or many cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadQuery {
    /// Expected average current over the horizon, amps.
    pub avg_current_a: f64,
    /// Expected average temperature over the horizon, °C.
    pub avg_temperature_c: f64,
    /// Prediction horizon `N`, seconds.
    pub horizon_s: f64,
}

/// Fleet-level summary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Registered cells.
    pub cells: usize,
    /// Cells with at least one accepted telemetry report.
    pub reporting: usize,
    /// Mean best-estimate SoC over reporting cells (0 when none report).
    pub mean_soc: f64,
    /// Minimum best-estimate SoC over reporting cells (0 when none report).
    pub min_soc: f64,
    /// Maximum best-estimate SoC over reporting cells (0 when none report).
    pub max_soc: f64,
}

/// Cumulative telemetry accounting since engine construction: what arrived,
/// what was folded in, and what was rejected and why. Transport faults
/// (out-of-order frames, gateway NaNs, duplicated deliveries) are never
/// silently dropped — they land in these counters, which the closed-loop
/// scenario harness (`pinnsoc-scenario`) reconciles against the faults it
/// injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryStats {
    /// Reports folded into a cell's integrators (includes duplicates).
    pub accepted: u64,
    /// Accepted reports whose timestamp equaled the previous report's
    /// (duplicated frame or sensor re-read): latest fields overwritten,
    /// nothing integrated.
    pub duplicate_timestamp: u64,
    /// Rejected: a non-finite field.
    pub rejected_non_finite: u64,
    /// Rejected: timestamp older than the cell's latest accepted report.
    pub rejected_time_reversed: u64,
    /// Reports addressed to an id that was never registered (rejected at
    /// ingest, before reaching any shard).
    pub unknown_cell: u64,
}

impl TelemetryStats {
    /// Total rejected reports (unknown cells included).
    pub fn rejected(&self) -> u64 {
        self.rejected_non_finite + self.rejected_time_reversed + self.unknown_cell
    }

    /// Per-field difference `self − prev`, turning two cumulative books
    /// into one interval's counts. Saturating: if `prev` is ahead on any
    /// field (e.g. the books belong to different engines after a reset),
    /// that field's delta is 0 rather than wrapping.
    pub fn delta(&self, prev: &TelemetryStats) -> TelemetryStats {
        TelemetryStats {
            accepted: self.accepted.saturating_sub(prev.accepted),
            duplicate_timestamp: self
                .duplicate_timestamp
                .saturating_sub(prev.duplicate_timestamp),
            rejected_non_finite: self
                .rejected_non_finite
                .saturating_sub(prev.rejected_non_finite),
            rejected_time_reversed: self
                .rejected_time_reversed
                .saturating_sub(prev.rejected_time_reversed),
            unknown_cell: self.unknown_cell.saturating_sub(prev.unknown_cell),
        }
    }

    fn accumulate(&mut self, other: &TelemetryStats) {
        self.accepted += other.accepted;
        self.duplicate_timestamp += other.duplicate_timestamp;
        self.rejected_non_finite += other.rejected_non_finite;
        self.rejected_time_reversed += other.rejected_time_reversed;
        self.unknown_cell += other.unknown_cell;
    }
}

/// Cumulative wall time the batch passes spent per pipeline stage, summed
/// across shards (worker time, not elapsed time: concurrent shards add
/// up). The ingest stage happens on the caller in [`FleetEngine::ingest`]
/// and is cheap enough that timing it per report would distort it; the
/// bench harness times it as a block instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Legacy stage: draining queued telemetry into the per-cell
    /// integrators. Integration now happens at ingest (outside the batch
    /// pass), so this reads zero; the field survives so recorded
    /// `BENCH_fleet.json` breakdowns keep a stable schema across PRs.
    pub coalesce: Duration,
    /// Assembling normalized feature rows from the structure-of-arrays
    /// cell state into the batch input matrix.
    pub gather: Duration,
    /// The batched network forward passes (fused GEMM epilogues).
    pub gemm: Duration,
    /// Writing estimates back into the cell state with linear writes.
    pub scatter: Duration,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.coalesce + self.gather + self.gemm + self.scatter
    }

    fn accumulate(&mut self, other: &StageTimes) {
        self.coalesce += other.coalesce;
        self.gather += other.gather;
        self.gemm += other.gemm;
        self.scatter += other.scatter;
    }
}

/// One shard: a slice of the fleet, owned by the engine between ticks and
/// handed to the worker pool (by move) during batch passes.
#[derive(Debug)]
pub(crate) struct Shard {
    cells: CellStore,
    index: IdIndex,
    /// Per-shard inference scratch (lives with the shard so steady-state
    /// processing allocates nothing).
    scratch: BatchScratch,
    /// Int8 counterpart of `scratch`, used when a pass serves the
    /// quantized model. Empty buffers (a few `Vec`s) until the first int8
    /// pass, so f32-only fleets pay nothing for it.
    qscratch: QuantBatchScratch,
    /// Gather buffer: the normalized `micro_batch × 3` feature matrix.
    features: Matrix,
    /// Per-micro-batch network outputs.
    estimates: Vec<f64>,
    /// Reused list of slots touched since the last pass (same
    /// zero-steady-state-allocation rationale as `scratch`), populated
    /// incrementally by [`Shard::absorb_one`] at ingest.
    dirty: Vec<u32>,
    /// Reports absorbed at ingest since the last pass.
    tick_absorbed: usize,
    /// Reused slot list for full-shard passes (`predict_all`).
    batch_slots: Vec<u32>,
    /// Generation tag of the *upcoming* pass, backing the O(1) dirty-slot
    /// dedup (bumped at the end of each pass).
    generation: u64,
    /// Cells that have accepted at least one report — lets the engine skip
    /// queueing shards with nothing to predict.
    reporting: usize,
    /// Per-stage wall time of this shard's most recent processing pass
    /// (reset at the start of each pass; the engine accumulates deltas).
    stage: StageTimes,
    /// Cumulative telemetry accounting for this shard's cells
    /// (`unknown_cell` stays zero here — unknown ids are counted by the
    /// engine at ingest, before a shard is involved).
    telemetry: TelemetryStats,
    /// Recording buffer when observability is attached; travels with the
    /// shard through the pool, merged by the engine at tick boundaries.
    obs: Option<ShardObs>,
    /// Flight-recorder sink when tracing is attached; same travel/merge
    /// discipline as `obs`.
    tracer: Option<ShardTracer>,
}

impl Shard {
    fn new() -> Self {
        Self {
            cells: CellStore::new(),
            index: IdIndex::new(),
            scratch: BatchScratch::default(),
            qscratch: QuantBatchScratch::default(),
            features: Matrix::zeros(1, 1),
            estimates: Vec::new(),
            dirty: Vec::new(),
            tick_absorbed: 0,
            batch_slots: Vec::new(),
            // Registration seeds `dirty_generation` rows with 0, so the
            // first pass must tag with something greater.
            generation: 1,
            reporting: 0,
            stage: StageTimes::default(),
            telemetry: TelemetryStats::default(),
            obs: None,
            tracer: None,
        }
    }

    /// Runs the network over every cell touched since the last pass, in
    /// micro-batches. Telemetry is coalesced: a cell reporting five times
    /// since the last pass was integrated five times at ingest but is
    /// estimated once, at its latest reading.
    /// Returns `(reports_absorbed, cells_estimated)`.
    ///
    /// `quantized` (when present) must be an artifact of `model` — the pool
    /// passes both halves of one pinned [`crate::ServingSnapshot`], whose
    /// registry invariant guarantees exactly that. The gather stage always
    /// featurizes through the f32 `model` (the quantized artifact shares
    /// its normalizers bit-for-bit); only the GEMM stage switches.
    pub(crate) fn process(
        &mut self,
        model: &SocModel,
        quantized: Option<&QuantizedSocModel>,
        micro_batch: usize,
    ) -> (usize, usize) {
        // `stage` holds exactly this pass's times; the engine accumulates
        // per-tick deltas when the shard checks back in. Integration
        // happened at ingest (see `absorb_one`), so the pass starts straight
        // at the gather stage and `coalesce` stays zero.
        self.stage = StageTimes::default();
        let absorbed = std::mem::take(&mut self.tick_absorbed);
        let mut mark = Instant::now();
        // The tracer reuses the pass's existing stage marks — first mark
        // is the pass start, last mark is the pass end.
        let pass_start = mark;
        for batch in self.dirty.chunks(micro_batch) {
            // Gather: normalized features straight from the SoA telemetry
            // arrays into the batch input matrix — no per-cell struct hops.
            self.cells.gather_features(batch, model, &mut self.features);
            let t = Instant::now();
            self.stage.gather += t - mark;
            mark = t;
            // GEMM: the fused batched forward pass (int8 when serving a
            // quantized shadow, f32 otherwise).
            self.estimates.clear();
            match quantized {
                Some(q) => q.estimate_features_into(
                    &self.features,
                    &mut self.qscratch,
                    &mut self.estimates,
                ),
                None => model.estimate_features_into(
                    &self.features,
                    &mut self.scratch,
                    &mut self.estimates,
                ),
            }
            let t = Instant::now();
            self.stage.gemm += t - mark;
            mark = t;
            // Scatter: linear write-back into the SoA estimate arrays.
            for (&slot, &soc) in batch.iter().zip(&self.estimates) {
                self.cells.record_network_estimate(slot as usize, soc);
            }
            let t = Instant::now();
            self.stage.scatter += t - mark;
            mark = t;
        }
        let estimated = self.dirty.len();
        self.dirty.clear();
        self.generation += 1;
        // Worker-side recording: plain slot arithmetic over durations the
        // pass already measured — no locks, no extra clock reads.
        let (stage, telemetry) = (self.stage, self.telemetry);
        if let Some(obs) = self.obs.as_mut() {
            obs.record_pass(&stage, absorbed, estimated, &telemetry, quantized.is_some());
        }
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record_pass(&stage, pass_start, mark);
        }
        (absorbed, estimated)
    }

    /// Folds one report into the cell store, the telemetry books, and the
    /// upcoming pass's dirty list — the single integration path, called at
    /// ingest on the caller thread regardless of worker count, which is
    /// what keeps every observable bit-identical across worker counts.
    #[inline]
    fn absorb_one(&mut self, slot: usize, telemetry: Telemetry) {
        let outcome = self.cells.absorb(slot, telemetry);
        match outcome {
            AbsorbOutcome::Accepted => {}
            AbsorbOutcome::DuplicateTimestamp => self.telemetry.duplicate_timestamp += 1,
            AbsorbOutcome::NonFinite => self.telemetry.rejected_non_finite += 1,
            AbsorbOutcome::TimeReversed => self.telemetry.rejected_time_reversed += 1,
        }
        // Duplicate-timestamp reports still count as accepted (they were
        // folded into the store), exactly as the books always have.
        if outcome.accepted() {
            self.telemetry.accepted += 1;
            self.tick_absorbed += 1;
            if self.cells.reports[slot] == 1 {
                self.reporting += 1;
            }
            if self.cells.dirty_generation[slot] != self.generation {
                self.cells.dirty_generation[slot] = self.generation;
                self.dirty.push(slot as u32);
            }
        }
    }

    /// Batched full-pipeline prediction for every reporting cell under one
    /// described workload. Same `quantized` contract as
    /// [`Shard::process`].
    pub(crate) fn predict_all(
        &mut self,
        model: &SocModel,
        quantized: Option<&QuantizedSocModel>,
        workload: &WorkloadQuery,
        micro_batch: usize,
    ) -> Vec<(CellId, f64)> {
        self.batch_slots.clear();
        self.batch_slots
            .extend((0..self.cells.len() as u32).filter(|&s| self.cells.reports[s as usize] > 0));
        let mut out = Vec::with_capacity(self.batch_slots.len());
        for batch in self.batch_slots.chunks(micro_batch) {
            self.cells.gather_features(batch, model, &mut self.features);
            self.estimates.clear();
            match quantized {
                Some(q) => q.predict_uniform_into(
                    &self.features,
                    workload.avg_current_a,
                    workload.avg_temperature_c,
                    workload.horizon_s,
                    &mut self.qscratch,
                    &mut self.estimates,
                ),
                None => model.predict_uniform_into(
                    &self.features,
                    workload.avg_current_a,
                    workload.avg_temperature_c,
                    workload.horizon_s,
                    &mut self.scratch,
                    &mut self.estimates,
                ),
            }
            out.extend(
                batch
                    .iter()
                    .zip(&self.estimates)
                    .map(|(&s, &p)| (self.cells.ids[s as usize], p)),
            );
        }
        out
    }
}

/// Tracks a fleet of cells and serves SoC estimates and predictions
/// through batched forward passes.
///
/// See the crate docs for the architecture; the short version: cells are
/// sharded by id into structure-of-arrays stores, telemetry is integrated
/// into them at ingest, and [`FleetEngine::process_pending`] hands the
/// touched shards to a persistent worker pool, each running fused
/// micro-batched GEMMs against a pinned model snapshot from the
/// [`ModelRegistry`].
pub struct FleetEngine {
    registry: Arc<ModelRegistry>,
    config: FleetConfig,
    /// `Some` between ticks; shards move out during a pool pass and return
    /// before the pass's public call completes.
    shards: Vec<Option<Shard>>,
    pool: WorkerPool,
    /// Engine-thread scratch for [`FleetEngine::predict_cells`].
    scratch: BatchScratch,
    features: Matrix,
    /// Reused tick buffers (see [`WorkerPool::run`]).
    tick_tasks: Vec<(usize, Shard)>,
    tick_done: Vec<Done>,
    /// Per-stage time accumulated from completed shard passes.
    stage_times: StageTimes,
    /// Reports addressed to unregistered ids (rejected before sharding).
    unknown_cells: u64,
    /// Engine-thread observability state when attached.
    obs: Option<EngineObs>,
    /// Engine-thread flight-recorder state when tracing is attached.
    tracer: Option<EngineTracer>,
}

impl FleetEngine {
    /// Creates an engine serving `model` with the given configuration.
    /// Zero values for `shards` / `micro_batch` are lifted to 1; see
    /// [`FleetConfig::workers`] for worker-count semantics.
    pub fn new(model: SocModel, config: FleetConfig) -> Self {
        Self::with_registry(Arc::new(ModelRegistry::new(model)), config)
    }

    /// Creates an engine that serves `quantized` on its batch passes —
    /// the gate's **evaluation seam**. The registry is pre-seeded with the
    /// candidate (bypassing [`ModelRegistry::install_quantized`]'s
    /// certificate check) precisely so the scenario gate can measure the
    /// candidate's accuracy *before* any certificate exists; the engine is
    /// private to the gate run and its registry is never the production
    /// one. Production promotion still has exactly one door:
    /// `install_quantized` with a [`crate::GateCertificate`].
    pub fn new_quantized_eval(quantized: Arc<QuantizedSocModel>, config: FleetConfig) -> Self {
        let registry = Arc::new(ModelRegistry::new_for_evaluation(quantized));
        let config = FleetConfig {
            serving: ServingMode::Int8,
            ..config
        };
        Self::with_registry(registry, config)
    }

    fn with_registry(registry: Arc<ModelRegistry>, config: FleetConfig) -> Self {
        let config = FleetConfig {
            shards: config.shards.max(1),
            micro_batch: config.micro_batch.max(1),
            ..config
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(0, |p| usize::from(p).saturating_sub(1))
        } else {
            config.workers
        }
        .min(config.shards);
        let shards = (0..config.shards).map(|_| Some(Shard::new())).collect();
        let pool = WorkerPool::new(Arc::clone(&registry), workers);
        Self {
            registry,
            config,
            shards,
            pool,
            scratch: BatchScratch::default(),
            features: Matrix::zeros(1, 1),
            tick_tasks: Vec::new(),
            tick_done: Vec::new(),
            stage_times: StageTimes::default(),
            unknown_cells: 0,
            obs: None,
            tracer: None,
        }
    }

    /// Attaches observability: registers every `pinnsoc_fleet_*` series
    /// on `hub` (idempotently), equips each shard with a worker-side
    /// recording buffer, instruments the worker pool (as `pool="fleet"`),
    /// and hooks model swaps into the event log. Estimates are
    /// bit-identical with and without an attached hub — instrumentation
    /// only reads timings and counts the engine already computes.
    pub fn attach_obs(&mut self, hub: &Arc<ObsHub>) {
        let ids = Arc::new(FleetMetricIds::register(hub));
        self.pool.attach_obs(PoolObs::new(hub, "fleet"));
        for slot in self.shards.iter_mut() {
            let shard = slot.as_mut().expect(Self::SHARD_LOST);
            shard.obs = Some(ShardObs {
                local: hub.registry().local(),
                ids: Arc::clone(&ids),
                last_telemetry: shard.telemetry,
            });
        }
        self.registry.attach_obs(hub);
        hub.registry()
            .set(ids.model_version, self.registry.version() as f64);
        // The kernel path is decided once per process (runtime CPU
        // detection, or the PINNSOC_FORCE_KERNEL override) — record it so
        // exported metrics say which GEMM code path produced them.
        hub.registry()
            .set(ids.kernel_path, pinnsoc_nn::kernel::active() as u8 as f64);
        self.obs = Some(EngineObs {
            hub: Arc::clone(hub),
            ids,
            local: hub.registry().local(),
            last_unknown_cells: self.unknown_cells,
        });
    }

    /// The attached observability hub, if any.
    pub fn obs_hub(&self) -> Option<&Arc<ObsHub>> {
        self.obs.as_ref().map(|obs| &obs.hub)
    }

    /// Attaches the flight recorder: each tick records an `engine_tick`
    /// span (parented under [`FleetEngine::set_trace_parent`]'s span),
    /// each shard pass a `pass` span with `gather`/`gemm`/`scatter`
    /// children, and each pool run a `pool_run` span — the
    /// tick → lane → stage → worker causal tree. `pid` is the trace
    /// process row (the serve tier passes `lane + 1`; standalone engines
    /// can pass any value). Shard sinks record worker-side with no locks
    /// and **no extra clock reads** (they reuse the stage marks), merged
    /// by the engine thread at the same tick boundary as the metrics
    /// merge. Estimates are bit-identical with and without tracing.
    pub fn attach_tracer(&mut self, recorder: &Arc<FlightRecorder>, pid: u32) {
        for (tid, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.as_mut().expect(Self::SHARD_LOST);
            shard.tracer = Some(ShardTracer {
                sink: recorder.sink(),
                pid,
                tid: tid as u32,
                parent: 0,
            });
        }
        self.pool.attach_tracer(PoolTracer::new(recorder, pid));
        self.tracer = Some(EngineTracer {
            sink: recorder.sink(),
            pid,
            parent: 0,
        });
    }

    /// Whether a flight recorder is attached.
    pub fn tracer_attached(&self) -> bool {
        self.tracer.is_some()
    }

    /// Parents the next tick's `engine_tick` span under `parent` (the
    /// serve tier's lane span). No-op without an attached tracer.
    pub fn set_trace_parent(&mut self, parent: SpanId) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.parent = parent;
        }
    }

    /// The model registry, for hot swaps (shareable across threads).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Persistent worker threads backing the batch passes (the calling
    /// thread always participates on top of these).
    pub fn worker_threads(&self) -> usize {
        self.pool.workers()
    }

    /// Shard routing plus the id's *index key* within that shard. The
    /// shard selector (`id % shards`) is constant within a shard, so the
    /// key divides it out — `id >> log2(shards)` on the power-of-two
    /// route, `id / shards` on the modulo route — keeping the per-shard
    /// dense id tables truly dense at *any* shard count: consecutive
    /// producer ids land in consecutive table entries instead of every
    /// `shards`-th one, so a fleet-wide ingest sweep touches every byte it
    /// loads (and never migrates to the hash path just because the shard
    /// count is not a power of two). The mapping is injective per shard
    /// either way: two ids in one shard agree on `id % shards`, so equal
    /// quotients would force equal ids. One 64-bit hardware divide per
    /// report is also measurable at fleet scale — the power-of-two route
    /// is a mask and a shift.
    pub(crate) fn route(shards: usize, id: CellId) -> (usize, CellId) {
        let shards = shards as u64;
        if shards.is_power_of_two() {
            ((id & (shards - 1)) as usize, id >> shards.trailing_zeros())
        } else {
            ((id % shards) as usize, id / shards)
        }
    }

    fn shard_and_key(&self, id: CellId) -> (usize, CellId) {
        Self::route(self.config.shards, id)
    }

    /// A `None` slot outside a batch pass means a prior pass's task
    /// panicked and that shard's state was lost with the unwind; the
    /// original panic was re-raised then, so this only fires when the
    /// caller caught it and kept using the engine.
    const SHARD_LOST: &'static str = "shard lost to a panicked batch pass";

    fn shard(&self, idx: usize) -> &Shard {
        self.shards[idx].as_ref().expect(Self::SHARD_LOST)
    }

    fn shard_mut(&mut self, idx: usize) -> &mut Shard {
        self.shards[idx].as_mut().expect(Self::SHARD_LOST)
    }

    /// Registers a cell. Returns `false` (without changes) when the id is
    /// already registered.
    pub fn register(&mut self, id: CellId, config: CellConfig) -> bool {
        let ekf = self.config.ekf_fallback.clone();
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard_mut(shard_idx);
        if shard.index.get(key).is_some() {
            return false;
        }
        let slot = shard.cells.push(id, &config, ekf.as_ref());
        shard.index.insert(key, slot);
        true
    }

    /// Deregisters a cell, dropping its state. Its reports stay counted in
    /// the telemetry books (they were integrated at ingest). Returns
    /// `false` when the id is not registered. Other cells' state and
    /// estimates are untouched bit-for-bit: removal swaps the shard's last
    /// slot into the freed one (repointing its index entry and dirty
    /// mark), and the per-cell math never depends on slot position.
    pub fn deregister(&mut self, id: CellId) -> bool {
        let shards = self.config.shards;
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard_mut(shard_idx);
        let Some(slot) = shard.index.remove(key) else {
            return false;
        };
        if shard.cells.reports[slot] > 0 {
            shard.reporting -= 1;
        }
        shard.dirty.retain(|&s| s as usize != slot);
        if let Some(moved_id) = shard.cells.swap_remove(slot) {
            // The shard's last cell now lives in `slot`; its dirty mark
            // and index entry must follow it.
            let last = shard.cells.len() as u32;
            for s in shard.dirty.iter_mut() {
                if *s == last {
                    *s = slot as u32;
                }
            }
            shard.index.reassign(Self::route(shards, moved_id).1, slot);
        }
        true
    }

    /// Ids of every registered cell, in shard order (stable for a fixed
    /// registration/deregistration history — the deterministic iteration
    /// seam the online-adaptation harvester walks each tick).
    pub fn ids(&self) -> Vec<CellId> {
        let mut out = Vec::with_capacity(self.len());
        for idx in 0..self.shards.len() {
            out.extend_from_slice(&self.shard(idx).cells.ids);
        }
        out
    }

    /// Registered cell count.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).cells.len())
            .sum()
    }

    /// True when no cells are registered.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.shard(i).cells.is_empty())
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: CellId) -> bool {
        let (shard_idx, key) = self.shard_and_key(id);
        self.shard(shard_idx).index.get(key).is_some()
    }

    /// Accepts one telemetry report, integrating it into the cell's state
    /// immediately (Coulomb / EKF update, telemetry books, dirty mark).
    /// Returns `false` for unknown cells. Estimation happens at the next
    /// [`FleetEngine::process_pending`]. Integrating here instead of
    /// queueing saves a full write-then-reread of every report (~8 MB/tick
    /// at 100k cells) and makes worker count unobservable: ingest runs on
    /// the caller thread in call order no matter how the batch passes are
    /// parallelized.
    pub fn ingest(&mut self, id: CellId, telemetry: Telemetry) -> bool {
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard_mut(shard_idx);
        match shard.index.get(key) {
            Some(slot) => {
                shard.absorb_one(slot, telemetry);
                true
            }
            None => {
                self.unknown_cells += 1;
                false
            }
        }
    }

    /// Refreshes network estimates for every cell touched since the last
    /// pass, through the persistent worker pool (integration already
    /// happened at [`FleetEngine::ingest`]). Returns
    /// `(reports_absorbed, cells_estimated)` fleet-wide.
    pub fn process_pending(&mut self) -> (usize, usize) {
        // Clock read only when observability or a live tracer is attached.
        let tracing = self.tracer.as_ref().is_some_and(|t| t.sink.is_on());
        let tick_start = (self.obs.is_some() || tracing).then(Instant::now);
        // Mint the tick span's id up front so the shard passes (which run
        // and record before the span's duration is known) can parent
        // under it; completed after the merge below.
        let tick_span = match self.tracer.as_mut() {
            Some(tracer) if tracing => tracer.sink.open(),
            _ => 0,
        };
        self.pool.set_trace_parent(tick_span);
        let micro_batch = self.config.micro_batch;
        self.tick_tasks.clear();
        for (idx, slot) in self.shards.iter_mut().enumerate() {
            // Idle shards contribute (0, 0) by construction — don't queue
            // them (sparse-telemetry ticks commonly touch a few shards out
            // of many).
            if slot.as_ref().is_some_and(|s| !s.dirty.is_empty()) {
                let mut shard = slot.take().expect(Self::SHARD_LOST);
                if let Some(tracer) = shard.tracer.as_mut() {
                    tracer.parent = tick_span;
                }
                self.tick_tasks.push((idx, shard));
            }
        }
        let panicked = self.pool.run(
            JobKind::Process {
                micro_batch,
                int8: self.config.serving == ServingMode::Int8,
            },
            &mut self.tick_tasks,
            &mut self.tick_done,
        );
        let mut totals = (0usize, 0usize);
        for done in self.tick_done.drain(..) {
            if let TaskOutput::Process {
                absorbed,
                estimated,
            } = done.output
            {
                totals.0 += absorbed;
                totals.1 += estimated;
            }
            self.stage_times.accumulate(&done.task.stage);
            self.shards[done.idx] = Some(done.task);
        }
        // Tick boundary: the engine thread merges every shard's local
        // buffer and refreshes the fleet-shape gauges. Workers are
        // quiescent, so no lock is ever contended from the hot path.
        if let (Some(obs), Some(start)) = (self.obs.as_mut(), tick_start) {
            let mut cells = 0usize;
            let mut reporting = 0usize;
            for slot in self.shards.iter_mut() {
                let shard = slot.as_mut().expect(Self::SHARD_LOST);
                cells += shard.cells.len();
                reporting += shard.reporting;
                if let Some(shard_obs) = shard.obs.as_mut() {
                    obs.hub.registry().merge(&mut shard_obs.local);
                }
            }
            let ids = &obs.ids;
            obs.local.add(ids.ticks, 1);
            obs.local
                .observe(ids.tick_seconds, start.elapsed().as_secs_f64());
            let unknown = self.unknown_cells - obs.last_unknown_cells;
            obs.last_unknown_cells = self.unknown_cells;
            obs.local.add(ids.telemetry_unknown_cell, unknown);
            obs.local.set(ids.cells, cells as f64);
            obs.local.set(ids.reporting, reporting as f64);
            obs.local
                .set(ids.model_version, self.registry.version() as f64);
            let quantized_installed = self.registry.quantized().is_some();
            obs.local
                .set(ids.quantized_active, u64::from(quantized_installed) as f64);
            if quantized_installed && self.config.serving == ServingMode::Int8 {
                obs.local.add(ids.quantized_ticks, 1);
            }
            obs.hub.registry().merge(&mut obs.local);
        }
        // Same tick boundary for the trace merge: workers are quiescent,
        // so every shard sink folds in uncontended, then the engine
        // completes its own tick span.
        if let (Some(tracer), Some(start)) = (self.tracer.as_mut(), tick_start) {
            let recorder = Arc::clone(tracer.sink.recorder());
            for slot in self.shards.iter_mut() {
                let shard = slot.as_mut().expect(Self::SHARD_LOST);
                if let Some(shard_tracer) = shard.tracer.as_mut() {
                    recorder.merge(&mut shard_tracer.sink);
                }
            }
            tracer.sink.complete(
                tick_span,
                "engine_tick",
                "fleet",
                tracer.pid,
                0,
                tracer.parent,
                start,
                Instant::now(),
            );
            recorder.merge(&mut tracer.sink);
        }
        // Re-raise only after every surviving shard is checked back in.
        assert!(!panicked, "shard task panicked during process_pending");
        totals
    }

    /// Best current SoC estimate for one cell, with its source.
    pub fn estimate(&self, id: CellId) -> Option<(f64, SocEstimate)> {
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard(shard_idx);
        shard
            .index
            .get(key)
            .and_then(|slot| shard.cells.estimate(slot))
    }

    /// Read access to one cell's full tracked state (an owned snapshot
    /// assembled from the shard's structure-of-arrays store).
    pub fn cell(&self, id: CellId) -> Option<CellSnapshot> {
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard(shard_idx);
        shard.index.get(key).map(|slot| shard.cells.snapshot(slot))
    }

    /// Per-estimator breakdown (network / Coulomb / EKF) of one cell's
    /// current estimates — the seam closed-loop validation scores each
    /// estimator through. `None` for unknown or never-reporting cells.
    pub fn estimate_breakdown(&self, id: CellId) -> Option<EstimateBreakdown> {
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard(shard_idx);
        shard
            .index
            .get(key)
            .and_then(|slot| shard.cells.breakdown(slot))
    }

    /// Cumulative telemetry accounting (accepted / duplicate / rejected by
    /// cause) summed over all shards since construction.
    pub fn telemetry_stats(&self) -> TelemetryStats {
        let mut stats = TelemetryStats {
            unknown_cell: self.unknown_cells,
            ..TelemetryStats::default()
        };
        for idx in 0..self.shards.len() {
            stats.accumulate(&self.shard(idx).telemetry);
        }
        stats
    }

    /// Flattened persisted state of every cell, in shard order then slot
    /// order — exactly the order [`Self::import_cells`] must replay to
    /// reproduce each cell's `(shard, slot)` placement. The durability
    /// layer's snapshot seam.
    pub fn export_cells(&self) -> Vec<CellPersist> {
        let mut out = Vec::with_capacity(self.len());
        for idx in 0..self.shards.len() {
            let shard = self.shard(idx);
            for slot in 0..shard.cells.len() {
                out.push(shard.cells.export_cell(slot));
            }
        }
        out
    }

    /// Rebuilds cells from persisted state — the recovery counterpart of
    /// [`Self::export_cells`]. Cells shard by `id % shards` as always, so
    /// replaying an export taken under the same shard count reproduces
    /// every `(shard, slot)` placement and the engine's subsequent
    /// estimates are bit-identical to the exporting engine's.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id or an EKF-fallback mismatch between this
    /// engine's configuration and the persisted cells.
    pub fn import_cells(&mut self, cells: &[CellPersist]) {
        let ekf = self.config.ekf_fallback.clone();
        for cell in cells {
            let (shard_idx, key) = self.shard_and_key(cell.id);
            let shard = self.shard_mut(shard_idx);
            assert!(
                shard.index.get(key).is_none(),
                "persisted cell id {} already registered",
                cell.id
            );
            let slot = shard.cells.import_cell(cell, ekf.as_ref());
            shard.index.insert(key, slot);
            if cell.reports > 0 {
                shard.reporting += 1;
            }
        }
    }

    /// Seeds the cumulative telemetry books from a persisted aggregate —
    /// the recovery counterpart of [`Self::telemetry_stats`]. The aggregate
    /// cannot be split back into per-shard books (and nothing reads them
    /// per shard), so the whole sum lands on shard 0 with `unknown_cell`
    /// routed to the engine-level counter; [`Self::telemetry_stats`] then
    /// reports continuous totals across a restart.
    pub fn restore_telemetry_stats(&mut self, stats: TelemetryStats) {
        self.unknown_cells = stats.unknown_cell;
        self.shard_mut(0).telemetry = TelemetryStats {
            unknown_cell: 0,
            ..stats
        };
    }

    /// Batched full-pipeline prediction for every reporting cell under one
    /// described workload, drained from the worker pool. Results are in
    /// shard order; pair order within a shard follows registration order.
    pub fn predict_all(&mut self, workload: WorkloadQuery) -> Vec<(CellId, f64)> {
        let pass_start = self.obs.as_ref().map(|_| Instant::now());
        let micro_batch = self.config.micro_batch;
        self.tick_tasks.clear();
        for (idx, slot) in self.shards.iter_mut().enumerate() {
            // Shards with no reporting cells return an empty Vec by
            // construction — skip queueing them.
            if slot.as_ref().is_some_and(|s| s.reporting > 0) {
                self.tick_tasks
                    .push((idx, slot.take().expect(Self::SHARD_LOST)));
            }
        }
        let panicked = self.pool.run(
            JobKind::PredictAll {
                workload,
                micro_batch,
                int8: self.config.serving == ServingMode::Int8,
            },
            &mut self.tick_tasks,
            &mut self.tick_done,
        );
        // Completion order is nondeterministic under concurrency; restore
        // shard order for a stable public result.
        self.tick_done.sort_unstable_by_key(|done| done.idx);
        let total = self
            .tick_done
            .iter()
            .map(|done| match &done.output {
                TaskOutput::Predict(pairs) => pairs.len(),
                TaskOutput::Process { .. } => 0,
            })
            .sum();
        let mut out = Vec::with_capacity(total);
        for done in self.tick_done.drain(..) {
            if let TaskOutput::Predict(mut pairs) = done.output {
                out.append(&mut pairs);
            }
            self.shards[done.idx] = Some(done.task);
        }
        if let (Some(obs), Some(start)) = (self.obs.as_mut(), pass_start) {
            obs.local
                .observe(obs.ids.predict_seconds, start.elapsed().as_secs_f64());
            obs.hub.registry().merge(&mut obs.local);
        }
        // Re-raise only after every surviving shard is checked back in.
        assert!(!panicked, "shard task panicked during predict_all");
        out
    }

    /// Batched prediction for an explicit set of cells under one workload,
    /// on the calling thread. Unknown or never-reporting cells yield `None`
    /// at their position.
    pub fn predict_cells(&mut self, ids: &[CellId], workload: WorkloadQuery) -> Vec<Option<f64>> {
        let model = self.registry.current();
        let mut rows: Vec<[f32; 3]> = Vec::with_capacity(ids.len());
        let mut positions = Vec::with_capacity(ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            let (shard_idx, key) = self.shard_and_key(id);
            let shard = self.shard(shard_idx);
            if let Some(slot) = shard.index.get(key) {
                if shard.cells.reports[slot] > 0 {
                    rows.push(model.branch1.features(
                        shard.cells.voltage_v[slot],
                        shard.cells.current_a[slot],
                        shard.cells.temperature_c[slot],
                    ));
                    positions.push(pos);
                }
            }
        }
        let mut out = vec![None; ids.len()];
        let mut predictions = Vec::with_capacity(positions.len().min(self.config.micro_batch));
        for (row_batch, pos_batch) in rows
            .chunks(self.config.micro_batch)
            .zip(positions.chunks(self.config.micro_batch))
        {
            self.features.reset_for_overwrite(row_batch.len(), 3);
            for (r, row) in row_batch.iter().enumerate() {
                self.features.row_mut(r).copy_from_slice(row);
            }
            predictions.clear();
            model.predict_uniform_into(
                &self.features,
                workload.avg_current_a,
                workload.avg_temperature_c,
                workload.horizon_s,
                &mut self.scratch,
                &mut predictions,
            );
            for (&pos, &p) in pos_batch.iter().zip(&predictions) {
                out[pos] = Some(p);
            }
        }
        out
    }

    /// Predicted seconds until empty for one cell at a constant discharge
    /// current.
    pub fn time_to_empty(&self, id: CellId, discharge_current_a: f64) -> Option<f64> {
        let (shard_idx, key) = self.shard_and_key(id);
        let shard = self.shard(shard_idx);
        shard
            .index
            .get(key)
            .and_then(|slot| shard.cells.time_to_empty_s(slot, discharge_current_a))
    }

    /// Cumulative per-stage batch-pass times, summed over all shards since
    /// construction or the last [`FleetEngine::reset_stage_times`]. The
    /// bench harness uses this for the ingest/coalesce/GEMM/scatter
    /// breakdown in `BENCH_fleet.json`.
    pub fn stage_times(&self) -> StageTimes {
        self.stage_times
    }

    /// Zeroes the cumulative stage times.
    pub fn reset_stage_times(&mut self) {
        self.stage_times = StageTimes::default();
    }

    /// Histogram of best-estimate SoC over reporting cells: `bins` equal
    /// buckets over `[0, 1]`, the last bucket closed.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn soc_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        let mut histogram = vec![0usize; bins];
        self.for_each_estimate(|_, soc| {
            let bin = ((soc * bins as f64) as usize).min(bins - 1);
            histogram[bin] += 1;
        });
        histogram
    }

    /// Ids of reporting cells whose best estimate is below `threshold`,
    /// ascending.
    pub fn cells_below(&self, threshold: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.for_each_estimate(|id, soc| {
            if soc < threshold {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    /// Fleet-level summary statistics.
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            cells: self.len(),
            reporting: 0,
            mean_soc: 0.0,
            min_soc: f64::MAX,
            max_soc: f64::MIN,
        };
        self.for_each_estimate(|_, soc| {
            stats.reporting += 1;
            stats.mean_soc += soc;
            stats.min_soc = stats.min_soc.min(soc);
            stats.max_soc = stats.max_soc.max(soc);
        });
        if stats.reporting == 0 {
            stats.min_soc = 0.0;
            stats.max_soc = 0.0;
        } else {
            stats.mean_soc /= stats.reporting as f64;
        }
        stats
    }

    fn for_each_estimate(&self, mut f: impl FnMut(CellId, f64)) {
        for idx in 0..self.shards.len() {
            let shard = self.shard(idx);
            for slot in 0..shard.cells.len() {
                if let Some((soc, _)) = shard.cells.estimate(slot) {
                    f(shard.cells.ids[slot], soc);
                }
            }
        }
    }

    /// Calls `f` with every reporting cell's id and full per-estimator
    /// breakdown, in shard order then slot order — the service tier's bulk
    /// snapshot seam: one linear sweep over the structure-of-arrays store
    /// instead of one routed [`Self::estimate_breakdown`] lookup per cell.
    pub fn for_each_breakdown(&self, mut f: impl FnMut(CellId, EstimateBreakdown)) {
        for idx in 0..self.shards.len() {
            let shard = self.shard(idx);
            for slot in 0..shard.cells.len() {
                if let Some(breakdown) = shard.cells.breakdown(slot) {
                    f(shard.cells.ids[slot], breakdown);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::untrained_model;
    use pinnsoc_obs::SampleValue;

    fn telemetry(time_s: f64) -> Telemetry {
        Telemetry {
            time_s,
            voltage_v: 3.7,
            current_a: 1.0,
            temperature_c: 25.0,
        }
    }

    fn engine_with(cells: u64, shards: usize) -> FleetEngine {
        engine_with_workers(cells, shards, 0)
    }

    /// Engine with an explicit worker-thread count, so the pool handoff is
    /// exercised even on single-core test hosts (where auto = 0 workers).
    fn engine_with_workers(cells: u64, shards: usize, workers: usize) -> FleetEngine {
        let mut engine = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards,
                micro_batch: 8,
                workers,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
        );
        for id in 0..cells {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            );
        }
        engine
    }

    #[test]
    fn register_ingest_process_estimate_roundtrip() {
        let mut engine = engine_with(100, 4);
        assert_eq!(engine.len(), 100);
        assert!(engine.contains(42) && !engine.contains(1000));
        assert!(
            !engine.register(42, CellConfig::default()),
            "duplicate register"
        );
        assert!(engine.ingest(42, telemetry(1.0)));
        assert!(
            !engine.ingest(1000, telemetry(1.0)),
            "unknown cell accepted"
        );
        let (absorbed, estimated) = engine.process_pending();
        assert_eq!((absorbed, estimated), (1, 1));
        let (soc, source) = engine.estimate(42).expect("estimated");
        assert_eq!(source, SocEstimate::Network);
        assert!(soc.is_finite());
        assert_eq!(
            engine.estimate(7),
            None,
            "never-reporting cell has no estimate"
        );
        let snapshot = engine.cell(42).expect("registered");
        assert_eq!(snapshot.id, 42);
        assert_eq!(snapshot.reports, 1);
        assert!(snapshot.network_estimate.is_some());
    }

    #[test]
    fn coalescing_integrates_every_report_but_estimates_once() {
        let mut engine = engine_with(1, 1);
        for k in 0..5 {
            engine.ingest(0, telemetry(k as f64 * 10.0));
        }
        let (absorbed, estimated) = engine.process_pending();
        assert_eq!(absorbed, 5);
        assert_eq!(
            estimated, 1,
            "five reports must coalesce into one batch slot"
        );
    }

    #[test]
    fn export_import_reproduces_engine_bit_for_bit() {
        let build = || {
            let mut engine = engine_with(60, 4);
            for step in 0..3 {
                for id in 0..60u64 {
                    engine.ingest(
                        id,
                        Telemetry {
                            time_s: 1.0 + step as f64 * 10.0,
                            voltage_v: 3.2 + id as f64 * 0.01,
                            current_a: 0.5 + id as f64 * 0.02,
                            temperature_c: 22.0 + id as f64 * 0.1,
                        },
                    );
                }
                engine.process_pending();
            }
            engine.ingest(1000, telemetry(1.0)); // unknown-cell book
            engine
        };
        let mut original = build();
        let export = original.export_cells();
        let books = original.telemetry_stats();

        let mut restored = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards: 4,
                micro_batch: 8,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
        );
        restored.import_cells(&export);
        restored.restore_telemetry_stats(books);
        assert_eq!(restored.len(), 60);
        assert_eq!(restored.ids(), original.ids(), "shard/slot placement");
        assert_eq!(restored.telemetry_stats(), books);
        assert_eq!(restored.export_cells(), export, "lossless round trip");

        // Continue both engines identically: estimates stay bit-identical.
        for engine in [&mut original, &mut restored] {
            for id in 0..60u64 {
                engine.ingest(
                    id,
                    Telemetry {
                        time_s: 40.0,
                        voltage_v: 3.3 + id as f64 * 0.005,
                        current_a: 1.0,
                        temperature_c: 24.0,
                    },
                );
            }
            engine.process_pending();
        }
        for id in 0..60u64 {
            let a = original.estimate(id).unwrap();
            let b = restored.estimate(id).unwrap();
            assert_eq!(a.1, b.1, "cell {id} source");
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "cell {id} estimate");
        }
        assert_eq!(original.telemetry_stats(), restored.telemetry_stats());
    }

    #[test]
    fn batched_estimates_match_scalar_model_calls() {
        let mut engine = engine_with(50, 4);
        for id in 0..50 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: 1.0,
                    voltage_v: 3.2 + id as f64 * 0.015,
                    current_a: id as f64 * 0.1,
                    temperature_c: 20.0 + id as f64 * 0.2,
                },
            );
        }
        engine.process_pending();
        let model = engine.registry().current();
        for id in 0..50 {
            let (soc, _) = engine.estimate(id).unwrap();
            // `CellStore::estimate` clamps the raw regression output into
            // [0, 1] for fleet aggregates; compare against the clamped
            // scalar call. Raw batched-vs-scalar parity (unclamped) is
            // covered by the predict_batch tests here and in `pinnsoc`.
            let scalar = model
                .estimate(
                    3.2 + id as f64 * 0.015,
                    id as f64 * 0.1,
                    20.0 + id as f64 * 0.2,
                )
                .clamp(0.0, 1.0);
            assert_eq!(soc.to_bits(), scalar.to_bits(), "cell {id}");
        }
    }

    #[test]
    fn worker_pool_results_match_caller_only_processing() {
        // The same fleet and telemetry processed with 0, 1, and 3 worker
        // threads must produce identical state — the pool handoff cannot
        // change results, only who computes them.
        let feed = |engine: &mut FleetEngine| {
            for id in 0..200u64 {
                engine.ingest(
                    id,
                    Telemetry {
                        time_s: 1.0,
                        voltage_v: 3.1 + id as f64 * 0.004,
                        current_a: id as f64 * 0.02,
                        temperature_c: 18.0 + id as f64 * 0.05,
                    },
                );
            }
        };
        let workload = WorkloadQuery {
            avg_current_a: 2.0,
            avg_temperature_c: 25.0,
            horizon_s: 90.0,
        };
        type EngineResults = (Vec<(u64, f64)>, Vec<(CellId, f64)>);
        let mut reference: Option<EngineResults> = None;
        for workers in [0usize, 1, 3] {
            let mut engine = engine_with_workers(200, 5, workers);
            assert_eq!(engine.worker_threads(), workers);
            feed(&mut engine);
            let (absorbed, estimated) = engine.process_pending();
            assert_eq!((absorbed, estimated), (200, 200), "workers={workers}");
            let estimates: Vec<(u64, f64)> = (0..200u64)
                .map(|id| (id, engine.estimate(id).unwrap().0))
                .collect();
            let predictions = engine.predict_all(workload);
            match &reference {
                None => reference = Some((estimates, predictions)),
                Some((ref_est, ref_pred)) => {
                    for ((id_a, a), (id_b, b)) in ref_est.iter().zip(&estimates) {
                        assert_eq!(id_a, id_b);
                        assert_eq!(a.to_bits(), b.to_bits(), "workers={workers} cell {id_a}");
                    }
                    assert_eq!(ref_pred.len(), predictions.len());
                    for ((id_a, a), (id_b, b)) in ref_pred.iter().zip(&predictions) {
                        assert_eq!(id_a, id_b, "workers={workers}: prediction order");
                        assert_eq!(a.to_bits(), b.to_bits(), "workers={workers} cell {id_a}");
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_ticks_reuse_pool_without_leaking_shards() {
        let mut engine = engine_with_workers(64, 4, 2);
        let workload = WorkloadQuery {
            avg_current_a: 1.0,
            avg_temperature_c: 25.0,
            horizon_s: 60.0,
        };
        for tick in 1..=20 {
            for id in 0..64u64 {
                engine.ingest(id, telemetry(tick as f64));
            }
            let (absorbed, estimated) = engine.process_pending();
            assert_eq!((absorbed, estimated), (64, 64), "tick {tick}");
            assert_eq!(engine.predict_all(workload).len(), 64, "tick {tick}");
        }
        // All shards are back in place for direct access.
        assert_eq!(engine.len(), 64);
        assert!(engine.stage_times().total() > Duration::ZERO);
        engine.reset_stage_times();
        assert_eq!(engine.stage_times(), StageTimes::default());
    }

    #[test]
    fn predict_all_covers_reporting_cells_and_matches_scalar() {
        let mut engine = engine_with(30, 3);
        for id in 0..20 {
            engine.ingest(id, telemetry(5.0));
        }
        engine.process_pending();
        let workload = WorkloadQuery {
            avg_current_a: 3.0,
            avg_temperature_c: 25.0,
            horizon_s: 120.0,
        };
        let predictions = engine.predict_all(workload);
        assert_eq!(predictions.len(), 20, "only reporting cells predicted");
        let model = engine.registry().current();
        let scalar = model.predict(3.7, 1.0, 25.0, 3.0, 25.0, 120.0);
        for (id, p) in predictions {
            assert!(id < 20);
            assert_eq!(p.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn predict_cells_preserves_positions() {
        let mut engine = engine_with(10, 2);
        engine.ingest(3, telemetry(1.0));
        engine.process_pending();
        let workload = WorkloadQuery {
            avg_current_a: 1.0,
            avg_temperature_c: 25.0,
            horizon_s: 60.0,
        };
        let out = engine.predict_cells(&[3, 9999, 4, 3], workload);
        assert!(out[0].is_some());
        assert_eq!(out[1], None, "unknown id");
        assert_eq!(out[2], None, "never reported");
        assert_eq!(out[0], out[3], "duplicate id predicts identically");
    }

    #[test]
    fn hot_swap_applies_to_next_pass() {
        let mut engine = engine_with(4, 2);
        engine.ingest(0, telemetry(1.0));
        engine.process_pending();
        let before = engine.estimate(0).unwrap().0;
        // Swap in a model with different weights: estimates must move at
        // the next processing pass, and old passes stay untouched.
        let mut replacement = crate::testing::untrained_model_seeded(99);
        replacement.label = "swapped".into();
        engine.registry().swap(replacement);
        assert_eq!(
            engine.estimate(0).unwrap().0,
            before,
            "swap alone rewrites nothing"
        );
        engine.ingest(0, telemetry(2.0));
        engine.process_pending();
        let after = engine.estimate(0).unwrap().0;
        assert_ne!(after, before, "new weights must change the estimate");
        assert_eq!(engine.registry().version(), 2);
    }

    #[test]
    fn aggregates_histogram_below_and_stats() {
        let mut engine = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards: 2,
                micro_batch: 16,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
        );
        for id in 0..10 {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.05 + id as f64 * 0.1,
                    capacity_ah: 3.0,
                },
            );
            engine.ingest(
                id,
                Telemetry {
                    time_s: 0.0,
                    voltage_v: 3.7,
                    current_a: 0.0,
                    temperature_c: 25.0,
                },
            );
        }
        engine.process_pending();
        let histogram = engine.soc_histogram(5);
        assert_eq!(histogram.iter().sum::<usize>(), 10);
        let stats = engine.stats();
        assert_eq!(stats.cells, 10);
        assert_eq!(stats.reporting, 10);
        assert!(stats.min_soc <= stats.mean_soc && stats.mean_soc <= stats.max_soc);
        let below = engine.cells_below(2.0);
        assert_eq!(below.len(), 10, "threshold above every estimate");
        assert!(below.windows(2).all(|w| w[0] < w[1]), "sorted ids");
    }

    #[test]
    fn time_to_empty_uses_best_estimate() {
        let mut engine = engine_with(2, 1);
        engine.ingest(0, telemetry(0.0));
        engine.process_pending();
        let (soc, _) = engine.estimate(0).unwrap();
        let tte = engine.time_to_empty(0, 3.0).unwrap();
        assert!((tte - soc * 3600.0 * 3.0 / 3.0).abs() < 1e-9);
        assert_eq!(engine.time_to_empty(1, 3.0), None, "no telemetry yet");
    }

    #[test]
    fn stage_times_cover_all_pipeline_stages() {
        let mut engine = engine_with(500, 2);
        for id in 0..500u64 {
            engine.ingest(id, telemetry(1.0));
        }
        engine.process_pending();
        let stages = engine.stage_times();
        // Every stage ran; on fast hosts an individual stage can round to
        // zero, but the total cannot.
        assert!(stages.total() > Duration::ZERO);
        assert!(stages.total() >= stages.gemm);
    }

    #[test]
    fn telemetry_stats_count_rejections_by_cause() {
        let mut engine = engine_with(4, 2);
        engine.ingest(0, telemetry(10.0));
        engine.ingest(0, telemetry(10.0)); // duplicate timestamp
        engine.ingest(0, telemetry(5.0)); // time-reversed
        let mut bad = telemetry(20.0);
        bad.current_a = f64::NAN;
        engine.ingest(0, bad); // non-finite
        assert!(!engine.ingest(999, telemetry(1.0)), "unknown id");
        engine.process_pending();
        let stats = engine.telemetry_stats();
        assert_eq!(
            stats,
            TelemetryStats {
                accepted: 2,
                duplicate_timestamp: 1,
                rejected_non_finite: 1,
                rejected_time_reversed: 1,
                unknown_cell: 1,
            }
        );
        assert_eq!(stats.rejected(), 3);
        // The breakdown accessor mirrors the per-cell estimators.
        let b = engine.estimate_breakdown(0).expect("cell 0 reported");
        assert!(b.network_fresh);
        assert_eq!(b.best.1, SocEstimate::Network);
        assert_eq!(b.ekf, None, "EKF fallback disabled in this engine");
        assert_eq!(engine.estimate_breakdown(1), None, "never reported");
        assert_eq!(engine.estimate_breakdown(999), None, "unknown id");
    }

    #[test]
    fn deregister_removes_cell_and_leaves_others_bit_unchanged() {
        let mut engine = engine_with(40, 4);
        let feed = |engine: &mut FleetEngine, t: f64| {
            for id in 0..40u64 {
                engine.ingest(
                    id,
                    Telemetry {
                        time_s: t,
                        voltage_v: 3.3 + id as f64 * 0.01,
                        current_a: (id % 5) as f64 * 0.4,
                        temperature_c: 21.0 + id as f64 * 0.1,
                    },
                );
            }
        };
        feed(&mut engine, 1.0);
        engine.process_pending();
        let before: Vec<(u64, u64)> = (0..40u64)
            .filter(|&id| id != 17)
            .map(|id| (id, engine.estimate(id).unwrap().0.to_bits()))
            .collect();
        assert!(engine.deregister(17));
        assert!(!engine.deregister(17), "double deregister");
        assert!(!engine.deregister(9999), "unknown id");
        assert_eq!(engine.len(), 39);
        assert!(!engine.contains(17));
        assert_eq!(engine.estimate(17), None);
        let mut ids = engine.ids();
        ids.sort_unstable();
        assert_eq!(ids.len(), 39);
        assert!(!ids.contains(&17));
        // Remaining estimates are untouched bit-for-bit by the removal.
        for (id, bits) in &before {
            assert_eq!(
                engine.estimate(*id).unwrap().0.to_bits(),
                *bits,
                "cell {id} changed across deregister"
            );
        }
        // Telemetry to the removed id is rejected at ingest; everyone else
        // keeps ticking, bit-matching a control engine that processed the
        // same stream (per-cell math is slot-independent).
        assert!(!engine.ingest(17, telemetry(2.0)));
        feed(&mut engine, 2.0);
        let (absorbed, _) = engine.process_pending();
        assert_eq!(absorbed, 39);
        let mut control = engine_with(40, 4);
        feed(&mut control, 1.0);
        control.process_pending();
        control.deregister(17);
        feed(&mut control, 2.0);
        control.process_pending();
        for id in (0..40u64).filter(|&id| id != 17) {
            assert_eq!(
                engine.estimate(id).unwrap().0.to_bits(),
                control.estimate(id).unwrap().0.to_bits(),
                "cell {id} diverged post-deregister"
            );
        }
        // The explicit ingest above plus feed()'s own attempt at id 17.
        assert_eq!(engine.telemetry_stats().unknown_cell, 2);
    }

    #[test]
    fn deregister_with_pending_telemetry_remaps_swapped_cell() {
        // One shard, so slots are dense: deregistering slot 0 swaps the last
        // cell (highest id) into it while its telemetry is still queued.
        let mut engine = engine_with(8, 1);
        for id in 0..8u64 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: 1.0,
                    voltage_v: 3.2 + id as f64 * 0.05,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            );
        }
        assert!(engine.deregister(0));
        let (absorbed, estimated) = engine.process_pending();
        // All 8 reports count as absorbed (the doomed cell's is flushed at
        // deregister so the books match across worker counts), but only the
        // 7 survivors estimate.
        assert_eq!((absorbed, estimated), (8, 7), "queued reports survive");
        let model = engine.registry().current();
        for id in 1..8u64 {
            let (soc, _) = engine.estimate(id).unwrap();
            let scalar = model
                .estimate(3.2 + id as f64 * 0.05, 1.0, 25.0)
                .clamp(0.0, 1.0);
            assert_eq!(soc.to_bits(), scalar.to_bits(), "cell {id}");
        }
        // The freed id can re-register and serve again.
        assert!(engine.register(0, CellConfig::default()));
        assert!(engine.ingest(0, telemetry(2.0)));
        engine.process_pending();
        assert!(engine.estimate(0).is_some());
    }

    #[test]
    fn attached_obs_records_fleet_series_and_leaves_estimates_bit_identical() {
        let feed = |engine: &mut FleetEngine, t: f64| {
            for id in 0..120u64 {
                engine.ingest(
                    id,
                    Telemetry {
                        time_s: t,
                        voltage_v: 3.2 + id as f64 * 0.006,
                        current_a: (id % 7) as f64 * 0.3,
                        temperature_c: 19.0 + id as f64 * 0.08,
                    },
                );
            }
        };
        let hub = pinnsoc_obs::ObsHub::new();
        let mut observed = engine_with_workers(120, 4, 2);
        observed.attach_obs(&hub);
        assert!(observed.obs_hub().is_some());
        let mut control = engine_with_workers(120, 4, 2);
        assert!(control.obs_hub().is_none());
        for tick in 1..=3 {
            feed(&mut observed, tick as f64);
            feed(&mut control, tick as f64);
            assert_eq!(observed.process_pending(), control.process_pending());
        }
        // Bit-identity: instrumentation must not perturb a single estimate.
        for id in 0..120u64 {
            assert_eq!(
                observed.estimate(id).unwrap().0.to_bits(),
                control.estimate(id).unwrap().0.to_bits(),
                "cell {id}"
            );
        }
        // The series landed: stage histograms, tick counters, gauges.
        let snap = hub.snapshot();
        assert_eq!(
            snap.metrics
                .counter_total("pinnsoc_fleet_reports_absorbed_total"),
            360
        );
        assert_eq!(snap.metrics.counter_total("pinnsoc_fleet_ticks_total"), 3);
        let gemm = snap
            .metrics
            .find("pinnsoc_fleet_stage_seconds", &[("stage", "gemm")])
            .expect("gemm stage series");
        let SampleValue::Histogram(gemm) = &gemm.value else {
            panic!("stage series must be a histogram");
        };
        assert!(gemm.count > 0, "at least one shard pass per tick");
        assert!(gemm.quantile(0.99) >= gemm.quantile(0.5));
        match snap.metrics.find("pinnsoc_fleet_cells", &[]).unwrap().value {
            SampleValue::Gauge(v) => assert_eq!(v, 120.0),
            ref v => panic!("{v:?}"),
        }
        // A swap shows up as a version gauge bump and a ring event.
        observed.registry().swap(untrained_model());
        feed(&mut observed, 10.0);
        observed.process_pending();
        let snap = hub.snapshot();
        match snap
            .metrics
            .find("pinnsoc_fleet_model_version", &[])
            .unwrap()
            .value
        {
            SampleValue::Gauge(v) => assert_eq!(v, 2.0),
            ref v => panic!("{v:?}"),
        }
        assert!(snap
            .events
            .iter()
            .any(|e| e.source == "fleet" && e.message.contains("model swap to v2")));
        // Telemetry books export by outcome, including unknown cells.
        observed.ingest(9999, telemetry(1.0));
        observed.process_pending();
        let snap = hub.snapshot();
        let unknown = snap
            .metrics
            .find(
                "pinnsoc_fleet_telemetry_reports_total",
                &[("outcome", "unknown_cell")],
            )
            .unwrap();
        match unknown.value {
            SampleValue::Counter(n) => assert_eq!(n, 1),
            ref v => panic!("{v:?}"),
        }
        // Prometheus exposition renders without panicking and includes
        // the fleet namespace.
        assert!(hub
            .prometheus()
            .contains("pinnsoc_fleet_tick_seconds_bucket"));
    }

    #[test]
    fn telemetry_stats_delta_is_per_field_and_saturating() {
        let prev = TelemetryStats {
            accepted: 10,
            duplicate_timestamp: 2,
            rejected_non_finite: 1,
            rejected_time_reversed: 0,
            unknown_cell: 5,
        };
        let now = TelemetryStats {
            accepted: 15,
            duplicate_timestamp: 2,
            rejected_non_finite: 4,
            rejected_time_reversed: 1,
            unknown_cell: 3, // behind: a different engine's book
        };
        let d = now.delta(&prev);
        assert_eq!(
            d,
            TelemetryStats {
                accepted: 5,
                duplicate_timestamp: 0,
                rejected_non_finite: 3,
                rejected_time_reversed: 1,
                unknown_cell: 0,
            }
        );
        assert_eq!(now.delta(&now), TelemetryStats::default());
    }

    /// Builds an int8-mode engine with cells registered and a quantized
    /// shadow of the incumbent already installed through the certificate
    /// door.
    fn quantized_engine(cells: u64, shards: usize, workers: usize) -> FleetEngine {
        let mut engine = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards,
                micro_batch: 8,
                workers,
                ekf_fallback: None,
                serving: ServingMode::Int8,
            },
        );
        for id in 0..cells {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            );
        }
        let registry = engine.registry();
        let quantized = Arc::new(crate::testing::quantize_untrained(&registry.current()));
        let cert = crate::registry::GateCertificate::attest(
            &registry.current(),
            registry.version(),
            0.02,
            0.02,
            crate::registry::GateTolerance::default(),
            2,
        )
        .unwrap();
        registry.install_quantized(quantized, &cert).unwrap();
        engine
    }

    /// The raw (unclamped) network estimate — [`FleetEngine::estimate`]
    /// clamps into `[0, 1]`, which would mask path differences whenever an
    /// untrained model saturates the clamp.
    fn raw_estimate(engine: &FleetEngine, id: u64) -> f64 {
        engine.cell(id).unwrap().network_estimate.unwrap().1
    }

    #[test]
    fn int8_mode_without_installed_shadow_is_bit_identical_f32() {
        let mut f32_engine = engine_with(40, 4);
        let mut int8_engine = engine_with(40, 4);
        int8_engine.config.serving = ServingMode::Int8;
        for id in 0..40 {
            f32_engine.ingest(id, telemetry(1.0));
            int8_engine.ingest(id, telemetry(1.0));
        }
        f32_engine.process_pending();
        int8_engine.process_pending();
        for id in 0..40 {
            assert_eq!(
                raw_estimate(&f32_engine, id).to_bits(),
                raw_estimate(&int8_engine, id).to_bits(),
                "no shadow installed: int8 mode must degrade to the f32 path"
            );
        }
    }

    #[test]
    fn int8_serving_differs_from_f32_but_tracks_it() {
        let mut f32_engine = engine_with(40, 4);
        let mut int8_engine = quantized_engine(40, 4, 0);
        for id in 0..40 {
            f32_engine.ingest(id, telemetry(1.0));
            int8_engine.ingest(id, telemetry(1.0));
        }
        assert_eq!(f32_engine.process_pending(), (40, 40));
        assert_eq!(int8_engine.process_pending(), (40, 40));
        let mut any_differ = false;
        for id in 0..40 {
            let src_f = f32_engine.estimate(id).unwrap().1;
            let src_q = int8_engine.estimate(id).unwrap().1;
            assert_eq!((src_f, src_q), (SocEstimate::Network, SocEstimate::Network));
            let f = raw_estimate(&f32_engine, id);
            let q = raw_estimate(&int8_engine, id);
            assert!((f - q).abs() < 0.1, "cell {id}: {f} vs {q}");
            any_differ |= f.to_bits() != q.to_bits();
        }
        assert!(any_differ, "int8 path suspiciously bit-identical to f32");
        // predict_all runs the quantized full pipeline.
        let workload = WorkloadQuery {
            avg_current_a: 1.0,
            avg_temperature_c: 25.0,
            horizon_s: 60.0,
        };
        let f32_preds = f32_engine.predict_all(workload);
        let int8_preds = int8_engine.predict_all(workload);
        assert_eq!(f32_preds.len(), int8_preds.len());
        for ((id_f, p_f), (id_q, p_q)) in f32_preds.iter().zip(&int8_preds) {
            assert_eq!(id_f, id_q);
            assert!((p_f - p_q).abs() < 0.2, "cell {id_f}: {p_f} vs {p_q}");
        }
    }

    #[test]
    fn int8_serving_is_worker_count_invariant() {
        let runs: Vec<Vec<u64>> = [0usize, 2, 4]
            .iter()
            .map(|&workers| {
                let mut engine = quantized_engine(60, 4, workers);
                for id in 0..60 {
                    engine.ingest(id, telemetry(1.0));
                }
                engine.process_pending();
                (0..60)
                    .map(|id| raw_estimate(&engine, id).to_bits())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn swap_during_int8_serving_falls_back_to_new_f32_incumbent() {
        let mut engine = quantized_engine(20, 2, 0);
        for id in 0..20 {
            engine.ingest(id, telemetry(1.0));
        }
        engine.process_pending();
        // The swap clears the shadow; the next tick serves the new f32.
        let mut replacement = crate::testing::untrained_model_seeded(7);
        replacement.label = "v2".into();
        engine.registry().swap(replacement);
        assert!(engine.registry().quantized().is_none());
        let mut control = FleetEngine::new(
            crate::testing::untrained_model_seeded(7),
            FleetConfig {
                shards: 2,
                micro_batch: 8,
                workers: 0,
                ekf_fallback: None,
                ..FleetConfig::default()
            },
        );
        for id in 0..20 {
            control.register(
                id,
                CellConfig {
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            );
        }
        for id in 0..20 {
            engine.ingest(id, telemetry(2.0));
            control.ingest(id, telemetry(2.0));
        }
        engine.process_pending();
        control.process_pending();
        for id in 0..20 {
            assert_eq!(
                raw_estimate(&engine, id).to_bits(),
                raw_estimate(&control, id).to_bits(),
                "post-swap int8 mode must serve the new incumbent's exact f32 outputs"
            );
        }
    }

    #[test]
    fn empty_engine_is_harmless() {
        let mut engine = FleetEngine::new(untrained_model(), FleetConfig::default());
        assert!(engine.is_empty());
        assert_eq!(engine.process_pending(), (0, 0));
        assert_eq!(
            engine.predict_all(WorkloadQuery {
                avg_current_a: 1.0,
                avg_temperature_c: 25.0,
                horizon_s: 60.0,
            }),
            vec![]
        );
        assert_eq!(engine.soc_histogram(4), vec![0, 0, 0, 0]);
        assert_eq!(engine.stats().reporting, 0);
    }

    /// Regression for the modulo-route key bug: with a non-power-of-two
    /// shard count the index key used to be the *full* id, so consecutive
    /// producer ids occupied every `shards`-th dense-table entry and (for
    /// shard counts above the dense slack) migrated every shard to the
    /// hash path. With `id / shards` keys, consecutive ids fill each
    /// shard's table contiguously and every shard stays dense.
    #[test]
    fn consecutive_ids_stay_dense_on_non_power_of_two_shards() {
        // 17 > DENSE_SLACK, so the old full-id keys would migrate to hash
        // at id ≈ 272; 10k ids make the regression unmissable.
        let engine = engine_with(10_000, 17);
        for idx in 0..17 {
            let shard = engine.shards[idx].as_ref().expect("shard present");
            assert!(
                shard.index.is_dense(),
                "shard {idx} migrated to the hash representation on \
                 consecutive ids"
            );
        }
        // Spot-check the index still resolves.
        assert!(engine.contains(0) && engine.contains(9_999));
        assert!(!engine.contains(10_000));
    }

    mod route_props {
        use super::super::FleetEngine;
        use proptest::prelude::*;
        use std::collections::{HashMap, HashSet};

        proptest! {
            /// Injectivity: two distinct ids routed to the same shard must
            /// get distinct keys — on both the power-of-two and the modulo
            /// route. (A collision would make one cell's state silently
            /// alias another's.)
            #[test]
            fn route_is_injective_per_shard(
                shards in 1usize..=40,
                ids in collection::vec(0u64..=u64::MAX, 1usize..200),
            ) {
                let ids: HashSet<u64> = ids.into_iter().collect();
                let mut seen: HashMap<usize, HashMap<u64, u64>> = HashMap::new();
                for &id in &ids {
                    let (shard, key) = FleetEngine::route(shards, id);
                    prop_assert!(shard < shards, "shard selector out of range");
                    if let Some(prior) = seen.entry(shard).or_default().insert(key, id) {
                        prop_assert_eq!(
                            prior, id,
                            "ids {} and {} collide on shard {} key {}",
                            prior, id, shard, key
                        );
                    }
                }
            }

            /// Dense occupancy: routing consecutive ids `0..n` must fill
            /// each shard's key space contiguously from zero — keys are
            /// exactly `0..count` per shard, with no gaps that would waste
            /// dense-table entries or trigger premature hash migration.
            #[test]
            fn consecutive_ids_fill_shard_keys_contiguously(
                shards in 1usize..=40,
                n in 1u64..3_000,
            ) {
                let mut keys_per_shard: Vec<HashSet<u64>> = vec![HashSet::new(); shards];
                for id in 0..n {
                    let (shard, key) = FleetEngine::route(shards, id);
                    prop_assert!(
                        keys_per_shard[shard].insert(key),
                        "duplicate key {} on shard {}", key, shard
                    );
                }
                for (shard, keys) in keys_per_shard.iter().enumerate() {
                    let count = keys.len() as u64;
                    for k in 0..count {
                        prop_assert!(
                            keys.contains(&k),
                            "shard {} is missing key {} (count {}): keys are \
                             not dense from zero",
                            shard, k, count
                        );
                    }
                }
            }
        }
    }
}
