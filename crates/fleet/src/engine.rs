//! The fleet engine: sharded per-cell state, micro-batched inference, and
//! fleet-level queries.

use crate::cell::{CellConfig, CellEntry, SocEstimate};
use crate::registry::ModelRegistry;
use crate::telemetry::{CellId, Telemetry};
use pinnsoc::{BatchScratch, PredictQuery, SocModel};
use pinnsoc_battery::CellParams;
use std::collections::HashMap;
use std::sync::Arc;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards; cells are distributed by `id % shards` and shards
    /// are processed on one `std::thread` worker each. Defaults to the
    /// machine's available parallelism.
    pub shards: usize,
    /// Cells per batched forward pass. Micro-batches bound the latency of a
    /// model hot-swap (a swap applies at the next batch boundary) and keep
    /// per-worker scratch buffers cache-resident (256 rows × 32-wide
    /// hidden layers ≈ 32 kB per ping-pong buffer — L1-sized; measured
    /// fastest among 128–4096 on the reference core).
    pub micro_batch: usize,
    /// When set, every registered cell carries an EKF fallback estimator
    /// built from these parameters (used when no network estimate covers
    /// the latest telemetry).
    pub ekf_fallback: Option<CellParams>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(4, usize::from),
            micro_batch: 256,
            ekf_fallback: None,
        }
    }
}

/// A described future workload, applied to one or many cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadQuery {
    /// Expected average current over the horizon, amps.
    pub avg_current_a: f64,
    /// Expected average temperature over the horizon, °C.
    pub avg_temperature_c: f64,
    /// Prediction horizon `N`, seconds.
    pub horizon_s: f64,
}

/// Fleet-level summary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Registered cells.
    pub cells: usize,
    /// Cells with at least one accepted telemetry report.
    pub reporting: usize,
    /// Mean best-estimate SoC over reporting cells (0 when none report).
    pub mean_soc: f64,
    /// Minimum best-estimate SoC over reporting cells (0 when none report).
    pub min_soc: f64,
    /// Maximum best-estimate SoC over reporting cells (0 when none report).
    pub max_soc: f64,
}

/// One shard: a slice of the fleet owned by one worker during batch
/// processing.
struct Shard {
    cells: Vec<CellEntry>,
    index: HashMap<CellId, usize>,
    /// Accepted-but-unprocessed telemetry in arrival order.
    pending: Vec<(usize, Telemetry)>,
    /// Per-worker inference scratch (lives with the shard so steady-state
    /// processing allocates nothing).
    scratch: BatchScratch,
    /// Reused list of slots touched since the last pass (same
    /// zero-steady-state-allocation rationale as `scratch`).
    dirty: Vec<usize>,
    /// Monotonic processing-pass counter backing the O(1) dirty-slot dedup.
    generation: u64,
    /// Cells that have accepted at least one report — lets the engine skip
    /// worker spawns for shards with nothing to predict.
    reporting: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            cells: Vec::new(),
            index: HashMap::new(),
            pending: Vec::new(),
            scratch: BatchScratch::default(),
            dirty: Vec::new(),
            generation: 0,
            reporting: 0,
        }
    }

    /// Drains pending telemetry into the per-cell integrators, then runs
    /// the network over every touched cell in micro-batches. Telemetry is
    /// coalesced: a cell reporting five times since the last pass is
    /// integrated five times but estimated once, at its latest reading.
    /// Returns `(reports_absorbed, cells_estimated)`.
    fn process(&mut self, model: &SocModel, micro_batch: usize) -> (usize, usize) {
        let mut absorbed = 0usize;
        self.generation += 1;
        self.dirty.clear();
        // drain(..) keeps the pending queue's capacity for the next tick
        // (mem::take would re-grow it from zero every pass).
        let (cells, dirty) = (&mut self.cells, &mut self.dirty);
        for (slot, telemetry) in self.pending.drain(..) {
            if cells[slot].absorb(telemetry) {
                absorbed += 1;
                if cells[slot].reports == 1 {
                    self.reporting += 1;
                }
                if cells[slot].dirty_generation != self.generation {
                    cells[slot].dirty_generation = self.generation;
                    dirty.push(slot);
                }
            }
        }
        let mut readings: Vec<[f64; 3]> = Vec::with_capacity(micro_batch.min(dirty.len()));
        let mut estimates: Vec<f64> = Vec::with_capacity(micro_batch.min(dirty.len()));
        for batch in dirty.chunks(micro_batch) {
            readings.clear();
            estimates.clear();
            for &slot in batch {
                let latest = cells[slot].latest.expect("dirty cells have telemetry");
                readings.push([latest.voltage_v, latest.current_a, latest.temperature_c]);
            }
            model.estimate_batch_into(&readings, &mut self.scratch, &mut estimates);
            for (&slot, &soc) in batch.iter().zip(&estimates) {
                let time_s = cells[slot].latest.expect("has telemetry").time_s;
                cells[slot].network_estimate = Some((time_s, soc));
            }
        }
        (absorbed, dirty.len())
    }

    /// Batched full-pipeline prediction for every reporting cell under one
    /// described workload.
    fn predict_all(
        &mut self,
        model: &SocModel,
        workload: &WorkloadQuery,
        micro_batch: usize,
    ) -> Vec<(CellId, f64)> {
        let reporting: Vec<usize> = (0..self.cells.len())
            .filter(|&s| self.cells[s].latest.is_some())
            .collect();
        let mut out = Vec::with_capacity(reporting.len());
        let mut queries: Vec<PredictQuery> = Vec::with_capacity(micro_batch.min(reporting.len()));
        let mut predictions: Vec<f64> = Vec::with_capacity(micro_batch.min(reporting.len()));
        for batch in reporting.chunks(micro_batch) {
            queries.clear();
            predictions.clear();
            for &slot in batch {
                let latest = self.cells[slot].latest.expect("filtered to reporting");
                queries.push(PredictQuery {
                    voltage_v: latest.voltage_v,
                    current_a: latest.current_a,
                    temperature_c: latest.temperature_c,
                    avg_current_a: workload.avg_current_a,
                    avg_temperature_c: workload.avg_temperature_c,
                    horizon_s: workload.horizon_s,
                });
            }
            model.predict_batch_into(&queries, &mut self.scratch, &mut predictions);
            out.extend(
                batch
                    .iter()
                    .zip(&predictions)
                    .map(|(&s, &p)| (self.cells[s].id, p)),
            );
        }
        out
    }
}

/// Tracks a fleet of cells and serves SoC estimates and predictions
/// through batched forward passes.
///
/// See the crate docs for the architecture; the short version: cells are
/// sharded by id, telemetry is queued per shard, and
/// [`FleetEngine::process_pending`] fans the shards out over scoped
/// `std::thread` workers, each running micro-batched GEMMs against a pinned
/// model snapshot from the [`ModelRegistry`].
pub struct FleetEngine {
    registry: Arc<ModelRegistry>,
    config: FleetConfig,
    shards: Vec<Shard>,
}

impl FleetEngine {
    /// Creates an engine serving `model` with the given configuration.
    /// Zero values in the config are lifted to 1.
    pub fn new(model: SocModel, config: FleetConfig) -> Self {
        let config = FleetConfig {
            shards: config.shards.max(1),
            micro_batch: config.micro_batch.max(1),
            ..config
        };
        let shards = (0..config.shards).map(|_| Shard::new()).collect();
        Self {
            registry: Arc::new(ModelRegistry::new(model)),
            config,
            shards,
        }
    }

    /// The model registry, for hot swaps (shareable across threads).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The engine configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn shard_of(&self, id: CellId) -> usize {
        (id % self.config.shards as u64) as usize
    }

    /// Registers a cell. Returns `false` (without changes) when the id is
    /// already registered.
    pub fn register(&mut self, id: CellId, config: CellConfig) -> bool {
        let ekf = self.config.ekf_fallback.clone();
        let shard_idx = self.shard_of(id);
        let shard = &mut self.shards[shard_idx];
        if shard.index.contains_key(&id) {
            return false;
        }
        shard.index.insert(id, shard.cells.len());
        shard.cells.push(CellEntry::new(id, &config, ekf.as_ref()));
        true
    }

    /// Registered cell count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cells.len()).sum()
    }

    /// True when no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.cells.is_empty())
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: CellId) -> bool {
        self.shards[self.shard_of(id)].index.contains_key(&id)
    }

    /// Queues one telemetry report. Returns `false` for unknown cells.
    /// Integration and estimation happen at the next
    /// [`FleetEngine::process_pending`].
    pub fn ingest(&mut self, id: CellId, telemetry: Telemetry) -> bool {
        let shard_idx = self.shard_of(id);
        let shard = &mut self.shards[shard_idx];
        match shard.index.get(&id) {
            Some(&slot) => {
                shard.pending.push((slot, telemetry));
                true
            }
            None => false,
        }
    }

    /// Drains all queued telemetry and refreshes network estimates for
    /// every touched cell, fanning shards out over scoped worker threads.
    /// Returns `(reports_absorbed, cells_estimated)` fleet-wide.
    pub fn process_pending(&mut self) -> (usize, usize) {
        let micro_batch = self.config.micro_batch;
        let registry = &self.registry;
        let results: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                // Idle shards contribute (0, 0) by construction — don't pay
                // a thread spawn for them (sparse-telemetry ticks commonly
                // touch a few shards out of many).
                .filter(|shard| !shard.pending.is_empty())
                .map(|shard| {
                    // Each worker pins its own model snapshot: a concurrent
                    // hot-swap applies cleanly at the next pass.
                    let model = registry.current();
                    scope.spawn(move || shard.process(&model, micro_batch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        results
            .into_iter()
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    }

    /// Best current SoC estimate for one cell, with its source.
    pub fn estimate(&self, id: CellId) -> Option<(f64, SocEstimate)> {
        let shard = &self.shards[self.shard_of(id)];
        shard
            .index
            .get(&id)
            .and_then(|&slot| shard.cells[slot].estimate())
    }

    /// Read access to one cell's full tracked state.
    pub fn cell(&self, id: CellId) -> Option<&CellEntry> {
        let shard = &self.shards[self.shard_of(id)];
        shard.index.get(&id).map(|&slot| &shard.cells[slot])
    }

    /// Batched full-pipeline prediction for every reporting cell under one
    /// described workload, fanned out across shard workers. Results are in
    /// shard order; pair order within a shard follows registration order.
    pub fn predict_all(&mut self, workload: WorkloadQuery) -> Vec<(CellId, f64)> {
        let micro_batch = self.config.micro_batch;
        let registry = &self.registry;
        let mut per_shard: Vec<Vec<(CellId, f64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                // Shards with no reporting cells return an empty Vec by
                // construction — skip their worker spawns.
                .filter(|shard| shard.reporting > 0)
                .map(|shard| {
                    let model = registry.current();
                    scope.spawn(move || shard.predict_all(&model, &workload, micro_batch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let total = per_shard.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in &mut per_shard {
            out.append(chunk);
        }
        out
    }

    /// Batched prediction for an explicit set of cells under one workload.
    /// Unknown or never-reporting cells yield `None` at their position.
    pub fn predict_cells(&mut self, ids: &[CellId], workload: WorkloadQuery) -> Vec<Option<f64>> {
        let model = self.registry.current();
        let mut queries = Vec::with_capacity(ids.len());
        let mut positions = Vec::with_capacity(ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            let shard = &self.shards[self.shard_of(id)];
            if let Some(&slot) = shard.index.get(&id) {
                if let Some(latest) = shard.cells[slot].latest {
                    queries.push(PredictQuery {
                        voltage_v: latest.voltage_v,
                        current_a: latest.current_a,
                        temperature_c: latest.temperature_c,
                        avg_current_a: workload.avg_current_a,
                        avg_temperature_c: workload.avg_temperature_c,
                        horizon_s: workload.horizon_s,
                    });
                    positions.push(pos);
                }
            }
        }
        let mut out = vec![None; ids.len()];
        let mut predictions = Vec::with_capacity(queries.len());
        let scratch = &mut self.shards[0].scratch;
        for (batch, pos_batch) in queries
            .chunks(self.config.micro_batch)
            .zip(positions.chunks(self.config.micro_batch))
        {
            predictions.clear();
            model.predict_batch_into(batch, scratch, &mut predictions);
            for (&pos, &p) in pos_batch.iter().zip(&predictions) {
                out[pos] = Some(p);
            }
        }
        out
    }

    /// Predicted seconds until empty for one cell at a constant discharge
    /// current.
    pub fn time_to_empty(&self, id: CellId, discharge_current_a: f64) -> Option<f64> {
        let shard = &self.shards[self.shard_of(id)];
        shard
            .index
            .get(&id)
            .and_then(|&slot| shard.cells[slot].time_to_empty_s(discharge_current_a))
    }

    /// Histogram of best-estimate SoC over reporting cells: `bins` equal
    /// buckets over `[0, 1]`, the last bucket closed.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn soc_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        let mut histogram = vec![0usize; bins];
        self.for_each_estimate(|_, soc| {
            let bin = ((soc * bins as f64) as usize).min(bins - 1);
            histogram[bin] += 1;
        });
        histogram
    }

    /// Ids of reporting cells whose best estimate is below `threshold`,
    /// ascending.
    pub fn cells_below(&self, threshold: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.for_each_estimate(|id, soc| {
            if soc < threshold {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    /// Fleet-level summary statistics.
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            cells: self.len(),
            reporting: 0,
            mean_soc: 0.0,
            min_soc: f64::MAX,
            max_soc: f64::MIN,
        };
        self.for_each_estimate(|_, soc| {
            stats.reporting += 1;
            stats.mean_soc += soc;
            stats.min_soc = stats.min_soc.min(soc);
            stats.max_soc = stats.max_soc.max(soc);
        });
        if stats.reporting == 0 {
            stats.min_soc = 0.0;
            stats.max_soc = 0.0;
        } else {
            stats.mean_soc /= stats.reporting as f64;
        }
        stats
    }

    fn for_each_estimate(&self, mut f: impl FnMut(CellId, f64)) {
        for shard in &self.shards {
            for cell in &shard.cells {
                if let Some((soc, _)) = cell.estimate() {
                    f(cell.id, soc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::untrained_model;

    fn telemetry(time_s: f64) -> Telemetry {
        Telemetry {
            time_s,
            voltage_v: 3.7,
            current_a: 1.0,
            temperature_c: 25.0,
        }
    }

    fn engine_with(cells: u64, shards: usize) -> FleetEngine {
        let mut engine = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards,
                micro_batch: 8,
                ekf_fallback: None,
            },
        );
        for id in 0..cells {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.9,
                    capacity_ah: 3.0,
                },
            );
        }
        engine
    }

    #[test]
    fn register_ingest_process_estimate_roundtrip() {
        let mut engine = engine_with(100, 4);
        assert_eq!(engine.len(), 100);
        assert!(engine.contains(42) && !engine.contains(1000));
        assert!(
            !engine.register(42, CellConfig::default()),
            "duplicate register"
        );
        assert!(engine.ingest(42, telemetry(1.0)));
        assert!(
            !engine.ingest(1000, telemetry(1.0)),
            "unknown cell accepted"
        );
        let (absorbed, estimated) = engine.process_pending();
        assert_eq!((absorbed, estimated), (1, 1));
        let (soc, source) = engine.estimate(42).expect("estimated");
        assert_eq!(source, SocEstimate::Network);
        assert!(soc.is_finite());
        assert_eq!(
            engine.estimate(7),
            None,
            "never-reporting cell has no estimate"
        );
    }

    #[test]
    fn coalescing_integrates_every_report_but_estimates_once() {
        let mut engine = engine_with(1, 1);
        for k in 0..5 {
            engine.ingest(0, telemetry(k as f64 * 10.0));
        }
        let (absorbed, estimated) = engine.process_pending();
        assert_eq!(absorbed, 5);
        assert_eq!(
            estimated, 1,
            "five reports must coalesce into one batch slot"
        );
    }

    #[test]
    fn batched_estimates_match_scalar_model_calls() {
        let mut engine = engine_with(50, 4);
        for id in 0..50 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: 1.0,
                    voltage_v: 3.2 + id as f64 * 0.015,
                    current_a: id as f64 * 0.1,
                    temperature_c: 20.0 + id as f64 * 0.2,
                },
            );
        }
        engine.process_pending();
        let model = engine.registry().current();
        for id in 0..50 {
            let (soc, _) = engine.estimate(id).unwrap();
            // `CellEntry::estimate` clamps the raw regression output into
            // [0, 1] for fleet aggregates; compare against the clamped
            // scalar call. Raw batched-vs-scalar parity (unclamped) is
            // covered by the predict_batch tests here and in `pinnsoc`.
            let scalar = model
                .estimate(
                    3.2 + id as f64 * 0.015,
                    id as f64 * 0.1,
                    20.0 + id as f64 * 0.2,
                )
                .clamp(0.0, 1.0);
            assert_eq!(soc.to_bits(), scalar.to_bits(), "cell {id}");
        }
    }

    #[test]
    fn predict_all_covers_reporting_cells_and_matches_scalar() {
        let mut engine = engine_with(30, 3);
        for id in 0..20 {
            engine.ingest(id, telemetry(5.0));
        }
        engine.process_pending();
        let workload = WorkloadQuery {
            avg_current_a: 3.0,
            avg_temperature_c: 25.0,
            horizon_s: 120.0,
        };
        let predictions = engine.predict_all(workload);
        assert_eq!(predictions.len(), 20, "only reporting cells predicted");
        let model = engine.registry().current();
        let scalar = model.predict(3.7, 1.0, 25.0, 3.0, 25.0, 120.0);
        for (id, p) in predictions {
            assert!(id < 20);
            assert_eq!(p.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn predict_cells_preserves_positions() {
        let mut engine = engine_with(10, 2);
        engine.ingest(3, telemetry(1.0));
        engine.process_pending();
        let workload = WorkloadQuery {
            avg_current_a: 1.0,
            avg_temperature_c: 25.0,
            horizon_s: 60.0,
        };
        let out = engine.predict_cells(&[3, 9999, 4, 3], workload);
        assert!(out[0].is_some());
        assert_eq!(out[1], None, "unknown id");
        assert_eq!(out[2], None, "never reported");
        assert_eq!(out[0], out[3], "duplicate id predicts identically");
    }

    #[test]
    fn hot_swap_applies_to_next_pass() {
        let mut engine = engine_with(4, 2);
        engine.ingest(0, telemetry(1.0));
        engine.process_pending();
        let before = engine.estimate(0).unwrap().0;
        // Swap in a model with different weights: estimates must move at
        // the next processing pass, and old passes stay untouched.
        let mut replacement = crate::testing::untrained_model_seeded(99);
        replacement.label = "swapped".into();
        engine.registry().swap(replacement);
        assert_eq!(
            engine.estimate(0).unwrap().0,
            before,
            "swap alone rewrites nothing"
        );
        engine.ingest(0, telemetry(2.0));
        engine.process_pending();
        let after = engine.estimate(0).unwrap().0;
        assert_ne!(after, before, "new weights must change the estimate");
        assert_eq!(engine.registry().version(), 2);
    }

    #[test]
    fn aggregates_histogram_below_and_stats() {
        let mut engine = FleetEngine::new(
            untrained_model(),
            FleetConfig {
                shards: 2,
                micro_batch: 16,
                ekf_fallback: None,
            },
        );
        // Skip the network: drive estimates through Coulomb by never
        // processing (estimate falls back to the integrator).
        for id in 0..10 {
            engine.register(
                id,
                CellConfig {
                    initial_soc: 0.05 + id as f64 * 0.1,
                    capacity_ah: 3.0,
                },
            );
            engine.ingest(
                id,
                Telemetry {
                    time_s: 0.0,
                    voltage_v: 3.7,
                    current_a: 0.0,
                    temperature_c: 25.0,
                },
            );
        }
        // Absorb telemetry without running the network pass: ingest puts it
        // in the queue; drain through process_pending (which also runs the
        // network — fine, but we want Coulomb). Instead check aggregates on
        // network estimates directly.
        engine.process_pending();
        let histogram = engine.soc_histogram(5);
        assert_eq!(histogram.iter().sum::<usize>(), 10);
        let stats = engine.stats();
        assert_eq!(stats.cells, 10);
        assert_eq!(stats.reporting, 10);
        assert!(stats.min_soc <= stats.mean_soc && stats.mean_soc <= stats.max_soc);
        let below = engine.cells_below(2.0);
        assert_eq!(below.len(), 10, "threshold above every estimate");
        assert!(below.windows(2).all(|w| w[0] < w[1]), "sorted ids");
    }

    #[test]
    fn time_to_empty_uses_best_estimate() {
        let mut engine = engine_with(2, 1);
        engine.ingest(0, telemetry(0.0));
        engine.process_pending();
        let (soc, _) = engine.estimate(0).unwrap();
        let tte = engine.time_to_empty(0, 3.0).unwrap();
        assert!((tte - soc * 3600.0 * 3.0 / 3.0).abs() < 1e-9);
        assert_eq!(engine.time_to_empty(1, 3.0), None, "no telemetry yet");
    }

    #[test]
    fn empty_engine_is_harmless() {
        let mut engine = FleetEngine::new(untrained_model(), FleetConfig::default());
        assert!(engine.is_empty());
        assert_eq!(engine.process_pending(), (0, 0));
        assert_eq!(
            engine.predict_all(WorkloadQuery {
                avg_current_a: 1.0,
                avg_temperature_c: 25.0,
                horizon_s: 60.0,
            }),
            vec![]
        );
        assert_eq!(engine.soc_histogram(4), vec![0, 0, 0, 0]);
        assert_eq!(engine.stats().reporting, 0);
    }
}
