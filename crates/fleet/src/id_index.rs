//! Minimal open-addressing `CellId → slot` index for the ingest hot path.
//!
//! `std::collections::HashMap` pays SipHash on every probe — measurable at
//! fleet scale, where one tick performs one lookup per telemetry report
//! (100k+ lookups per pass). Cell ids are producer-minted integers, so a
//! multiplicative (Fibonacci) hash is enough to spread them, and the engine
//! never unregisters cells, so the table is insert-only: linear probing
//! with no tombstones, ~16 bytes per bucket, grown at 50% load.

use crate::telemetry::CellId;

/// Insert-only open-addressing map from [`CellId`] to a dense slot index.
#[derive(Debug, Clone)]
pub(crate) struct IdIndex {
    keys: Vec<CellId>,
    /// Slot per bucket; [`EMPTY`] marks an unused bucket.
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

/// 2^64 / φ — the Fibonacci hashing multiplier.
const MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

impl IdIndex {
    pub(crate) fn new() -> Self {
        let capacity = 16usize;
        Self {
            keys: vec![0; capacity],
            slots: vec![EMPTY; capacity],
            mask: capacity - 1,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, id: CellId) -> usize {
        // High bits of the multiplicative hash, folded to the table size
        // (power of two, so the shift keeps the best-mixed bits).
        (id.wrapping_mul(MULTIPLIER) >> (64 - self.mask.count_ones())) as usize & self.mask
    }

    /// Number of registered ids.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The slot registered for `id`, if any.
    #[inline]
    pub(crate) fn get(&self, id: CellId) -> Option<usize> {
        let mut bucket = self.bucket_of(id);
        loop {
            let slot = self.slots[bucket];
            if slot == EMPTY {
                return None;
            }
            if self.keys[bucket] == id {
                return Some(slot as usize);
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    /// Inserts `id → slot`. Returns `false` (without changes) when the id
    /// is already present.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit the internal `u32` representation
    /// (4 billion cells per shard is beyond the engine's design envelope).
    pub(crate) fn insert(&mut self, id: CellId, slot: usize) -> bool {
        assert!(slot < EMPTY as usize, "slot index overflows the id index");
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mut bucket = self.bucket_of(id);
        loop {
            if self.slots[bucket] == EMPTY {
                self.keys[bucket] = id;
                self.slots[bucket] = slot as u32;
                self.len += 1;
                return true;
            }
            if self.keys[bucket] == id {
                return false;
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_capacity = self.slots.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_capacity]);
        let old_slots = std::mem::replace(&mut self.slots, vec![EMPTY; new_capacity]);
        self.mask = new_capacity - 1;
        for (key, slot) in old_keys.into_iter().zip(old_slots) {
            if slot == EMPTY {
                continue;
            }
            let mut bucket = self.bucket_of(key);
            while self.slots[bucket] != EMPTY {
                bucket = (bucket + 1) & self.mask;
            }
            self.keys[bucket] = key;
            self.slots[bucket] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_with_growth() {
        let mut index = IdIndex::new();
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3; // strided ids
            assert!(index.insert(id, slot));
        }
        assert_eq!(index.len(), 10_000);
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3;
            assert_eq!(index.get(id), Some(slot), "id {id}");
        }
        assert_eq!(index.get(1), None);
        assert_eq!(index.get(u64::MAX), None);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut index = IdIndex::new();
        assert!(index.insert(42, 0));
        assert!(!index.insert(42, 1), "duplicate id accepted");
        assert_eq!(index.get(42), Some(0), "original mapping must survive");
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn adversarial_ids_colliding_buckets_still_resolve() {
        let mut index = IdIndex::new();
        // Ids crafted to collide in a 16-bucket table (same high bits after
        // the multiply): sequential multiples of the inverse-ish pattern.
        let ids: Vec<u64> = (0..64).map(|i| i * 1_000_003).collect();
        for (slot, &id) in ids.iter().enumerate() {
            assert!(index.insert(id, slot));
        }
        for (slot, &id) in ids.iter().enumerate() {
            assert_eq!(index.get(id), Some(slot));
        }
    }

    #[test]
    fn zero_and_extreme_ids_work() {
        let mut index = IdIndex::new();
        assert!(index.insert(0, 7));
        assert!(index.insert(u64::MAX, 9));
        assert_eq!(index.get(0), Some(7));
        assert_eq!(index.get(u64::MAX), Some(9));
    }
}
