//! Minimal `CellId → slot` index for the ingest hot path.
//!
//! `std::collections::HashMap` pays SipHash on every probe — measurable at
//! fleet scale, where one tick performs one lookup per telemetry report
//! (100k+ lookups per pass). Cell ids are producer-minted integers, and in
//! practice almost always *dense* ones (0..N or close; the engine keys its
//! per-shard indices shard-relative — `id >> log2(shards)` on the
//! power-of-two route, `id / shards` on the modulo route — which keeps
//! that density after sharding at any shard count), so the index keeps two
//! representations and picks per registration history:
//!
//! - **Dense**: a direct `id → slot` table. One bounds check and one load
//!   per lookup, and sequential producers walk it with the hardware
//!   prefetcher — this is what makes 100k-report ingest ticks cheap. Active
//!   while ids stay within a small multiple of the registered population
//!   (bounded memory: at most ~64 bytes per live cell).
//! - **Hash**: open addressing with a multiplicative (Fibonacci) hash and
//!   linear probing; key and slot packed side by side in one 16-byte bucket
//!   so a probe touches a single cache line per step. Buckets grow at 50%
//!   load. Deregistration marks buckets with a tombstone (probes walk
//!   through it, inserts reuse it); tombstones count toward the load factor
//!   and are dropped wholesale on growth, so churn-heavy fleets cannot
//!   degrade probe chains unboundedly.
//!
//! The first id too sparse for the dense table migrates the whole index to
//! the hash representation, one way (lookup results are identical in both,
//! so the switch is invisible to callers).

use crate::telemetry::CellId;

/// One hash-probe bucket: key and slot side by side, 16 bytes, so a probe
/// touches exactly one cache line per step instead of one line in a `keys`
/// array plus one in a parallel `slots` array.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    key: CellId,
    /// [`EMPTY`] marks a never-used bucket, [`TOMBSTONE`] a deregistered
    /// one.
    slot: u32,
}

const EMPTY: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX - 1;

const VACANT: Bucket = Bucket {
    key: 0,
    slot: EMPTY,
};

/// 2^64 / φ — the Fibonacci hashing multiplier.
const MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Ids below this always stay dense (a 4 KiB table is cheaper than any
/// hashing), regardless of how few cells are registered.
const DENSE_FLOOR: u64 = 1024;

/// Beyond the floor, the dense table is kept only while the largest id
/// stays within this multiple of the registered population — bounding the
/// table at ~64 bytes per live cell.
const DENSE_SLACK: u64 = 16;

#[derive(Debug, Clone)]
enum Repr {
    /// Direct `id → slot` table ([`EMPTY`] = unregistered). No tombstones:
    /// removal just clears the entry.
    Dense { slots: Vec<u32>, len: usize },
    Hash {
        buckets: Vec<Bucket>,
        mask: usize,
        /// `64 - log2(capacity)` — the hash fold shift, cached so the hot
        /// lookup path does not recompute it from `mask` per probe.
        shift: u32,
        len: usize,
        /// Buckets that terminate no probe chain (live + tombstones) — the
        /// load the grow trigger watches.
        used: usize,
    },
}

/// Adaptive map from [`CellId`] to a dense slot index (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct IdIndex {
    repr: Repr,
}

fn new_hash(capacity: usize) -> Repr {
    Repr::Hash {
        buckets: vec![VACANT; capacity],
        mask: capacity - 1,
        shift: 64 - capacity.trailing_zeros(),
        len: 0,
        used: 0,
    }
}

impl IdIndex {
    pub(crate) fn new() -> Self {
        Self {
            repr: Repr::Dense {
                slots: Vec::new(),
                len: 0,
            },
        }
    }

    /// Number of registered ids.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense { len, .. } | Repr::Hash { len, .. } => *len,
        }
    }

    /// Whether the index still holds the dense (direct-table)
    /// representation — the regression probe for shard-relative key
    /// density (a routing scheme that feeds sparse keys here silently
    /// migrates every shard to the hash path).
    #[cfg(test)]
    pub(crate) fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// The slot registered for `id`, if any.
    #[inline]
    pub(crate) fn get(&self, id: CellId) -> Option<usize> {
        match &self.repr {
            Repr::Dense { slots, .. } => match slots.get(id as usize) {
                Some(&slot) if slot != EMPTY => Some(slot as usize),
                _ => None,
            },
            Repr::Hash {
                buckets,
                mask,
                shift,
                ..
            } => {
                let mut bucket = (id.wrapping_mul(MULTIPLIER) >> shift) as usize & mask;
                loop {
                    let b = buckets[bucket];
                    if b.slot == EMPTY {
                        return None;
                    }
                    if b.slot != TOMBSTONE && b.key == id {
                        return Some(b.slot as usize);
                    }
                    bucket = (bucket + 1) & mask;
                }
            }
        }
    }

    /// Inserts `id → slot`. Returns `false` (without changes) when the id
    /// is already present.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit the internal `u32` representation
    /// (4 billion cells per shard is beyond the engine's design envelope).
    pub(crate) fn insert(&mut self, id: CellId, slot: usize) -> bool {
        assert!(
            slot < TOMBSTONE as usize,
            "slot index overflows the id index"
        );
        if let Repr::Dense { slots, len } = &mut self.repr {
            if id < DENSE_FLOOR || id < DENSE_SLACK * (*len as u64 + 1) {
                let idx = id as usize;
                if idx >= slots.len() {
                    let grown = (idx + 1).max(slots.len() * 2);
                    slots.resize(grown, EMPTY);
                }
                if slots[idx] != EMPTY {
                    return false;
                }
                slots[idx] = slot as u32;
                *len += 1;
                return true;
            }
            // This id is too sparse for a direct table: migrate to the
            // hash representation, permanently.
            self.migrate_to_hash();
        }
        self.hash_insert(id, slot)
    }

    /// Removes `id`, returning the slot it mapped to. In the hash
    /// representation the bucket becomes a tombstone so probe chains
    /// passing through it stay intact.
    pub(crate) fn remove(&mut self, id: CellId) -> Option<usize> {
        match &mut self.repr {
            Repr::Dense { slots, len } => match slots.get_mut(id as usize) {
                Some(slot) if *slot != EMPTY => {
                    let freed = *slot as usize;
                    *slot = EMPTY;
                    *len -= 1;
                    Some(freed)
                }
                _ => None,
            },
            Repr::Hash {
                buckets,
                mask,
                shift,
                len,
                ..
            } => {
                let mut bucket = (id.wrapping_mul(MULTIPLIER) >> *shift) as usize & *mask;
                loop {
                    let b = buckets[bucket];
                    if b.slot == EMPTY {
                        return None;
                    }
                    if b.slot != TOMBSTONE && b.key == id {
                        buckets[bucket].slot = TOMBSTONE;
                        *len -= 1;
                        return Some(b.slot as usize);
                    }
                    bucket = (bucket + 1) & *mask;
                }
            }
        }
    }

    /// Repoints an existing `id` at a new slot (used when a swap-removal
    /// moves the store's last cell into the freed slot).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not present or `slot` overflows the representation.
    pub(crate) fn reassign(&mut self, id: CellId, slot: usize) {
        assert!(
            slot < TOMBSTONE as usize,
            "slot index overflows the id index"
        );
        match &mut self.repr {
            Repr::Dense { slots, .. } => {
                let entry = slots
                    .get_mut(id as usize)
                    .filter(|s| **s != EMPTY)
                    .unwrap_or_else(|| panic!("reassign of unregistered id {id}"));
                *entry = slot as u32;
            }
            Repr::Hash {
                buckets,
                mask,
                shift,
                ..
            } => {
                let mut bucket = (id.wrapping_mul(MULTIPLIER) >> *shift) as usize & *mask;
                loop {
                    let b = buckets[bucket];
                    assert!(b.slot != EMPTY, "reassign of unregistered id {id}");
                    if b.slot != TOMBSTONE && b.key == id {
                        buckets[bucket].slot = slot as u32;
                        return;
                    }
                    bucket = (bucket + 1) & *mask;
                }
            }
        }
    }

    /// Rebuilds the index as a hash table holding every live dense entry.
    fn migrate_to_hash(&mut self) {
        let capacity = match &self.repr {
            Repr::Dense { len, .. } => (len.max(&8) * 4).next_power_of_two(),
            Repr::Hash { .. } => return,
        };
        let Repr::Dense { slots, .. } = std::mem::replace(&mut self.repr, new_hash(capacity))
        else {
            unreachable!()
        };
        for (id, &slot) in slots.iter().enumerate() {
            if slot != EMPTY {
                self.hash_insert(id as u64, slot as usize);
            }
        }
    }

    fn hash_insert(&mut self, id: CellId, slot: usize) -> bool {
        let Repr::Hash {
            buckets,
            mask,
            shift,
            len,
            used,
        } = &mut self.repr
        else {
            unreachable!("hash_insert on a dense index");
        };
        if *used * 2 >= buckets.len() {
            grow(buckets, mask, shift, used, *len);
        }
        let mut bucket = (id.wrapping_mul(MULTIPLIER) >> *shift) as usize & *mask;
        // First tombstone of the probe chain — reused once the whole chain
        // confirms the id is absent (stopping early at a tombstone could
        // duplicate an id that lives further down the chain).
        let mut reusable = None;
        loop {
            let b = buckets[bucket];
            match b.slot {
                EMPTY => {
                    let target = match reusable {
                        Some(t) => t,
                        None => {
                            *used += 1;
                            bucket
                        }
                    };
                    buckets[target] = Bucket {
                        key: id,
                        slot: slot as u32,
                    };
                    *len += 1;
                    return true;
                }
                TOMBSTONE if reusable.is_none() => reusable = Some(bucket),
                TOMBSTONE => {}
                _ if b.key == id => return false,
                _ => {}
            }
            bucket = (bucket + 1) & *mask;
        }
    }
}

fn grow(
    buckets: &mut Vec<Bucket>,
    mask: &mut usize,
    shift: &mut u32,
    used: &mut usize,
    len: usize,
) {
    let new_capacity = buckets.len() * 2;
    let old = std::mem::replace(buckets, vec![VACANT; new_capacity]);
    *mask = new_capacity - 1;
    *shift = 64 - new_capacity.trailing_zeros();
    // Tombstones are dropped wholesale: only live entries re-hash.
    for b in old {
        if b.slot == EMPTY || b.slot == TOMBSTONE {
            continue;
        }
        let mut bucket = (b.key.wrapping_mul(MULTIPLIER) >> *shift) as usize & *mask;
        while buckets[bucket].slot != EMPTY {
            bucket = (bucket + 1) & *mask;
        }
        buckets[bucket] = b;
    }
    *used = len;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_dense(index: &IdIndex) -> bool {
        index.is_dense()
    }

    #[test]
    fn insert_get_roundtrip_with_growth() {
        let mut index = IdIndex::new();
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3; // strided ids
            assert!(index.insert(id, slot));
        }
        assert_eq!(index.len(), 10_000);
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3;
            assert_eq!(index.get(id), Some(slot), "id {id}");
        }
        assert_eq!(index.get(1), None);
        assert_eq!(index.get(u64::MAX), None);
        assert!(is_dense(&index), "8x-strided ids are within dense slack");
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut index = IdIndex::new();
        assert!(index.insert(42, 0));
        assert!(!index.insert(42, 1), "duplicate id accepted");
        assert_eq!(index.get(42), Some(0), "original mapping must survive");
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn adversarial_ids_colliding_buckets_still_resolve() {
        let mut index = IdIndex::new();
        // Sparse ids force the hash representation; the multiples share
        // low entropy in a small table, stressing the probe chains.
        let ids: Vec<u64> = (0..64).map(|i| i * 1_000_003).collect();
        for (slot, &id) in ids.iter().enumerate() {
            assert!(index.insert(id, slot));
        }
        assert!(!is_dense(&index), "1e6-spaced ids must migrate to hash");
        for (slot, &id) in ids.iter().enumerate() {
            assert_eq!(index.get(id), Some(slot));
        }
    }

    #[test]
    fn remove_tombstones_and_reinsertion() {
        let mut index = IdIndex::new();
        for slot in 0..100usize {
            assert!(index.insert(slot as u64 * 7, slot));
        }
        assert_eq!(index.remove(7 * 42), Some(42));
        assert_eq!(index.len(), 99);
        assert_eq!(index.get(7 * 42), None);
        assert_eq!(index.remove(7 * 42), None, "double remove");
        // Chains passing through the tombstone still resolve.
        for slot in (0..100usize).filter(|&s| s != 42) {
            assert_eq!(index.get(slot as u64 * 7), Some(slot), "slot {slot}");
        }
        // The freed id can be registered again (reusing the tombstone).
        assert!(index.insert(7 * 42, 500));
        assert_eq!(index.get(7 * 42), Some(500));
        assert_eq!(index.len(), 100);
    }

    #[test]
    fn hash_remove_tombstones_and_reinsertion() {
        // Same churn shape as above, forced onto the hash representation
        // (its removals leave tombstones instead of clearing entries).
        let mut index = IdIndex::new();
        for slot in 0..100usize {
            assert!(index.insert(slot as u64 * 1_000_003, slot));
        }
        assert!(!is_dense(&index));
        assert_eq!(index.remove(42 * 1_000_003), Some(42));
        assert_eq!(index.len(), 99);
        assert_eq!(index.get(42 * 1_000_003), None);
        assert_eq!(index.remove(42 * 1_000_003), None, "double remove");
        for slot in (0..100usize).filter(|&s| s != 42) {
            assert_eq!(index.get(slot as u64 * 1_000_003), Some(slot));
        }
        assert!(index.insert(42 * 1_000_003, 500));
        assert_eq!(index.get(42 * 1_000_003), Some(500));
        assert_eq!(index.len(), 100);
    }

    #[test]
    fn insert_through_tombstone_rejects_duplicate_down_chain() {
        let mut index = IdIndex::new();
        // Colliding sparse ids land in one probe chain; removing the first
        // leaves a tombstone in front of the second.
        let ids: Vec<u64> = (1..7).map(|i| i * 1_000_003).collect();
        for (slot, &id) in ids.iter().enumerate() {
            assert!(index.insert(id, slot));
        }
        assert!(!is_dense(&index));
        index.remove(ids[0]);
        // Re-inserting an id that lives *past* the tombstone must be
        // rejected, not duplicated into the tombstone bucket.
        assert!(!index.insert(ids[3], 999));
        assert_eq!(index.get(ids[3]), Some(3));
    }

    #[test]
    fn reassign_moves_slot() {
        let mut index = IdIndex::new();
        index.insert(10, 0);
        index.insert(20, 1);
        index.reassign(20, 0);
        assert_eq!(index.get(20), Some(0));
        assert_eq!(index.get(10), Some(0), "reassign touches only its id");

        // Same on the hash representation.
        let mut index = IdIndex::new();
        index.insert(10 * 1_000_003, 0);
        index.insert(20 * 1_000_003, 1);
        index.reassign(20 * 1_000_003, 0);
        assert_eq!(index.get(20 * 1_000_003), Some(0));
        assert_eq!(index.get(10 * 1_000_003), Some(0));
    }

    #[test]
    fn churn_keeps_resolving_across_growth() {
        // Register/deregister churn: the table must keep every live mapping
        // correct while tombstones accumulate and growth sweeps them away.
        let mut index = IdIndex::new();
        for wave in 0..10u64 {
            for k in 0..200u64 {
                assert!(index.insert(wave * 1000 + k, (wave * 200 + k) as usize));
            }
            for k in (0..200u64).step_by(2) {
                assert!(index.remove(wave * 1000 + k).is_some());
            }
        }
        for wave in 0..10u64 {
            for k in 0..200u64 {
                let expected = (k % 2 == 1).then_some((wave * 200 + k) as usize);
                assert_eq!(index.get(wave * 1000 + k), expected);
            }
        }
        assert_eq!(index.len(), 10 * 100);
    }

    #[test]
    fn zero_and_extreme_ids_work() {
        let mut index = IdIndex::new();
        assert!(index.insert(0, 7));
        assert!(index.insert(u64::MAX, 9));
        assert!(!is_dense(&index), "u64::MAX cannot be a table offset");
        assert_eq!(index.get(0), Some(7));
        assert_eq!(index.get(u64::MAX), Some(9));
    }

    #[test]
    fn migration_preserves_every_live_mapping() {
        let mut index = IdIndex::new();
        for slot in 0..500usize {
            assert!(index.insert(slot as u64, slot));
        }
        index.remove(123);
        assert!(is_dense(&index));
        // One sparse id flips the representation mid-life.
        assert!(index.insert(1 << 40, 500));
        assert!(!is_dense(&index));
        assert_eq!(index.len(), 500);
        for slot in (0..500usize).filter(|&s| s != 123) {
            assert_eq!(index.get(slot as u64), Some(slot), "slot {slot}");
        }
        assert_eq!(index.get(123), None, "removed entry must not resurrect");
        assert_eq!(index.get(1 << 40), Some(500));
    }

    #[test]
    fn small_ids_stay_dense_under_floor_regardless_of_population() {
        let mut index = IdIndex::new();
        assert!(
            index.insert(1023, 0),
            "floor admits ids below 1024 at len 0"
        );
        assert!(is_dense(&index));
        assert!(index.insert(1 << 20, 1), "sparse id migrates");
        assert!(!is_dense(&index));
        assert_eq!(index.get(1023), Some(0));
    }
}
