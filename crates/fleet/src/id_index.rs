//! Minimal open-addressing `CellId → slot` index for the ingest hot path.
//!
//! `std::collections::HashMap` pays SipHash on every probe — measurable at
//! fleet scale, where one tick performs one lookup per telemetry report
//! (100k+ lookups per pass). Cell ids are producer-minted integers, so a
//! multiplicative (Fibonacci) hash is enough to spread them: linear probing,
//! ~16 bytes per bucket, grown at 50% load. Deregistration marks buckets
//! with a tombstone (probes walk through it, inserts reuse it); tombstones
//! count toward the load factor and are dropped wholesale on growth, so
//! churn-heavy fleets cannot degrade probe chains unboundedly.

use crate::telemetry::CellId;

/// Open-addressing map from [`CellId`] to a dense slot index.
#[derive(Debug, Clone)]
pub(crate) struct IdIndex {
    keys: Vec<CellId>,
    /// Slot per bucket; [`EMPTY`] marks a never-used bucket, [`TOMBSTONE`] a
    /// deregistered one.
    slots: Vec<u32>,
    mask: usize,
    len: usize,
    /// Buckets that terminate no probe chain (live + tombstones) — the load
    /// the grow trigger watches.
    used: usize,
}

const EMPTY: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX - 1;

/// 2^64 / φ — the Fibonacci hashing multiplier.
const MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

impl IdIndex {
    pub(crate) fn new() -> Self {
        let capacity = 16usize;
        Self {
            keys: vec![0; capacity],
            slots: vec![EMPTY; capacity],
            mask: capacity - 1,
            len: 0,
            used: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, id: CellId) -> usize {
        // High bits of the multiplicative hash, folded to the table size
        // (power of two, so the shift keeps the best-mixed bits).
        (id.wrapping_mul(MULTIPLIER) >> (64 - self.mask.count_ones())) as usize & self.mask
    }

    /// Number of registered ids.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The slot registered for `id`, if any.
    #[inline]
    pub(crate) fn get(&self, id: CellId) -> Option<usize> {
        let mut bucket = self.bucket_of(id);
        loop {
            let slot = self.slots[bucket];
            if slot == EMPTY {
                return None;
            }
            if slot != TOMBSTONE && self.keys[bucket] == id {
                return Some(slot as usize);
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    /// Inserts `id → slot`. Returns `false` (without changes) when the id
    /// is already present.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit the internal `u32` representation
    /// (4 billion cells per shard is beyond the engine's design envelope).
    pub(crate) fn insert(&mut self, id: CellId, slot: usize) -> bool {
        assert!(
            slot < TOMBSTONE as usize,
            "slot index overflows the id index"
        );
        if self.used * 2 >= self.slots.len() {
            self.grow();
        }
        let mut bucket = self.bucket_of(id);
        // First tombstone of the probe chain — reused once the whole chain
        // confirms the id is absent (stopping early at a tombstone could
        // duplicate an id that lives further down the chain).
        let mut reusable = None;
        loop {
            match self.slots[bucket] {
                EMPTY => {
                    let target = match reusable {
                        Some(t) => t,
                        None => {
                            self.used += 1;
                            bucket
                        }
                    };
                    self.keys[target] = id;
                    self.slots[target] = slot as u32;
                    self.len += 1;
                    return true;
                }
                TOMBSTONE if reusable.is_none() => reusable = Some(bucket),
                TOMBSTONE => {}
                _ if self.keys[bucket] == id => return false,
                _ => {}
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    /// Removes `id`, returning the slot it mapped to. The bucket becomes a
    /// tombstone so probe chains passing through it stay intact.
    pub(crate) fn remove(&mut self, id: CellId) -> Option<usize> {
        let mut bucket = self.bucket_of(id);
        loop {
            let slot = self.slots[bucket];
            if slot == EMPTY {
                return None;
            }
            if slot != TOMBSTONE && self.keys[bucket] == id {
                self.slots[bucket] = TOMBSTONE;
                self.len -= 1;
                return Some(slot as usize);
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    /// Repoints an existing `id` at a new slot (used when a swap-removal
    /// moves the store's last cell into the freed slot).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not present or `slot` overflows the representation.
    pub(crate) fn reassign(&mut self, id: CellId, slot: usize) {
        assert!(
            slot < TOMBSTONE as usize,
            "slot index overflows the id index"
        );
        let mut bucket = self.bucket_of(id);
        loop {
            let current = self.slots[bucket];
            assert!(current != EMPTY, "reassign of unregistered id {id}");
            if current != TOMBSTONE && self.keys[bucket] == id {
                self.slots[bucket] = slot as u32;
                return;
            }
            bucket = (bucket + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_capacity = self.slots.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_capacity]);
        let old_slots = std::mem::replace(&mut self.slots, vec![EMPTY; new_capacity]);
        self.mask = new_capacity - 1;
        // Tombstones are dropped wholesale: only live entries re-hash.
        for (key, slot) in old_keys.into_iter().zip(old_slots) {
            if slot == EMPTY || slot == TOMBSTONE {
                continue;
            }
            let mut bucket = self.bucket_of(key);
            while self.slots[bucket] != EMPTY {
                bucket = (bucket + 1) & self.mask;
            }
            self.keys[bucket] = key;
            self.slots[bucket] = slot;
        }
        self.used = self.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_with_growth() {
        let mut index = IdIndex::new();
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3; // strided ids
            assert!(index.insert(id, slot));
        }
        assert_eq!(index.len(), 10_000);
        for slot in 0..10_000usize {
            let id = (slot as u64).wrapping_mul(8) + 3;
            assert_eq!(index.get(id), Some(slot), "id {id}");
        }
        assert_eq!(index.get(1), None);
        assert_eq!(index.get(u64::MAX), None);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut index = IdIndex::new();
        assert!(index.insert(42, 0));
        assert!(!index.insert(42, 1), "duplicate id accepted");
        assert_eq!(index.get(42), Some(0), "original mapping must survive");
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn adversarial_ids_colliding_buckets_still_resolve() {
        let mut index = IdIndex::new();
        // Ids crafted to collide in a 16-bucket table (same high bits after
        // the multiply): sequential multiples of the inverse-ish pattern.
        let ids: Vec<u64> = (0..64).map(|i| i * 1_000_003).collect();
        for (slot, &id) in ids.iter().enumerate() {
            assert!(index.insert(id, slot));
        }
        for (slot, &id) in ids.iter().enumerate() {
            assert_eq!(index.get(id), Some(slot));
        }
    }

    #[test]
    fn remove_tombstones_and_reinsertion() {
        let mut index = IdIndex::new();
        for slot in 0..100usize {
            assert!(index.insert(slot as u64 * 7, slot));
        }
        assert_eq!(index.remove(7 * 42), Some(42));
        assert_eq!(index.len(), 99);
        assert_eq!(index.get(7 * 42), None);
        assert_eq!(index.remove(7 * 42), None, "double remove");
        // Chains passing through the tombstone still resolve.
        for slot in (0..100usize).filter(|&s| s != 42) {
            assert_eq!(index.get(slot as u64 * 7), Some(slot), "slot {slot}");
        }
        // The freed id can be registered again (reusing the tombstone).
        assert!(index.insert(7 * 42, 500));
        assert_eq!(index.get(7 * 42), Some(500));
        assert_eq!(index.len(), 100);
    }

    #[test]
    fn insert_through_tombstone_rejects_duplicate_down_chain() {
        let mut index = IdIndex::new();
        // Colliding ids land in one probe chain (multiples share low entropy
        // in a 16-bucket table); removing the first leaves a tombstone in
        // front of the second.
        let ids: Vec<u64> = (0..6).map(|i| i * 1_000_003).collect();
        for (slot, &id) in ids.iter().enumerate() {
            assert!(index.insert(id, slot));
        }
        index.remove(ids[0]);
        // Re-inserting an id that lives *past* the tombstone must be
        // rejected, not duplicated into the tombstone bucket.
        assert!(!index.insert(ids[3], 999));
        assert_eq!(index.get(ids[3]), Some(3));
    }

    #[test]
    fn reassign_moves_slot() {
        let mut index = IdIndex::new();
        index.insert(10, 0);
        index.insert(20, 1);
        index.reassign(20, 0);
        assert_eq!(index.get(20), Some(0));
        assert_eq!(index.get(10), Some(0), "reassign touches only its id");
    }

    #[test]
    fn churn_keeps_resolving_across_growth() {
        // Register/deregister churn: the table must keep every live mapping
        // correct while tombstones accumulate and growth sweeps them away.
        let mut index = IdIndex::new();
        for wave in 0..10u64 {
            for k in 0..200u64 {
                assert!(index.insert(wave * 1000 + k, (wave * 200 + k) as usize));
            }
            for k in (0..200u64).step_by(2) {
                assert!(index.remove(wave * 1000 + k).is_some());
            }
        }
        for wave in 0..10u64 {
            for k in 0..200u64 {
                let expected = (k % 2 == 1).then_some((wave * 200 + k) as usize);
                assert_eq!(index.get(wave * 1000 + k), expected);
            }
        }
        assert_eq!(index.len(), 10 * 100);
    }

    #[test]
    fn zero_and_extreme_ids_work() {
        let mut index = IdIndex::new();
        assert!(index.insert(0, 7));
        assert!(index.insert(u64::MAX, 9));
        assert_eq!(index.get(0), Some(7));
        assert_eq!(index.get(u64::MAX), Some(9));
    }
}
