//! Fleet instantiation of the shared [`pinnsoc_runtime`] worker pool.
//!
//! PR 2 built a persistent worker pool here (workers park between ticks,
//! epoch/condvar handoff, shard ownership moving through the queue, caller
//! participation). That machinery is now the generic
//! [`pinnsoc_runtime::WorkerPool`], shared with the pool-parallel training
//! layer (`pinnsoc::train_many`); this module keeps only the fleet-specific
//! pieces — what a tick asks of a shard ([`JobKind`]), what a shard
//! produces ([`TaskOutput`]), and the two trait hooks:
//!
//! - [`Shard`] is the pool's task: it moves into the queue by ownership and
//!   comes back inside a [`Done`] record, carrying its own scratch buffers,
//!   so steady-state ticks spawn no threads and perform no allocations in
//!   the pool machinery.
//! - [`ModelRegistry`] is the pool's pin source: the serving snapshot (f32
//!   incumbent plus optional quantized shadow, from one registry lock) is
//!   pinned under the same lock as each queue pop, so a task never runs
//!   against a model older than its own tick's start, a hot swap (which
//!   never takes the pool lock) applies from the next pop on, and a task
//!   can never pair a quantized artifact with a different f32 incumbent.

use crate::engine::{Shard, WorkloadQuery};
use crate::registry::{ModelRegistry, ServingSnapshot};
use crate::telemetry::CellId;
use pinnsoc_runtime::{PinSource, PoolTask};

/// What a tick asks each shard to do.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobKind {
    /// Refresh network estimates for the shard's dirty cells.
    Process {
        /// Cells per batched forward pass.
        micro_batch: usize,
        /// Serve int8 when the pinned snapshot carries a quantized shadow.
        int8: bool,
    },
    /// Full-pipeline prediction for every reporting cell.
    PredictAll {
        /// The uniform workload to predict under.
        workload: WorkloadQuery,
        /// Cells per batched forward pass.
        micro_batch: usize,
        /// Serve int8 when the pinned snapshot carries a quantized shadow.
        int8: bool,
    },
}

/// Per-shard result of one tick.
#[derive(Debug)]
pub(crate) enum TaskOutput {
    /// `(reports_absorbed, cells_estimated)`.
    Process { absorbed: usize, estimated: usize },
    /// `(cell, predicted SoC)` pairs in shard registration order.
    Predict(Vec<(CellId, f64)>),
}

impl PinSource for ModelRegistry {
    type Ctx = ServingSnapshot;

    fn pin(&self) -> ServingSnapshot {
        self.snapshot()
    }
}

/// The quantized model to serve with, honoring the job's serving mode:
/// `None` (→ f32) unless int8 was requested *and* the snapshot carries a
/// certified shadow. Int8 mode degrades to f32 rather than stalling when
/// no quantized model has been installed (or a swap just cleared it).
fn quantized_for(snapshot: &ServingSnapshot, int8: bool) -> Option<&pinnsoc::QuantizedSocModel> {
    if int8 {
        snapshot.quantized.as_deref()
    } else {
        None
    }
}

impl PoolTask for Shard {
    type Ctx = ServingSnapshot;
    type Kind = JobKind;
    type Output = TaskOutput;

    fn run(&mut self, snapshot: &ServingSnapshot, kind: JobKind) -> TaskOutput {
        match kind {
            JobKind::Process { micro_batch, int8 } => {
                let (absorbed, estimated) =
                    self.process(&snapshot.model, quantized_for(snapshot, int8), micro_batch);
                TaskOutput::Process {
                    absorbed,
                    estimated,
                }
            }
            JobKind::PredictAll {
                workload,
                micro_batch,
                int8,
            } => TaskOutput::Predict(self.predict_all(
                &snapshot.model,
                quantized_for(snapshot, int8),
                &workload,
                micro_batch,
            )),
        }
    }
}

/// The engine's pool: shards drained against pinned serving snapshots.
pub(crate) type WorkerPool = pinnsoc_runtime::WorkerPool<ModelRegistry, Shard>;

/// A completed shard pass (see [`pinnsoc_runtime::Done`]).
pub(crate) type Done = pinnsoc_runtime::Done<Shard>;
