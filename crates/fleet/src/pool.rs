//! Persistent worker pool backing the engine's batch passes.
//!
//! PR 1 fanned shards out over `std::thread::scope`, paying one thread
//! spawn + join per shard per tick. This pool spawns its workers once, at
//! engine construction, and parks them between ticks: the engine hands a
//! tick over by moving the active shards into a shared job queue, bumping
//! an epoch counter, and waking the workers through a condvar. Workers (and
//! the calling thread, which participates in draining the queue — on a
//! single-core host it typically does all the work itself before a worker
//! is even scheduled) pop shards, run them against a pinned model snapshot,
//! and push them back with their results. Shards carry their own scratch
//! buffers, so steady-state ticks spawn no threads and perform no
//! allocations in the pool machinery (the queue and result buffers are
//! reused engine-owned vectors).
//!
//! Everything is safe code: shard ownership moves through the queue instead
//! of being borrowed across threads, so no `unsafe`, no scoped threads, and
//! no per-shard locks on the hot path — the single state mutex is held only
//! for queue pops and result pushes.

use crate::engine::{Shard, WorkloadQuery};
use crate::registry::ModelRegistry;
use crate::telemetry::CellId;
use pinnsoc::SocModel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What a tick asks each shard to do.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobKind {
    /// Drain pending telemetry and refresh network estimates.
    Process {
        /// Cells per batched forward pass.
        micro_batch: usize,
    },
    /// Full-pipeline prediction for every reporting cell.
    PredictAll {
        /// The uniform workload to predict under.
        workload: WorkloadQuery,
        /// Cells per batched forward pass.
        micro_batch: usize,
    },
}

/// Per-shard result of one tick.
#[derive(Debug)]
pub(crate) enum TaskOutput {
    /// `(reports_absorbed, cells_estimated)`.
    Process { absorbed: usize, estimated: usize },
    /// `(cell, predicted SoC)` pairs in shard registration order.
    Predict(Vec<(CellId, f64)>),
}

/// A completed shard: its index in the engine, the shard itself (ownership
/// returns to the engine), and what it produced.
#[derive(Debug)]
pub(crate) struct Done {
    pub idx: usize,
    pub shard: Shard,
    pub output: TaskOutput,
}

struct PoolState {
    /// Bumped once per tick; workers compare it against the last epoch they
    /// served to decide whether a wake-up means new work.
    epoch: u64,
    shutdown: bool,
    kind: JobKind,
    /// Shards awaiting processing this tick.
    queue: Vec<(usize, Shard)>,
    /// Shards currently being processed (by workers or the caller).
    active: usize,
    /// Completed shards, awaiting collection by the caller.
    done: Vec<Done>,
    /// Set when a task panicked this tick (its shard is lost with the
    /// unwind). The tick still runs to quiescence so every *surviving*
    /// shard returns to the engine, then the caller re-raises.
    panicked: bool,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    state: Mutex<PoolState>,
    /// Signals workers that a new epoch's queue is ready (or shutdown).
    work_ready: Condvar,
    /// Signals the caller that the last active shard completed.
    work_done: Condvar,
}

/// The persistent pool. Workers live as long as the pool; dropping it
/// shuts them down and joins them.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent worker threads (0 is valid: every tick
    /// then runs entirely on the calling thread, which is optimal on a
    /// single-core host).
    pub(crate) fn new(registry: Arc<ModelRegistry>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            registry,
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                kind: JobKind::Process { micro_batch: 1 },
                queue: Vec::new(),
                active: 0,
                done: Vec::new(),
                panicked: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of persistent worker threads (excluding the calling thread).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one tick: drains `tasks` into the shared queue, wakes the
    /// workers, participates in the drain, and collects every completed
    /// shard into `done_out` (cleared first). Blocks until all tasks have
    /// completed. Both vectors are caller-owned so their capacity is reused
    /// across ticks.
    ///
    /// Returns `true` if any task panicked this tick. The tick still runs
    /// to quiescence first, so every *surviving* shard is in `done_out` —
    /// the engine restores those before re-raising (a panicking shard's
    /// state is lost with its unwind, exactly as under the old
    /// scoped-thread design's `join().expect`).
    #[must_use = "a panicked tick must be re-raised after restoring shards"]
    pub(crate) fn run(
        &self,
        kind: JobKind,
        tasks: &mut Vec<(usize, Shard)>,
        done_out: &mut Vec<Done>,
    ) -> bool {
        done_out.clear();
        if tasks.is_empty() {
            return false;
        }
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        debug_assert!(st.queue.is_empty() && st.active == 0 && st.done.is_empty());
        st.kind = kind;
        st.queue.append(tasks);
        st.epoch = st.epoch.wrapping_add(1);
        st.panicked = false;
        if !self.handles.is_empty() && st.queue.len() > 1 {
            // With a single task the caller will run it directly; don't
            // wake workers just to find an empty queue.
            self.shared.work_ready.notify_all();
        }
        st = drain_queue(&self.shared, st);
        while st.active > 0 {
            st = self.shared.work_done.wait(st).expect("pool state poisoned");
            st = drain_queue(&self.shared, st);
        }
        std::mem::swap(&mut st.done, done_out);
        st.panicked
    }
}

/// Pops and executes tasks until the queue is empty, from either the
/// calling thread or a worker. The job kind and the model snapshot are
/// read under the same lock as each pop: the queue may already belong to a
/// newer epoch than the one that woke this thread, and a task must never
/// run against a model older than its own tick's start
/// (`ModelRegistry::swap` never takes the pool lock, so pinning under it
/// cannot deadlock). A panicking task marks the tick panicked — its shard
/// is lost with the unwind — instead of leaving `active` stuck and hanging
/// the caller's quiescence wait.
fn drain_queue<'m>(
    shared: &'m Shared,
    mut st: std::sync::MutexGuard<'m, PoolState>,
) -> std::sync::MutexGuard<'m, PoolState> {
    while let Some((idx, mut shard)) = st.queue.pop() {
        let kind = st.kind;
        let model = shared.registry.current();
        st.active += 1;
        drop(st);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&mut shard, &model, kind)
        }));
        st = shared.state.lock().expect("pool state poisoned");
        st.active -= 1;
        match result {
            Ok(output) => st.done.push(Done { idx, shard, output }),
            Err(_) => st.panicked = true,
        }
        if st.active == 0 && st.queue.is_empty() {
            shared.work_done.notify_all();
        }
    }
    st
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

fn execute(shard: &mut Shard, model: &SocModel, kind: JobKind) -> TaskOutput {
    match kind {
        JobKind::Process { micro_batch } => {
            let (absorbed, estimated) = shard.process(model, micro_batch);
            TaskOutput::Process {
                absorbed,
                estimated,
            }
        }
        JobKind::PredictAll {
            workload,
            micro_batch,
        } => TaskOutput::Predict(shard.predict_all(model, &workload, micro_batch)),
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let mut st = shared.state.lock().expect("pool state poisoned");
        loop {
            if st.shutdown {
                return;
            }
            if st.epoch != seen_epoch && !st.queue.is_empty() {
                break;
            }
            // Either no new epoch, or its queue was already drained by the
            // caller and the other workers — nothing for us this tick.
            seen_epoch = st.epoch;
            st = shared.work_ready.wait(st).expect("pool state poisoned");
        }
        seen_epoch = st.epoch;
        let st = drain_queue(shared, st);
        drop(st);
    }
}
