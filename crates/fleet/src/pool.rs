//! Fleet instantiation of the shared [`pinnsoc_runtime`] worker pool.
//!
//! PR 2 built a persistent worker pool here (workers park between ticks,
//! epoch/condvar handoff, shard ownership moving through the queue, caller
//! participation). That machinery is now the generic
//! [`pinnsoc_runtime::WorkerPool`], shared with the pool-parallel training
//! layer (`pinnsoc::train_many`); this module keeps only the fleet-specific
//! pieces — what a tick asks of a shard ([`JobKind`]), what a shard
//! produces ([`TaskOutput`]), and the two trait hooks:
//!
//! - [`Shard`] is the pool's task: it moves into the queue by ownership and
//!   comes back inside a [`Done`] record, carrying its own scratch buffers,
//!   so steady-state ticks spawn no threads and perform no allocations in
//!   the pool machinery.
//! - [`ModelRegistry`] is the pool's pin source: the model snapshot is
//!   pinned under the same lock as each queue pop, so a task never runs
//!   against a model older than its own tick's start, and a hot swap
//!   (which never takes the pool lock) applies from the next pop on.

use crate::engine::{Shard, WorkloadQuery};
use crate::registry::ModelRegistry;
use crate::telemetry::CellId;
use pinnsoc::SocModel;
use pinnsoc_runtime::{PinSource, PoolTask};
use std::sync::Arc;

/// What a tick asks each shard to do.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobKind {
    /// Drain pending telemetry and refresh network estimates.
    Process {
        /// Cells per batched forward pass.
        micro_batch: usize,
    },
    /// Full-pipeline prediction for every reporting cell.
    PredictAll {
        /// The uniform workload to predict under.
        workload: WorkloadQuery,
        /// Cells per batched forward pass.
        micro_batch: usize,
    },
}

/// Per-shard result of one tick.
#[derive(Debug)]
pub(crate) enum TaskOutput {
    /// `(reports_absorbed, cells_estimated)`.
    Process { absorbed: usize, estimated: usize },
    /// `(cell, predicted SoC)` pairs in shard registration order.
    Predict(Vec<(CellId, f64)>),
}

impl PinSource for ModelRegistry {
    type Ctx = Arc<SocModel>;

    fn pin(&self) -> Arc<SocModel> {
        self.current()
    }
}

impl PoolTask for Shard {
    type Ctx = Arc<SocModel>;
    type Kind = JobKind;
    type Output = TaskOutput;

    fn run(&mut self, model: &Arc<SocModel>, kind: JobKind) -> TaskOutput {
        match kind {
            JobKind::Process { micro_batch } => {
                let (absorbed, estimated) = self.process(model, micro_batch);
                TaskOutput::Process {
                    absorbed,
                    estimated,
                }
            }
            JobKind::PredictAll {
                workload,
                micro_batch,
            } => TaskOutput::Predict(self.predict_all(model, &workload, micro_batch)),
        }
    }
}

/// The engine's pool: shards drained against pinned model snapshots.
pub(crate) type WorkerPool = pinnsoc_runtime::WorkerPool<ModelRegistry, Shard>;

/// A completed shard pass (see [`pinnsoc_runtime::Done`]).
pub(crate) type Done = pinnsoc_runtime::Done<Shard>;
