//! Per-cell state tracked by the fleet engine, stored structure-of-arrays.
//!
//! The serving hot path touches a few fields of *every* cell each tick
//! (latest telemetry for the feature gather, the network-estimate pair for
//! the scatter). A struct-per-cell layout drags the cold fields (Coulomb
//! counter, EKF, counters) through cache on every hot access; splitting the
//! state into parallel arrays ([`CellStore`]) keeps each stage streaming
//! over exactly the bytes it needs: batch assembly gathers `(V, I, T)`
//! straight from three contiguous arrays into the input matrix, and results
//! scatter back with linear writes.

use crate::telemetry::{CellId, Telemetry};
use pinnsoc::SocModel;
use pinnsoc_battery::{CellParams, CoulombCounter, EkfEstimator, EkfState, Soc};
use pinnsoc_nn::Matrix;

/// Complete persisted state of one cell — everything [`CellStore`] tracks
/// besides the transient coalescing generation, flattened for durable
/// snapshots.
///
/// [`CellStore::import_cell`] with this record reproduces a slot whose
/// subsequent absorbs and estimates are bit-identical to the exported
/// cell's. `net_time_s` keeps the raw sentinel encoding (`-inf` for "no
/// network estimate"), so the pair round-trips through `f64::to_bits`
/// without a separate flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPersist {
    /// The cell's fleet-unique id.
    pub id: CellId,
    /// Rated capacity, amp-hours.
    pub capacity_ah: f64,
    /// Latest accepted telemetry fields (valid iff `reports > 0`).
    pub time_s: f64,
    /// Latest accepted terminal voltage, volts.
    pub voltage_v: f64,
    /// Latest accepted current, amps.
    pub current_a: f64,
    /// Latest accepted temperature, °C.
    pub temperature_c: f64,
    /// Telemetry reports accepted since registration.
    pub reports: u64,
    /// Timestamp the latest network estimate covers (`-inf` when none).
    pub net_time_s: f64,
    /// Latest network estimate value.
    pub net_soc: f64,
    /// Running Coulomb-integrated SoC.
    pub coulomb_soc: f64,
    /// Coulomb counter's current-sensor bias, amps.
    pub coulomb_bias_a: f64,
    /// EKF fallback state, when the engine enables the fallback.
    pub ekf: Option<EkfState>,
}

/// Registration-time description of one cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Assumed SoC at registration (seeds the Coulomb integrator and the
    /// EKF, when enabled). Clamped into `[0, 1]`.
    pub initial_soc: f64,
    /// Rated capacity, amp-hours.
    pub capacity_ah: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            initial_soc: 1.0,
            capacity_ah: 3.0,
        }
    }
}

/// Where a cell's current best SoC estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocEstimate {
    /// Batched Branch-1 network estimate from the latest telemetry.
    Network,
    /// Running Coulomb integration (no network pass has covered the latest
    /// telemetry yet).
    Coulomb,
    /// Extended Kalman filter fallback (enabled per-engine).
    Ekf,
}

/// What [`CellStore::absorb`] did with one telemetry report. Rejections are
/// counted by the engine's [`crate::engine::TelemetryStats`] instead of
/// being silently dropped — transport faults (out-of-order delivery, gateway
/// NaNs, duplicated frames) are facts about the fleet a production operator
/// needs to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbOutcome {
    /// Integrated and recorded as the cell's latest telemetry.
    Accepted,
    /// Accepted with a timestamp equal to the previous report's (a sensor
    /// re-read or a duplicated frame): the latest fields are overwritten but
    /// nothing is integrated over the zero-length interval.
    DuplicateTimestamp,
    /// Rejected without changes: a non-finite field (gateway glitch).
    NonFinite,
    /// Rejected without changes: timestamp older than the latest accepted
    /// report (out-of-order delivery or clock skew).
    TimeReversed,
}

impl AbsorbOutcome {
    /// Whether the report was folded into the cell state.
    pub fn accepted(self) -> bool {
        matches!(
            self,
            AbsorbOutcome::Accepted | AbsorbOutcome::DuplicateTimestamp
        )
    }
}

/// Per-estimator view of one cell's current SoC estimates — the closed-loop
/// validation seam: `pinnsoc-scenario` scores each estimator against the
/// ground-truth simulator separately, not just the engine's `best` pick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateBreakdown {
    /// The engine's best estimate and its source (same policy as
    /// [`CellStore::estimate`]).
    pub best: (f64, SocEstimate),
    /// Latest batched network estimate, clamped into `[0, 1]`; `None` until
    /// a batch pass has covered the cell. May be stale — see
    /// [`EstimateBreakdown::network_fresh`].
    pub network: Option<f64>,
    /// Whether the network estimate covers the latest accepted telemetry.
    pub network_fresh: bool,
    /// Running Coulomb-integrated SoC.
    pub coulomb: f64,
    /// EKF fallback SoC, when the engine enables the fallback.
    pub ekf: Option<f64>,
    /// One-sigma uncertainty of the EKF SoC estimate (square root of its
    /// SoC covariance entry) — the confidence signal online-adaptation
    /// harvesting gates pseudo-labels on. `None` when the fallback is
    /// disabled.
    pub ekf_soc_std: Option<f64>,
}

/// Sentinel for "no network estimate yet" — strictly older than any finite
/// telemetry timestamp, so the freshness check needs no separate flag.
const NO_ESTIMATE: f64 = f64::NEG_INFINITY;

/// Structure-of-arrays state for every cell of one shard.
///
/// All vectors are parallel: index `slot` across them describes one cell.
/// Hot per-tick fields (`time_s`, `voltage_v`, `current_a`,
/// `temperature_c`, `net_time_s`, `net_soc`) are plain `f64` arrays the
/// batch assembly and scatter stages stream over; integrators and counters
/// live in their own arrays and are only touched by the coalesce stage.
#[derive(Debug)]
pub struct CellStore {
    pub(crate) ids: Vec<CellId>,
    pub(crate) capacity_ah: Vec<f64>,
    /// Latest accepted telemetry, split by field. Valid iff
    /// `reports[slot] > 0`.
    pub(crate) time_s: Vec<f64>,
    pub(crate) voltage_v: Vec<f64>,
    pub(crate) current_a: Vec<f64>,
    pub(crate) temperature_c: Vec<f64>,
    /// Telemetry reports accepted since registration.
    pub(crate) reports: Vec<u64>,
    /// Timestamp the latest network estimate covers ([`NO_ESTIMATE`] when
    /// none) and its value.
    pub(crate) net_time_s: Vec<f64>,
    pub(crate) net_soc: Vec<f64>,
    /// Processing-pass generation that last marked the cell dirty — the
    /// shard's O(1) coalescing dedup.
    pub(crate) dirty_generation: Vec<u64>,
    pub(crate) coulomb: Vec<CoulombCounter>,
    /// One EKF per cell when the engine-wide fallback is enabled, empty
    /// otherwise.
    pub(crate) ekf: Vec<EkfEstimator>,
}

impl CellStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            ids: Vec::new(),
            capacity_ah: Vec::new(),
            time_s: Vec::new(),
            voltage_v: Vec::new(),
            current_a: Vec::new(),
            temperature_c: Vec::new(),
            reports: Vec::new(),
            net_time_s: Vec::new(),
            net_soc: Vec::new(),
            dirty_generation: Vec::new(),
            coulomb: Vec::new(),
            ekf: Vec::new(),
        }
    }

    /// Registered cell count.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends a cell, seeding its integrators from the config, and returns
    /// its slot. When `ekf_params` is given, the engine-wide parameters are
    /// copied with the per-cell capacity overriding the fleet default —
    /// otherwise heterogeneous fleets would integrate SoC at the wrong rate
    /// whenever the EKF fallback answers.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity_ah` is not positive.
    pub fn push(
        &mut self,
        id: CellId,
        config: &CellConfig,
        ekf_params: Option<&CellParams>,
    ) -> usize {
        let slot = self.ids.len();
        let initial = Soc::clamped(config.initial_soc);
        self.ids.push(id);
        self.capacity_ah.push(config.capacity_ah);
        self.time_s.push(0.0);
        self.voltage_v.push(0.0);
        self.current_a.push(0.0);
        self.temperature_c.push(0.0);
        self.reports.push(0);
        self.net_time_s.push(NO_ESTIMATE);
        self.net_soc.push(0.0);
        self.dirty_generation.push(0);
        self.coulomb
            .push(CoulombCounter::new(initial, config.capacity_ah));
        if let Some(params) = ekf_params {
            let mut params = params.clone();
            params.capacity_ah = config.capacity_ah;
            self.ekf.push(EkfEstimator::new(params, initial));
        }
        slot
    }

    /// Most recent accepted telemetry for `slot`, if any has arrived.
    pub fn latest(&self, slot: usize) -> Option<Telemetry> {
        (self.reports[slot] > 0).then(|| Telemetry {
            time_s: self.time_s[slot],
            voltage_v: self.voltage_v[slot],
            current_a: self.current_a[slot],
            temperature_c: self.temperature_c[slot],
        })
    }

    /// Folds one telemetry report into the slot's running integrators.
    /// Rejected reports (see [`AbsorbOutcome`]) change nothing.
    pub fn absorb(&mut self, slot: usize, t: Telemetry) -> AbsorbOutcome {
        if !t.is_finite() {
            return AbsorbOutcome::NonFinite;
        }
        // First report: nothing to integrate over yet.
        let first = self.reports[slot] == 0;
        let dt = if first {
            0.0
        } else {
            t.time_s - self.time_s[slot]
        };
        if dt < 0.0 {
            return AbsorbOutcome::TimeReversed;
        }
        if dt > 0.0 {
            self.coulomb[slot].update(t.current_a, dt);
            if let Some(ekf) = self.ekf.get_mut(slot) {
                ekf.update(t.current_a, t.voltage_v, t.temperature_c, dt);
            }
        }
        self.time_s[slot] = t.time_s;
        self.voltage_v[slot] = t.voltage_v;
        self.current_a[slot] = t.current_a;
        self.temperature_c[slot] = t.temperature_c;
        self.reports[slot] += 1;
        if first || dt > 0.0 {
            AbsorbOutcome::Accepted
        } else {
            AbsorbOutcome::DuplicateTimestamp
        }
    }

    /// Gathers the normalized Branch-1 feature rows for `slots` straight
    /// from the SoA telemetry arrays into `features` (resized to
    /// `slots.len() × 3`; every element assigned). The single gather
    /// implementation every batch pass shares — the bit-exactness contract
    /// requires all passes to assemble features identically.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or contains an out-of-range slot.
    pub(crate) fn gather_features(&self, slots: &[u32], model: &SocModel, features: &mut Matrix) {
        features.reset_for_overwrite(slots.len(), 3);
        // Hoist the normalization constants and write the flat buffer
        // directly: per element this is the same `(x − mean) / std` f64
        // divide followed by an f32 cast that `Branch1::features` performs,
        // so the gather stays bit-identical to the scalar path while
        // skipping the per-row call and bounds machinery.
        let (means, stds) = model.branch1.norm_stats();
        let (mv, mi, mt) = (means[0], means[1], means[2]);
        let (sv, si, st) = (stds[0], stds[1], stds[2]);
        let out = features.as_mut_slice();
        for (r, &slot) in slots.iter().enumerate() {
            let slot = slot as usize;
            let base = r * 3;
            out[base] = ((self.voltage_v[slot] - mv) / sv) as f32;
            out[base + 1] = ((self.current_a[slot] - mi) / si) as f32;
            out[base + 2] = ((self.temperature_c[slot] - mt) / st) as f32;
        }
    }

    /// Records a batched network estimate covering the slot's latest
    /// telemetry timestamp.
    #[inline]
    pub(crate) fn record_network_estimate(&mut self, slot: usize, soc: f64) {
        self.net_time_s[slot] = self.time_s[slot];
        self.net_soc[slot] = soc;
    }

    /// The best current SoC estimate and its source: the network estimate
    /// when it covers the latest telemetry, otherwise the EKF (when
    /// enabled), otherwise the Coulomb integral. `None` until any telemetry
    /// has been accepted.
    pub fn estimate(&self, slot: usize) -> Option<(f64, SocEstimate)> {
        if self.reports[slot] == 0 {
            return None;
        }
        if self.net_time_s[slot] >= self.time_s[slot] {
            // The network output is an unclamped regression value; keep
            // fleet aggregates (histograms, time-to-empty) in-range.
            return Some((self.net_soc[slot].clamp(0.0, 1.0), SocEstimate::Network));
        }
        if let Some(ekf) = self.ekf.get(slot) {
            return Some((ekf.soc().value(), SocEstimate::Ekf));
        }
        Some((self.coulomb[slot].soc().value(), SocEstimate::Coulomb))
    }

    /// Per-estimator breakdown of the slot's current estimates, or `None`
    /// until any telemetry has been accepted.
    pub fn breakdown(&self, slot: usize) -> Option<EstimateBreakdown> {
        let best = self.estimate(slot)?;
        let has_network = self.net_time_s[slot] > NO_ESTIMATE;
        Some(EstimateBreakdown {
            best,
            network: has_network.then(|| self.net_soc[slot].clamp(0.0, 1.0)),
            network_fresh: self.net_time_s[slot] >= self.time_s[slot],
            coulomb: self.coulomb[slot].soc().value(),
            ekf: self.ekf.get(slot).map(|e| e.soc().value()),
            ekf_soc_std: self.ekf.get(slot).map(|e| e.soc_std()),
        })
    }

    /// Removes the cell at `slot` by swapping the last cell into its place
    /// (O(1); every parallel array moves together). Returns the id of the
    /// moved cell when one changed slots — the caller must repoint its index
    /// entry — or `None` when the removed cell was last.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn swap_remove(&mut self, slot: usize) -> Option<CellId> {
        let last = self.ids.len() - 1;
        self.ids.swap_remove(slot);
        self.capacity_ah.swap_remove(slot);
        self.time_s.swap_remove(slot);
        self.voltage_v.swap_remove(slot);
        self.current_a.swap_remove(slot);
        self.temperature_c.swap_remove(slot);
        self.reports.swap_remove(slot);
        self.net_time_s.swap_remove(slot);
        self.net_soc.swap_remove(slot);
        self.dirty_generation.swap_remove(slot);
        self.coulomb.swap_remove(slot);
        if !self.ekf.is_empty() {
            self.ekf.swap_remove(slot);
        }
        (slot != last).then(|| self.ids[slot])
    }

    /// Predicted seconds until empty at the given constant discharge
    /// current (amps), from the best current estimate. `None` when no
    /// estimate exists yet or the current is not a discharge.
    pub fn time_to_empty_s(&self, slot: usize, discharge_current_a: f64) -> Option<f64> {
        if discharge_current_a <= 0.0 {
            return None;
        }
        let (soc, _) = self.estimate(slot)?;
        Some(soc * 3600.0 * self.capacity_ah[slot] / discharge_current_a)
    }

    /// Exports the slot's complete persisted state (see [`CellPersist`]).
    pub fn export_cell(&self, slot: usize) -> CellPersist {
        CellPersist {
            id: self.ids[slot],
            capacity_ah: self.capacity_ah[slot],
            time_s: self.time_s[slot],
            voltage_v: self.voltage_v[slot],
            current_a: self.current_a[slot],
            temperature_c: self.temperature_c[slot],
            reports: self.reports[slot],
            net_time_s: self.net_time_s[slot],
            net_soc: self.net_soc[slot],
            coulomb_soc: self.coulomb[slot].soc().value(),
            coulomb_bias_a: self.coulomb[slot].sensor_bias_a(),
            ekf: self.ekf.get(slot).map(EkfEstimator::state),
        }
    }

    /// Appends a cell rebuilt from persisted state and returns its slot —
    /// the recovery counterpart of [`Self::push`]. As there, `ekf_params`
    /// must be the engine-wide fallback parameters (the per-cell capacity
    /// overrides the fleet default). The coalescing generation restarts at
    /// zero; it only dedups within a single processing pass.
    ///
    /// # Panics
    ///
    /// Panics if `cell.capacity_ah` is not positive, or if the presence of
    /// `ekf_params` disagrees with the persisted EKF state (the snapshot was
    /// taken under a different fallback configuration).
    pub fn import_cell(&mut self, cell: &CellPersist, ekf_params: Option<&CellParams>) -> usize {
        assert_eq!(
            ekf_params.is_some(),
            cell.ekf.is_some(),
            "EKF fallback configuration mismatch between engine and persisted cell"
        );
        let slot = self.ids.len();
        self.ids.push(cell.id);
        self.capacity_ah.push(cell.capacity_ah);
        self.time_s.push(cell.time_s);
        self.voltage_v.push(cell.voltage_v);
        self.current_a.push(cell.current_a);
        self.temperature_c.push(cell.temperature_c);
        self.reports.push(cell.reports);
        self.net_time_s.push(cell.net_time_s);
        self.net_soc.push(cell.net_soc);
        self.dirty_generation.push(0);
        // A persisted SoC is a former `Soc::value()`, always in [0, 1]:
        // `clamped` is the bit-exact identity there.
        self.coulomb.push(
            CoulombCounter::new(Soc::clamped(cell.coulomb_soc), cell.capacity_ah)
                .with_sensor_bias(cell.coulomb_bias_a),
        );
        if let (Some(params), Some(state)) = (ekf_params, cell.ekf) {
            let mut params = params.clone();
            params.capacity_ah = cell.capacity_ah;
            self.ekf.push(EkfEstimator::from_state(params, state));
        }
        slot
    }

    /// Owned read view of one cell's full tracked state.
    pub fn snapshot(&self, slot: usize) -> CellSnapshot {
        CellSnapshot {
            id: self.ids[slot],
            capacity_ah: self.capacity_ah[slot],
            latest: self.latest(slot),
            coulomb_soc: self.coulomb[slot].soc().value(),
            ekf_soc: self.ekf.get(slot).map(|e| e.soc().value()),
            network_estimate: (self.net_time_s[slot] > NO_ESTIMATE)
                .then(|| (self.net_time_s[slot], self.net_soc[slot])),
            reports: self.reports[slot],
            estimate: self.estimate(slot),
        }
    }
}

impl Default for CellStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Owned read view of one cell, assembled from the store's parallel arrays
/// (the SoA layout has no per-cell struct to borrow).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    /// The cell's fleet-unique id.
    pub id: CellId,
    /// Rated capacity, amp-hours.
    pub capacity_ah: f64,
    /// Most recent accepted telemetry, if any has arrived.
    pub latest: Option<Telemetry>,
    /// Running Coulomb-integrated SoC from the registered initial SoC.
    pub coulomb_soc: f64,
    /// EKF fallback SoC, when the engine enables the fallback.
    pub ekf_soc: Option<f64>,
    /// Latest batched network estimate, with the telemetry timestamp it
    /// covers.
    pub network_estimate: Option<(f64, f64)>,
    /// Telemetry reports accepted since registration.
    pub reports: u64,
    estimate: Option<(f64, SocEstimate)>,
}

impl CellSnapshot {
    /// The best current SoC estimate and its source at snapshot time (same
    /// policy as [`CellStore::estimate`]).
    pub fn estimate(&self) -> Option<(f64, SocEstimate)> {
        self.estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(time_s: f64, current_a: f64) -> Telemetry {
        Telemetry {
            time_s,
            voltage_v: 3.7,
            current_a,
            temperature_c: 25.0,
        }
    }

    fn store_with_one(initial_soc: f64, capacity_ah: f64) -> CellStore {
        let mut store = CellStore::new();
        store.push(
            1,
            &CellConfig {
                initial_soc,
                capacity_ah,
            },
            None,
        );
        store
    }

    #[test]
    fn absorb_integrates_coulomb_between_reports() {
        let mut store = store_with_one(1.0, 3.0);
        assert_eq!(
            store.absorb(0, telemetry(0.0, 3.0)),
            AbsorbOutcome::Accepted
        );
        // 3 A for 1800 s = 1.5 Ah = half the capacity.
        assert_eq!(
            store.absorb(0, telemetry(1800.0, 3.0)),
            AbsorbOutcome::Accepted
        );
        let (soc, source) = store.estimate(0).expect("has telemetry");
        assert_eq!(source, SocEstimate::Coulomb);
        assert!((soc - 0.5).abs() < 1e-9, "soc {soc}");
        assert_eq!(store.reports[0], 2);
    }

    #[test]
    fn rejects_nan_and_time_reversal() {
        let mut store = store_with_one(1.0, 3.0);
        assert!(store.absorb(0, telemetry(10.0, 1.0)).accepted());
        assert_eq!(
            store.absorb(0, telemetry(5.0, 1.0)),
            AbsorbOutcome::TimeReversed
        );
        let mut bad = telemetry(20.0, 1.0);
        bad.voltage_v = f64::NAN;
        assert_eq!(store.absorb(0, bad), AbsorbOutcome::NonFinite);
        assert_eq!(store.reports[0], 1);
        assert_eq!(store.latest(0).unwrap().time_s, 10.0);
    }

    #[test]
    fn duplicate_timestamp_overwrites_without_integrating() {
        let mut store = store_with_one(0.8, 3.0);
        assert_eq!(
            store.absorb(0, telemetry(10.0, 3.0)),
            AbsorbOutcome::Accepted
        );
        let before = store.estimate(0).unwrap().0;
        // Same timestamp, different reading: latest fields move, the
        // integral does not.
        let mut dup = telemetry(10.0, 5.0);
        dup.voltage_v = 3.5;
        assert_eq!(store.absorb(0, dup), AbsorbOutcome::DuplicateTimestamp);
        assert_eq!(store.estimate(0).unwrap().0, before, "no integration");
        assert_eq!(store.latest(0).unwrap().voltage_v, 3.5);
        assert_eq!(store.reports[0], 2);
    }

    #[test]
    fn breakdown_reports_every_estimator() {
        let params = CellParams::lg_hg2();
        let mut store = CellStore::new();
        store.push(
            1,
            &CellConfig {
                initial_soc: 0.8,
                capacity_ah: params.capacity_ah,
            },
            Some(&params),
        );
        assert_eq!(store.breakdown(0), None, "no telemetry yet");
        store.absorb(0, telemetry(0.0, 1.0));
        store.absorb(0, telemetry(60.0, 1.0));
        let b = store.breakdown(0).expect("has telemetry");
        assert_eq!(b.network, None);
        assert!(!b.network_fresh);
        assert!(b.ekf.is_some());
        assert_eq!(b.best, (b.ekf.unwrap(), SocEstimate::Ekf));
        store.record_network_estimate(0, 0.42);
        let b = store.breakdown(0).unwrap();
        assert_eq!(b.network, Some(0.42));
        assert!(b.network_fresh);
        assert_eq!(b.best, (0.42, SocEstimate::Network));
        // Newer telemetry makes the network estimate stale but keeps it
        // visible in the breakdown.
        store.absorb(0, telemetry(120.0, 1.0));
        let b = store.breakdown(0).unwrap();
        assert_eq!(b.network, Some(0.42));
        assert!(!b.network_fresh);
        assert_eq!(b.best.1, SocEstimate::Ekf);
    }

    #[test]
    fn network_estimate_wins_only_when_fresh() {
        let mut store = store_with_one(1.0, 3.0);
        store.absorb(0, telemetry(10.0, 1.0));
        store.record_network_estimate(0, 0.87);
        assert_eq!(store.estimate(0), Some((0.87, SocEstimate::Network)));
        // Newer telemetry makes the network estimate stale.
        store.absorb(0, telemetry(20.0, 1.0));
        let (_, source) = store.estimate(0).unwrap();
        assert_eq!(source, SocEstimate::Coulomb);
    }

    #[test]
    fn ekf_fallback_when_enabled() {
        let params = CellParams::lg_hg2();
        let mut store = CellStore::new();
        store.push(
            1,
            &CellConfig {
                initial_soc: 0.8,
                capacity_ah: params.capacity_ah,
            },
            Some(&params),
        );
        store.absorb(0, telemetry(0.0, 1.0));
        store.absorb(0, telemetry(60.0, 1.0));
        let (soc, source) = store.estimate(0).unwrap();
        assert_eq!(source, SocEstimate::Ekf);
        assert!((0.0..=1.0).contains(&soc));
    }

    #[test]
    fn time_to_empty_scales_with_current() {
        let mut store = store_with_one(0.5, 3.0);
        store.absorb(0, telemetry(0.0, 0.0));
        // Half of 3 Ah at 1.5 A = 1 hour.
        assert!((store.time_to_empty_s(0, 1.5).unwrap() - 3600.0).abs() < 1e-9);
        assert!((store.time_to_empty_s(0, 3.0).unwrap() - 1800.0).abs() < 1e-9);
        assert_eq!(store.time_to_empty_s(0, 0.0), None);
        assert_eq!(store.time_to_empty_s(0, -1.0), None);
    }

    #[test]
    fn no_estimate_before_first_report() {
        let store = store_with_one(1.0, 3.0);
        assert_eq!(store.estimate(0), None);
        assert_eq!(store.time_to_empty_s(0, 1.0), None);
        assert_eq!(store.latest(0), None);
    }

    #[test]
    fn snapshot_mirrors_store_state() {
        let mut store = store_with_one(0.9, 3.0);
        store.push(7, &CellConfig::default(), None);
        store.absorb(0, telemetry(5.0, 1.0));
        store.record_network_estimate(0, 0.42);
        let snap = store.snapshot(0);
        assert_eq!(snap.id, 1);
        assert_eq!(snap.reports, 1);
        assert_eq!(snap.latest.unwrap().time_s, 5.0);
        assert_eq!(snap.network_estimate, Some((5.0, 0.42)));
        assert_eq!(snap.estimate(), Some((0.42, SocEstimate::Network)));
        assert_eq!(snap.ekf_soc, None);
        let untouched = store.snapshot(1);
        assert_eq!(untouched.id, 7);
        assert_eq!(untouched.latest, None);
        assert_eq!(untouched.estimate(), None);
    }

    #[test]
    fn swap_remove_moves_last_cell_and_keeps_state() {
        let params = CellParams::lg_hg2();
        let mut store = CellStore::new();
        for id in 1..=3u64 {
            store.push(
                id,
                &CellConfig {
                    initial_soc: 0.5 + id as f64 * 0.1,
                    capacity_ah: params.capacity_ah,
                },
                Some(&params),
            );
        }
        store.absorb(0, telemetry(1.0, 1.0));
        store.absorb(2, telemetry(2.0, 2.0));
        store.record_network_estimate(2, 0.33);
        let before = store.snapshot(2);
        // Remove the middle cell: cell 3 moves into slot 1.
        assert_eq!(store.swap_remove(1), Some(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.ids, vec![1, 3]);
        let moved = store.snapshot(1);
        assert_eq!(moved.id, before.id);
        assert_eq!(moved.latest, before.latest);
        assert_eq!(moved.network_estimate, before.network_estimate);
        assert_eq!(moved.estimate(), before.estimate());
        assert_eq!(moved.ekf_soc, before.ekf_soc);
        // Removing the last cell moves nothing.
        assert_eq!(store.swap_remove(1), None);
        assert_eq!(store.ids, vec![1]);
    }

    #[test]
    fn breakdown_exposes_ekf_uncertainty() {
        let params = CellParams::lg_hg2();
        let mut store = CellStore::new();
        store.push(
            1,
            &CellConfig {
                initial_soc: 0.8,
                capacity_ah: params.capacity_ah,
            },
            Some(&params),
        );
        store.absorb(0, telemetry(0.0, 1.0));
        store.absorb(0, telemetry(60.0, 1.0));
        let b = store.breakdown(0).expect("has telemetry");
        let std = b.ekf_soc_std.expect("EKF enabled");
        assert!(std.is_finite() && std >= 0.0);
        // EKF disabled: no uncertainty either.
        let mut plain = store_with_one(0.8, 3.0);
        plain.absorb(0, telemetry(0.0, 1.0));
        assert_eq!(plain.breakdown(0).unwrap().ekf_soc_std, None);
    }

    #[test]
    fn export_import_roundtrip_is_bit_identical() {
        let params = CellParams::lg_hg2();
        let mut store = CellStore::new();
        store.push(
            9,
            &CellConfig {
                initial_soc: 0.8,
                capacity_ah: params.capacity_ah,
            },
            Some(&params),
        );
        store.absorb(0, telemetry(0.0, 1.0));
        store.absorb(0, telemetry(60.0, 2.0));
        store.record_network_estimate(0, 0.77);
        store.absorb(0, telemetry(120.0, 1.5));
        let persist = store.export_cell(0);
        let mut restored = CellStore::new();
        restored.import_cell(&persist, Some(&params));
        assert_eq!(restored.export_cell(0), persist, "lossless round trip");
        // Subsequent absorbs integrate bit-identically to the original.
        for step in 3..10 {
            let t = telemetry(step as f64 * 60.0, 1.0 + step as f64 * 0.1);
            assert_eq!(store.absorb(0, t), restored.absorb(0, t));
            assert_eq!(
                store.estimate(0).unwrap().0.to_bits(),
                restored.estimate(0).unwrap().0.to_bits()
            );
            assert_eq!(store.breakdown(0), restored.breakdown(0));
        }
    }

    #[test]
    fn export_import_preserves_no_estimate_sentinel() {
        let store = store_with_one(1.0, 3.0);
        let persist = store.export_cell(0);
        assert_eq!(persist.reports, 0);
        assert!(persist.net_time_s == f64::NEG_INFINITY);
        let mut restored = CellStore::new();
        restored.import_cell(&persist, None);
        assert_eq!(restored.estimate(0), None);
        assert_eq!(restored.latest(0), None);
    }

    #[test]
    #[should_panic(expected = "EKF fallback configuration mismatch")]
    fn import_rejects_fallback_mismatch() {
        let store = store_with_one(1.0, 3.0);
        let persist = store.export_cell(0);
        let mut restored = CellStore::new();
        restored.import_cell(&persist, Some(&CellParams::lg_hg2()));
    }

    #[test]
    fn negative_timestamps_are_valid_telemetry() {
        // The NO_ESTIMATE sentinel must not collide with real (even very
        // negative) timestamps.
        let mut store = store_with_one(1.0, 3.0);
        store.absorb(0, telemetry(-1e12, 1.0));
        assert_eq!(store.estimate(0).unwrap().1, SocEstimate::Coulomb);
        store.record_network_estimate(0, 0.5);
        assert_eq!(store.estimate(0).unwrap().1, SocEstimate::Network);
    }
}
