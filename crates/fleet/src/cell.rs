//! Per-cell state tracked by the fleet engine.

use crate::telemetry::{CellId, Telemetry};
use pinnsoc_battery::{CellParams, CoulombCounter, EkfEstimator, Soc};

/// Registration-time description of one cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Assumed SoC at registration (seeds the Coulomb integrator and the
    /// EKF, when enabled). Clamped into `[0, 1]`.
    pub initial_soc: f64,
    /// Rated capacity, amp-hours.
    pub capacity_ah: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            initial_soc: 1.0,
            capacity_ah: 3.0,
        }
    }
}

/// Where a cell's current best SoC estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocEstimate {
    /// Batched Branch-1 network estimate from the latest telemetry.
    Network,
    /// Running Coulomb integration (no network pass has covered the latest
    /// telemetry yet).
    Coulomb,
    /// Extended Kalman filter fallback (enabled per-engine).
    Ekf,
}

/// Everything the engine tracks for one cell.
#[derive(Debug, Clone)]
pub struct CellEntry {
    /// The cell's fleet-unique id.
    pub id: CellId,
    /// Rated capacity, amp-hours (used for physics fallbacks and
    /// time-to-empty).
    pub capacity_ah: f64,
    /// Most recent accepted telemetry, if any has arrived.
    pub latest: Option<Telemetry>,
    /// Running Coulomb integration from the registered initial SoC.
    pub coulomb: CoulombCounter,
    /// Optional EKF fallback estimator.
    pub ekf: Option<Box<EkfEstimator>>,
    /// Latest batched network estimate, with the telemetry timestamp it
    /// covers.
    pub network_estimate: Option<(f64, f64)>,
    /// Telemetry reports accepted since registration.
    pub reports: u64,
    /// Processing-pass generation that last marked this cell dirty — lets
    /// the shard dedup coalesced telemetry in O(1) per report.
    pub(crate) dirty_generation: u64,
}

impl CellEntry {
    /// Creates the entry, seeding integrators from the config.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_ah` is not positive.
    pub fn new(id: CellId, config: &CellConfig, ekf_params: Option<&CellParams>) -> Self {
        let initial = Soc::clamped(config.initial_soc);
        // The engine-wide EKF parameters describe the fleet's cell model
        // (chemistry, resistances); the capacity is per-cell, so override
        // it — otherwise heterogeneous fleets would integrate SoC at the
        // wrong rate whenever the EKF fallback answers.
        let ekf = ekf_params.map(|p| {
            let mut params = p.clone();
            params.capacity_ah = config.capacity_ah;
            Box::new(EkfEstimator::new(params, initial))
        });
        Self {
            id,
            capacity_ah: config.capacity_ah,
            latest: None,
            coulomb: CoulombCounter::new(initial, config.capacity_ah),
            ekf,
            network_estimate: None,
            reports: 0,
            dirty_generation: 0,
        }
    }

    /// Folds one telemetry report into the running integrators. Returns
    /// `false` (and changes nothing) for non-finite or time-reversed
    /// reports.
    pub fn absorb(&mut self, t: Telemetry) -> bool {
        if !t.is_finite() {
            return false;
        }
        let dt = match self.latest {
            Some(prev) => t.time_s - prev.time_s,
            // First report: nothing to integrate over yet.
            None => 0.0,
        };
        if dt < 0.0 {
            return false;
        }
        if dt > 0.0 {
            self.coulomb.update(t.current_a, dt);
            if let Some(ekf) = &mut self.ekf {
                ekf.update(t.current_a, t.voltage_v, t.temperature_c, dt);
            }
        }
        self.latest = Some(t);
        self.reports += 1;
        true
    }

    /// The best current SoC estimate and its source: the network estimate
    /// when it covers the latest telemetry, otherwise the EKF (when
    /// enabled), otherwise the Coulomb integral. `None` until any
    /// telemetry has been accepted.
    pub fn estimate(&self) -> Option<(f64, SocEstimate)> {
        let latest = self.latest?;
        if let Some((time_s, soc)) = self.network_estimate {
            if time_s >= latest.time_s {
                // The network output is an unclamped regression value; keep
                // fleet aggregates (histograms, time-to-empty) in-range.
                return Some((soc.clamp(0.0, 1.0), SocEstimate::Network));
            }
        }
        if let Some(ekf) = &self.ekf {
            return Some((ekf.soc().value(), SocEstimate::Ekf));
        }
        Some((self.coulomb.soc().value(), SocEstimate::Coulomb))
    }

    /// Predicted seconds until empty at the given constant discharge
    /// current (amps), from the best current estimate. `None` when no
    /// estimate exists yet or the current is not a discharge.
    pub fn time_to_empty_s(&self, discharge_current_a: f64) -> Option<f64> {
        if discharge_current_a <= 0.0 {
            return None;
        }
        let (soc, _) = self.estimate()?;
        Some(soc * 3600.0 * self.capacity_ah / discharge_current_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(time_s: f64, current_a: f64) -> Telemetry {
        Telemetry {
            time_s,
            voltage_v: 3.7,
            current_a,
            temperature_c: 25.0,
        }
    }

    #[test]
    fn absorb_integrates_coulomb_between_reports() {
        let mut cell = CellEntry::new(
            1,
            &CellConfig {
                initial_soc: 1.0,
                capacity_ah: 3.0,
            },
            None,
        );
        assert!(cell.absorb(telemetry(0.0, 3.0)));
        // 3 A for 1800 s = 1.5 Ah = half the capacity.
        assert!(cell.absorb(telemetry(1800.0, 3.0)));
        let (soc, source) = cell.estimate().expect("has telemetry");
        assert_eq!(source, SocEstimate::Coulomb);
        assert!((soc - 0.5).abs() < 1e-9, "soc {soc}");
        assert_eq!(cell.reports, 2);
    }

    #[test]
    fn rejects_nan_and_time_reversal() {
        let mut cell = CellEntry::new(1, &CellConfig::default(), None);
        assert!(cell.absorb(telemetry(10.0, 1.0)));
        assert!(!cell.absorb(telemetry(5.0, 1.0)), "time reversal accepted");
        let mut bad = telemetry(20.0, 1.0);
        bad.voltage_v = f64::NAN;
        assert!(!cell.absorb(bad), "NaN accepted");
        assert_eq!(cell.reports, 1);
        assert_eq!(cell.latest.unwrap().time_s, 10.0);
    }

    #[test]
    fn network_estimate_wins_only_when_fresh() {
        let mut cell = CellEntry::new(1, &CellConfig::default(), None);
        cell.absorb(telemetry(10.0, 1.0));
        cell.network_estimate = Some((10.0, 0.87));
        assert_eq!(cell.estimate(), Some((0.87, SocEstimate::Network)));
        // Newer telemetry makes the network estimate stale.
        cell.absorb(telemetry(20.0, 1.0));
        let (_, source) = cell.estimate().unwrap();
        assert_eq!(source, SocEstimate::Coulomb);
    }

    #[test]
    fn ekf_fallback_when_enabled() {
        let params = CellParams::lg_hg2();
        let mut cell = CellEntry::new(
            1,
            &CellConfig {
                initial_soc: 0.8,
                capacity_ah: params.capacity_ah,
            },
            Some(&params),
        );
        cell.absorb(telemetry(0.0, 1.0));
        cell.absorb(telemetry(60.0, 1.0));
        let (soc, source) = cell.estimate().unwrap();
        assert_eq!(source, SocEstimate::Ekf);
        assert!((0.0..=1.0).contains(&soc));
    }

    #[test]
    fn time_to_empty_scales_with_current() {
        let mut cell = CellEntry::new(
            1,
            &CellConfig {
                initial_soc: 0.5,
                capacity_ah: 3.0,
            },
            None,
        );
        cell.absorb(telemetry(0.0, 0.0));
        // Half of 3 Ah at 1.5 A = 1 hour.
        assert!((cell.time_to_empty_s(1.5).unwrap() - 3600.0).abs() < 1e-9);
        assert!((cell.time_to_empty_s(3.0).unwrap() - 1800.0).abs() < 1e-9);
        assert_eq!(cell.time_to_empty_s(0.0), None);
        assert_eq!(cell.time_to_empty_s(-1.0), None);
    }

    #[test]
    fn no_estimate_before_first_report() {
        let cell = CellEntry::new(1, &CellConfig::default(), None);
        assert_eq!(cell.estimate(), None);
        assert_eq!(cell.time_to_empty_s(1.0), None);
    }
}
