//! Identifiers and measurement records flowing into the fleet engine.

use serde::{Deserialize, Serialize};

/// Fleet-unique cell identifier.
///
/// A plain `u64` so producers (BMS gateways, message queues) can mint ids
/// without coordination; the engine shards on it.
pub type CellId = u64;

/// One telemetry report from a cell — exactly what a BMS can measure.
///
/// Matches the measurement half of `pinnsoc_battery::SimRecord` (there is
/// no ground-truth SoC here; estimating it is the engine's job).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Producer timestamp, seconds. Must be monotonically increasing per
    /// cell; the Coulomb integrator uses consecutive deltas.
    pub time_s: f64,
    /// Terminal voltage, volts.
    pub voltage_v: f64,
    /// Current, amps (positive = discharge, the workspace convention).
    pub current_a: f64,
    /// Cell temperature, °C.
    pub temperature_c: f64,
}

impl Telemetry {
    /// `true` when every field is finite (gateway glitches produce NaNs;
    /// the engine drops such reports instead of poisoning integrators).
    pub fn is_finite(&self) -> bool {
        self.time_s.is_finite()
            && self.voltage_v.is_finite()
            && self.current_a.is_finite()
            && self.temperature_c.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_check_catches_each_field() {
        let good = Telemetry {
            time_s: 1.0,
            voltage_v: 3.7,
            current_a: 1.0,
            temperature_c: 25.0,
        };
        assert!(good.is_finite());
        for k in 0..4 {
            let mut bad = good;
            match k {
                0 => bad.time_s = f64::NAN,
                1 => bad.voltage_v = f64::INFINITY,
                2 => bad.current_a = f64::NEG_INFINITY,
                _ => bad.temperature_c = f64::NAN,
            }
            assert!(!bad.is_finite(), "field {k}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let t = Telemetry {
            time_s: 12.5,
            voltage_v: 3.71,
            current_a: -0.5,
            temperature_c: 24.0,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Telemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
