//! Hot-swappable model storage.

use crate::obs::RegistryObs;
use pinnsoc::SocModel;
use pinnsoc_nn::PersistError;
use pinnsoc_obs::ObsHub;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Shared, versioned holder of the currently served [`SocModel`].
///
/// Readers take an [`Arc`] snapshot ([`ModelRegistry::current`]) and run
/// whole micro-batches against it, so a concurrent [`ModelRegistry::swap`]
/// never stalls or tears an in-flight batch — the new model simply applies
/// from each worker's next snapshot. The inner `RwLock` is held only for
/// the duration of an `Arc` clone or store, never across inference.
#[derive(Debug)]
pub struct ModelRegistry {
    model: RwLock<Arc<SocModel>>,
    version: AtomicU64,
    /// Write-once observability hook; `swap` reads it lock-free.
    obs: OnceLock<RegistryObs>,
}

impl ModelRegistry {
    /// Creates a registry serving `model` as version 1.
    pub fn new(model: SocModel) -> Self {
        Self {
            model: RwLock::new(Arc::new(model)),
            version: AtomicU64::new(1),
            obs: OnceLock::new(),
        }
    }

    /// Hooks swaps into `hub`: every [`ModelRegistry::swap`] updates the
    /// `pinnsoc_fleet_model_version` gauge and logs a ring event. First
    /// attachment wins; later calls are no-ops (the registry is shared
    /// across threads, so the hook is write-once by construction).
    pub fn attach_obs(&self, hub: &Arc<ObsHub>) {
        let version_gauge = hub.registry().gauge(
            "pinnsoc_fleet_model_version",
            "Version of the served model.",
        );
        let _ = self.obs.set(RegistryObs {
            hub: Arc::clone(hub),
            version_gauge,
        });
    }

    /// Snapshot of the model being served right now.
    pub fn current(&self) -> Arc<SocModel> {
        self.model.read().expect("registry lock poisoned").clone()
    }

    /// Serves `model` from the next snapshot on; returns the new version.
    pub fn swap(&self, model: SocModel) -> u64 {
        let label = self.obs.get().map(|_| model.label.clone());
        let version = {
            let mut served = self.model.write().expect("registry lock poisoned");
            *served = Arc::new(model);
            // Bump while still holding the write lock so concurrent swaps
            // cannot pair a returned version with another swap's model.
            self.version.fetch_add(1, Ordering::AcqRel) + 1
        };
        // Observability happens outside the write lock: a slow exporter
        // can never stall readers.
        if let (Some(obs), Some(label)) = (self.obs.get(), label) {
            obs.hub.registry().set(obs.version_gauge, version as f64);
            obs.hub
                .emit("fleet", format!("model swap to v{version} ('{label}')"));
        }
        version
    }

    /// Loads a model persisted with `pinnsoc_nn::save_json` and swaps it
    /// in; returns the new version.
    ///
    /// # Errors
    ///
    /// Returns the persistence error without touching the served model, so
    /// a bad file on disk can never take the fleet down.
    pub fn swap_from_json(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        let model: SocModel = pinnsoc_nn::load_json(path)?;
        Ok(self.swap(model))
    }

    /// Monotonic version of the served model (starts at 1, +1 per swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::untrained_model;

    #[test]
    fn swap_bumps_version_and_changes_snapshot() {
        let registry = ModelRegistry::new(untrained_model());
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let mut replacement = untrained_model();
        replacement.label = "v2".into();
        assert_eq!(registry.swap(replacement), 2);
        assert_eq!(registry.version(), 2);
        assert_eq!(registry.current().label, "v2");
        // The old snapshot stays alive for readers that pinned it.
        assert_eq!(before.label, "untrained");
    }

    #[test]
    fn pinned_snapshot_survives_swap() {
        let registry = ModelRegistry::new(untrained_model());
        let pinned = registry.current();
        let x = pinned.estimate(3.7, 1.0, 25.0);
        registry.swap(untrained_model());
        // Using the pinned snapshot after the swap is fine and stable.
        assert_eq!(pinned.estimate(3.7, 1.0, 25.0), x);
    }

    #[test]
    fn swap_from_json_roundtrip_and_error_path() {
        let registry = ModelRegistry::new(untrained_model());
        let dir = std::env::temp_dir().join("pinnsoc_fleet_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut stored = untrained_model();
        stored.label = "persisted".into();
        pinnsoc_nn::save_json(&stored, &path).unwrap();
        assert_eq!(registry.swap_from_json(&path).unwrap(), 2);
        assert_eq!(registry.current().label, "persisted");
        // A missing file leaves the served model untouched.
        assert!(registry.swap_from_json(dir.join("missing.json")).is_err());
        assert_eq!(registry.version(), 2);
        assert_eq!(registry.current().label, "persisted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_and_swaps() {
        let registry = Arc::new(ModelRegistry::new(untrained_model()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snapshot = registry.current();
                        let soc = snapshot.estimate(3.7, 1.0, 25.0);
                        assert!(soc.is_finite());
                    }
                });
            }
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                for _ in 0..50 {
                    registry.swap(untrained_model());
                }
            });
        });
        assert_eq!(registry.version(), 51);
    }
}
