//! Hot-swappable model storage, including the quantized-serving slot and
//! the gate-certificate contract that guards it.

use crate::obs::RegistryObs;
use pinnsoc::{model_fingerprint, QuantizedSocModel, SocModel};
use pinnsoc_nn::PersistError;
use pinnsoc_obs::ObsHub;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// What the registry serves right now: the f32 incumbent plus an optional
/// int8 shadow quantized *from that incumbent*. Held behind one lock so a
/// snapshot can never pair a quantized model with a different f32 model.
#[derive(Debug, Clone)]
pub struct ServingSnapshot {
    /// The f32 incumbent — always present, always the accuracy reference.
    pub model: Arc<SocModel>,
    /// Gate-certified int8 artifact of `model`, if one has been installed
    /// since the last [`ModelRegistry::swap`].
    pub quantized: Option<Arc<QuantizedSocModel>>,
}

/// Accuracy tolerance a quantized candidate must meet against the f32
/// incumbent: pass iff
/// `quantized_mae <= incumbent_mae * (1 + rel) + abs`.
///
/// Quantization trades precision for speed, so the criterion is
/// *within-tolerance* rather than *improves* — but the tolerance is still
/// enforced end-to-end on the scenario suite, never assumed from the
/// per-layer analytic bounds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GateTolerance {
    /// Allowed relative MAE regression (e.g. `0.05` = 5 %).
    pub rel: f64,
    /// Allowed absolute MAE slack on top (guards the tiny-MAE regime where
    /// a relative bound alone is meaninglessly strict).
    pub abs: f64,
}

impl Default for GateTolerance {
    fn default() -> Self {
        Self {
            rel: 0.05,
            abs: 1e-4,
        }
    }
}

impl GateTolerance {
    /// The pass criterion (see type docs).
    pub fn passes(&self, incumbent_mae: f64, quantized_mae: f64) -> bool {
        quantized_mae.is_finite()
            && incumbent_mae.is_finite()
            && quantized_mae <= incumbent_mae * (1.0 + self.rel) + self.abs
    }
}

/// Proof that a quantized candidate passed the scenario gate against a
/// specific incumbent. All fields are private and the only constructor is
/// [`GateCertificate::attest`], which refuses to mint a certificate for a
/// failing score — so a `GateCertificate` value *is* the pass, and
/// [`ModelRegistry::install_quantized`] (the only door into serving) can
/// demand one. Speed can never silently buy accuracy.
#[derive(Debug, Clone)]
pub struct GateCertificate {
    /// Fingerprint of the incumbent the gate compared against.
    incumbent_fingerprint: u64,
    /// Registry version of that incumbent when the gate ran.
    registry_version: u64,
    incumbent_mae: f64,
    quantized_mae: f64,
    tolerance: GateTolerance,
    scenarios: usize,
}

impl GateCertificate {
    /// Mints a certificate iff `quantized_mae` is within `tolerance` of
    /// `incumbent_mae` ([`GateTolerance::passes`]). Returns `None` for a
    /// failing score — a failing certificate cannot exist.
    ///
    /// `incumbent` and `registry_version` must describe the model the gate
    /// actually scored; [`ModelRegistry::install_quantized`] re-checks both
    /// against the live registry, so a stale certificate (incumbent swapped
    /// after the gate ran) is refused at installation.
    pub fn attest(
        incumbent: &SocModel,
        registry_version: u64,
        incumbent_mae: f64,
        quantized_mae: f64,
        tolerance: GateTolerance,
        scenarios: usize,
    ) -> Option<Self> {
        tolerance
            .passes(incumbent_mae, quantized_mae)
            .then(|| Self {
                incumbent_fingerprint: model_fingerprint(incumbent),
                registry_version,
                incumbent_mae,
                quantized_mae,
                tolerance,
                scenarios,
            })
    }

    /// Scenario-suite MAE of the incumbent when the gate ran.
    pub fn incumbent_mae(&self) -> f64 {
        self.incumbent_mae
    }

    /// Scenario-suite MAE of the certified quantized candidate.
    pub fn quantized_mae(&self) -> f64 {
        self.quantized_mae
    }

    /// The tolerance the gate enforced.
    pub fn tolerance(&self) -> GateTolerance {
        self.tolerance
    }

    /// How many scenarios the gate suite ran.
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Registry version the certificate is bound to.
    pub fn registry_version(&self) -> u64 {
        self.registry_version
    }
}

/// Why [`ModelRegistry::install_quantized`] refused a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// The registry's version moved since the certificate was minted: the
    /// gate compared against a model that is no longer serving.
    StaleCertificate {
        /// Version the certificate was bound to.
        certified: u64,
        /// Version serving now.
        current: u64,
    },
    /// The certificate's incumbent fingerprint does not match the live
    /// model (defence in depth beyond the version check).
    IncumbentMismatch,
    /// The candidate was quantized from different weights than the live
    /// incumbent — it approximates some other model.
    SourceMismatch,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::StaleCertificate { certified, current } => write!(
                f,
                "certificate bound to registry v{certified} but v{current} is serving"
            ),
            InstallError::IncumbentMismatch => {
                write!(
                    f,
                    "certificate incumbent fingerprint does not match the served model"
                )
            }
            InstallError::SourceMismatch => {
                write!(
                    f,
                    "candidate was quantized from different weights than the served model"
                )
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Shared, versioned holder of the currently served [`SocModel`] and its
/// optional gate-certified int8 shadow.
///
/// Readers take a [`ServingSnapshot`] ([`ModelRegistry::snapshot`]) and run
/// whole micro-batches against it, so a concurrent [`ModelRegistry::swap`]
/// never stalls or tears an in-flight batch — the new model simply applies
/// from each worker's next snapshot, and the f32/quantized pair in one
/// snapshot is always consistent. The inner `RwLock` is held only for the
/// duration of an `Arc` clone or store, never across inference.
///
/// A quantized model enters serving only through
/// [`ModelRegistry::install_quantized`] with a [`GateCertificate`]; a
/// [`ModelRegistry::swap`] clears the slot (the old artifact does not
/// approximate the new incumbent).
#[derive(Debug)]
pub struct ModelRegistry {
    served: RwLock<ServingSnapshot>,
    version: AtomicU64,
    /// Write-once observability hook; `swap` reads it lock-free.
    obs: OnceLock<RegistryObs>,
}

impl ModelRegistry {
    /// Creates a registry serving `model` as version 1, with no quantized
    /// shadow.
    pub fn new(model: SocModel) -> Self {
        Self {
            served: RwLock::new(ServingSnapshot {
                model: Arc::new(model),
                quantized: None,
            }),
            version: AtomicU64::new(1),
            obs: OnceLock::new(),
        }
    }

    /// Registry pre-seeded with an **uncertified** quantized shadow (its
    /// f32 source as the incumbent) — the gate's evaluation seam, reached
    /// only through `FleetEngine::new_quantized_eval`. Kept crate-private
    /// so no external caller can put an ungated quantized model behind a
    /// shared registry; production installation goes through
    /// [`ModelRegistry::install_quantized`].
    pub(crate) fn new_for_evaluation(quantized: Arc<QuantizedSocModel>) -> Self {
        Self {
            served: RwLock::new(ServingSnapshot {
                model: Arc::clone(quantized.source()),
                quantized: Some(quantized),
            }),
            version: AtomicU64::new(1),
            obs: OnceLock::new(),
        }
    }

    /// Hooks swaps into `hub`: every [`ModelRegistry::swap`] updates the
    /// `pinnsoc_fleet_model_version` gauge and logs a ring event. First
    /// attachment wins; later calls are no-ops (the registry is shared
    /// across threads, so the hook is write-once by construction).
    pub fn attach_obs(&self, hub: &Arc<ObsHub>) {
        let version_gauge = hub.registry().gauge(
            "pinnsoc_fleet_model_version",
            "Version of the served model.",
        );
        let _ = self.obs.set(RegistryObs {
            hub: Arc::clone(hub),
            version_gauge,
        });
    }

    /// Snapshot of the f32 model being served right now.
    pub fn current(&self) -> Arc<SocModel> {
        self.served
            .read()
            .expect("registry lock poisoned")
            .model
            .clone()
    }

    /// The quantized shadow being served right now, if any.
    pub fn quantized(&self) -> Option<Arc<QuantizedSocModel>> {
        self.served
            .read()
            .expect("registry lock poisoned")
            .quantized
            .clone()
    }

    /// Consistent snapshot of everything being served: the f32 incumbent
    /// and its quantized shadow come from one lock acquisition, so they
    /// can never be torn across a concurrent swap or installation.
    pub fn snapshot(&self) -> ServingSnapshot {
        self.served.read().expect("registry lock poisoned").clone()
    }

    /// Serves `model` from the next snapshot on; returns the new version.
    ///
    /// Clears any installed quantized shadow: it approximated the *old*
    /// incumbent, and serving it against the new one would break the gate
    /// contract.
    pub fn swap(&self, model: SocModel) -> u64 {
        let label = self.obs.get().map(|_| model.label.clone());
        let version = {
            let mut served = self.served.write().expect("registry lock poisoned");
            served.model = Arc::new(model);
            served.quantized = None;
            // Bump while still holding the write lock so concurrent swaps
            // cannot pair a returned version with another swap's model.
            self.version.fetch_add(1, Ordering::AcqRel) + 1
        };
        // Observability happens outside the write lock: a slow exporter
        // can never stall readers.
        if let (Some(obs), Some(label)) = (self.obs.get(), label) {
            obs.hub.registry().set(obs.version_gauge, version as f64);
            obs.hub
                .emit("fleet", format!("model swap to v{version} ('{label}')"));
        }
        version
    }

    /// Installs a gate-certified quantized shadow of the *current*
    /// incumbent; int8-mode engines serve it from their next snapshot.
    /// Returns the registry version it was installed under.
    ///
    /// The certificate is re-validated against the live registry under the
    /// write lock: its bound version and incumbent fingerprint must match
    /// what is serving *now*, and the candidate's source fingerprint must
    /// match too. A candidate that skipped the gate cannot forge the
    /// certificate (no public constructor mints a failing one), and a
    /// certificate outlived by a swap is refused here.
    ///
    /// # Errors
    ///
    /// See [`InstallError`]; the served state is untouched on error.
    pub fn install_quantized(
        &self,
        quantized: Arc<QuantizedSocModel>,
        certificate: &GateCertificate,
    ) -> Result<u64, InstallError> {
        let version = {
            let mut served = self.served.write().expect("registry lock poisoned");
            let current = self.version.load(Ordering::Acquire);
            if certificate.registry_version != current {
                return Err(InstallError::StaleCertificate {
                    certified: certificate.registry_version,
                    current,
                });
            }
            let live = model_fingerprint(&served.model);
            if certificate.incumbent_fingerprint != live {
                return Err(InstallError::IncumbentMismatch);
            }
            if quantized.fingerprint() != live {
                return Err(InstallError::SourceMismatch);
            }
            served.quantized = Some(quantized);
            current
        };
        if let Some(obs) = self.obs.get() {
            obs.hub.emit(
                "fleet",
                format!(
                    "quantized model installed under v{version} (gate MAE {:.5} vs {:.5})",
                    certificate.quantized_mae, certificate.incumbent_mae
                ),
            );
        }
        Ok(version)
    }

    /// Loads a model persisted with `pinnsoc_nn::save_json` and swaps it
    /// in; returns the new version.
    ///
    /// # Errors
    ///
    /// Returns the persistence error without touching the served model, so
    /// a bad file on disk can never take the fleet down.
    pub fn swap_from_json(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        let model: SocModel = pinnsoc_nn::load_json(path)?;
        Ok(self.swap(model))
    }

    /// Monotonic version of the served model (starts at 1, +1 per swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{quantize_untrained, untrained_model};

    #[test]
    fn swap_bumps_version_and_changes_snapshot() {
        let registry = ModelRegistry::new(untrained_model());
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let mut replacement = untrained_model();
        replacement.label = "v2".into();
        assert_eq!(registry.swap(replacement), 2);
        assert_eq!(registry.version(), 2);
        assert_eq!(registry.current().label, "v2");
        // The old snapshot stays alive for readers that pinned it.
        assert_eq!(before.label, "untrained");
    }

    #[test]
    fn pinned_snapshot_survives_swap() {
        let registry = ModelRegistry::new(untrained_model());
        let pinned = registry.current();
        let x = pinned.estimate(3.7, 1.0, 25.0);
        registry.swap(untrained_model());
        // Using the pinned snapshot after the swap is fine and stable.
        assert_eq!(pinned.estimate(3.7, 1.0, 25.0), x);
    }

    #[test]
    fn swap_from_json_roundtrip_and_error_path() {
        let registry = ModelRegistry::new(untrained_model());
        let dir = std::env::temp_dir().join("pinnsoc_fleet_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut stored = untrained_model();
        stored.label = "persisted".into();
        pinnsoc_nn::save_json(&stored, &path).unwrap();
        assert_eq!(registry.swap_from_json(&path).unwrap(), 2);
        assert_eq!(registry.current().label, "persisted");
        // A missing file leaves the served model untouched.
        assert!(registry.swap_from_json(dir.join("missing.json")).is_err());
        assert_eq!(registry.version(), 2);
        assert_eq!(registry.current().label, "persisted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_and_swaps() {
        let registry = Arc::new(ModelRegistry::new(untrained_model()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snapshot = registry.current();
                        let soc = snapshot.estimate(3.7, 1.0, 25.0);
                        assert!(soc.is_finite());
                    }
                });
            }
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                for _ in 0..50 {
                    registry.swap(untrained_model());
                }
            });
        });
        assert_eq!(registry.version(), 51);
    }

    #[test]
    fn attest_refuses_failing_scores() {
        let model = untrained_model();
        let tol = GateTolerance {
            rel: 0.05,
            abs: 1e-4,
        };
        assert!(GateCertificate::attest(&model, 1, 0.02, 0.0212, tol, 2).is_none());
        assert!(GateCertificate::attest(&model, 1, 0.02, f64::NAN, tol, 2).is_none());
        let cert = GateCertificate::attest(&model, 1, 0.02, 0.0209, tol, 2).unwrap();
        assert_eq!(cert.registry_version(), 1);
        assert!(cert.quantized_mae() <= cert.incumbent_mae() * 1.05 + 1e-4);
    }

    #[test]
    fn install_validates_version_and_fingerprints() {
        let incumbent = untrained_model();
        let registry = ModelRegistry::new(incumbent.clone());
        let quantized = Arc::new(quantize_untrained(&registry.current()));
        let tol = GateTolerance::default();

        // Stale version: certificate minted against v1, registry at v2.
        let cert = GateCertificate::attest(&incumbent, 1, 0.02, 0.02, tol, 2).unwrap();
        registry.swap(incumbent.clone());
        assert_eq!(
            registry.install_quantized(Arc::clone(&quantized), &cert),
            Err(InstallError::StaleCertificate {
                certified: 1,
                current: 2
            })
        );
        assert!(registry.quantized().is_none());

        // Matching version but wrong incumbent fingerprint.
        let other = crate::testing::untrained_model_seeded(99);
        let cert = GateCertificate::attest(&other, 2, 0.02, 0.02, tol, 2).unwrap();
        assert_eq!(
            registry.install_quantized(Arc::clone(&quantized), &cert),
            Err(InstallError::IncumbentMismatch)
        );

        // Candidate quantized from different weights than the incumbent.
        let cert = GateCertificate::attest(&incumbent, 2, 0.02, 0.02, tol, 2).unwrap();
        let foreign = Arc::new(quantize_untrained(&Arc::new(
            crate::testing::untrained_model_seeded(99),
        )));
        assert_eq!(
            registry.install_quantized(foreign, &cert),
            Err(InstallError::SourceMismatch)
        );

        // The legitimate path: re-quantize from the live incumbent.
        let quantized = Arc::new(quantize_untrained(&registry.current()));
        assert_eq!(
            registry.install_quantized(Arc::clone(&quantized), &cert),
            Ok(2)
        );
        let snap = registry.snapshot();
        assert!(snap.quantized.is_some());
        assert_eq!(
            snap.quantized.unwrap().fingerprint(),
            pinnsoc::model_fingerprint(&snap.model)
        );
    }

    #[test]
    fn swap_clears_quantized_slot() {
        let incumbent = untrained_model();
        let registry = ModelRegistry::new(incumbent.clone());
        let quantized = Arc::new(quantize_untrained(&registry.current()));
        let cert = GateCertificate::attest(&incumbent, 1, 0.02, 0.02, GateTolerance::default(), 2)
            .unwrap();
        registry.install_quantized(quantized, &cert).unwrap();
        assert!(registry.quantized().is_some());
        registry.swap(untrained_model());
        assert!(
            registry.quantized().is_none(),
            "a swap must clear the quantized shadow: it approximates the old incumbent"
        );
    }
}
