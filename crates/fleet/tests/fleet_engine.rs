//! Integration tests for the fleet engine: batched-vs-scalar parity across
//! the crate boundary, and ground-truth tracking over a simulated 1k-cell
//! fleet.

use pinnsoc::{train, PinnVariant, PredictQuery, TrainConfig};
use pinnsoc_battery::{CellParams, CellSim, Chemistry, Soc};
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use pinnsoc_fleet::{
    testing::untrained_model, CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry,
    WorkloadQuery,
};

/// The issue's headline parity requirement: one batched `predict_batch`
/// call must reproduce the per-cell `predict` loop to ≤ 1e-12 (we assert
/// bitwise, which is stronger).
#[test]
fn predict_batch_is_identical_to_per_cell_loop() {
    let model = untrained_model();
    let queries: Vec<PredictQuery> = (0..1000)
        .map(|i| {
            let t = i as f64 / 999.0;
            PredictQuery {
                voltage_v: 2.9 + 1.3 * t,
                current_a: 8.0 * t - 1.0,
                temperature_c: 5.0 + 35.0 * t,
                avg_current_a: 6.0 * t,
                avg_temperature_c: 15.0 + 20.0 * t,
                horizon_s: 30.0 + 300.0 * t,
            }
        })
        .collect();
    let batched = model.predict_batch(&queries);
    assert_eq!(batched.len(), queries.len());
    for (b, q) in batched.iter().zip(&queries) {
        let scalar = model.predict(
            q.voltage_v,
            q.current_a,
            q.temperature_c,
            q.avg_current_a,
            q.avg_temperature_c,
            q.horizon_s,
        );
        let diff = (b - scalar).abs();
        assert!(
            diff <= 1e-12,
            "batched {b} vs scalar {scalar} (diff {diff:e})"
        );
        assert_eq!(b.to_bits(), scalar.to_bits(), "parity must be bitwise");
    }
}

/// A 1k-cell fleet driven by the electro-thermal simulator: the engine's
/// running Coulomb integrators must track the simulator's exact
/// ground-truth SoC, and the trained network estimates must land close on
/// in-distribution conditions.
#[test]
fn thousand_cell_fleet_tracks_ground_truth_coulomb_soc() {
    // Quick paper-protocol training run (Sandia-like, one condition).
    let dataset = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    });
    let config = TrainConfig {
        b1_epochs: 60,
        b2_epochs: 1,
        batch_size: 16,
        ..TrainConfig::sandia(PinnVariant::NoPinn, 7)
    };
    let (model, _) = train(&dataset, &config);

    let params = CellParams::nmc_18650();
    let cells = 1000u64;
    let mut engine = FleetEngine::new(
        model,
        FleetConfig {
            shards: 8,
            micro_batch: 128,
            // Force real worker threads so the persistent-pool handoff is
            // exercised even on single-core test hosts.
            workers: 2,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    let mut sims: Vec<CellSim> = (0..cells)
        .map(|_| CellSim::new(params.clone(), Soc::FULL, 25.0))
        .collect();
    for id in 0..cells {
        engine.register(
            id,
            CellConfig {
                initial_soc: 1.0,
                capacity_ah: params.capacity_ah,
            },
        );
    }

    // Anchor every integrator at t = 0 (a report only covers the interval
    // since the previous one, so the first report integrates nothing).
    for id in 0..cells {
        engine.ingest(
            id,
            Telemetry {
                time_s: 0.0,
                voltage_v: 4.1,
                current_a: 0.0,
                temperature_c: 25.0,
            },
        );
    }
    // Drive every cell near the training condition (±10% around 1C) for
    // 30 minutes of simulated time, reporting every 30 s; process in
    // bursts so several reports coalesce per pass.
    let dt_s = 30.0;
    let steps = 60;
    let mut total_absorbed = 0usize;
    for step in 1..=steps {
        for (id, sim) in sims.iter_mut().enumerate() {
            let c_rate = 0.9 + 0.2 * (id as f64 / (cells - 1) as f64);
            let current_a = params.c_rate(c_rate);
            let record = sim.step(current_a, dt_s);
            engine.ingest(
                id as u64,
                Telemetry {
                    time_s: step as f64 * dt_s,
                    voltage_v: record.voltage_v,
                    current_a: record.current_a,
                    temperature_c: record.temperature_c,
                },
            );
        }
        if step % 10 == 0 {
            let (absorbed, estimated) = engine.process_pending();
            total_absorbed += absorbed;
            assert_eq!(
                estimated, cells as usize,
                "every cell reported in the burst"
            );
        }
    }
    assert_eq!(
        total_absorbed,
        cells as usize * (steps + 1),
        "anchor + one per step"
    );

    // The Coulomb integrators saw the exact currents over the exact
    // intervals, so they must match the simulator's ground truth to float
    // accumulation error.
    let mut network_abs_err = 0.0;
    for (id, sim) in sims.iter().enumerate() {
        let truth = sim.state().soc.value();
        let entry = engine.cell(id as u64).expect("registered");
        let coulomb = entry.coulomb_soc;
        assert!(
            (coulomb - truth).abs() < 1e-9,
            "cell {id}: coulomb {coulomb} vs truth {truth}"
        );
        let (estimate, source) = entry.estimate().expect("estimated");
        assert_eq!(
            source,
            SocEstimate::Network,
            "network pass covered the last report"
        );
        network_abs_err += (estimate - truth).abs();
    }
    let network_mae = network_abs_err / cells as f64;
    assert!(
        network_mae < 0.1,
        "trained-network fleet MAE {network_mae:.4} out of band on in-distribution load"
    );

    // Fleet aggregates agree with the per-cell walk.
    let stats = engine.stats();
    assert_eq!(stats.cells, cells as usize);
    assert_eq!(stats.reporting, cells as usize);
    assert_eq!(
        engine.soc_histogram(10).iter().sum::<usize>(),
        cells as usize
    );
    let nearly_all = engine.cells_below(1.1);
    assert_eq!(nearly_all.len(), cells as usize);

    // Batched fleet-wide prediction runs over every reporting cell.
    let predictions = engine.predict_all(WorkloadQuery {
        avg_current_a: params.c_rate(1.0),
        avg_temperature_c: 25.0,
        horizon_s: 120.0,
    });
    assert_eq!(predictions.len(), cells as usize);
    assert!(predictions.iter().all(|(_, p)| p.is_finite()));
}

/// The engine must keep working at the 100k-cell scale named in the
/// acceptance criteria (one report per cell, single batched pass).
#[test]
fn hundred_thousand_cells_single_pass() {
    let cells = 100_000u64;
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 8,
            micro_batch: 1024,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..cells {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.8,
                capacity_ah: 3.0,
            },
        );
    }
    assert_eq!(engine.len(), cells as usize);
    for id in 0..cells {
        let t = id as f64 / cells as f64;
        engine.ingest(
            id,
            Telemetry {
                time_s: 1.0,
                voltage_v: 3.0 + 1.1 * t,
                current_a: 5.0 * t,
                temperature_c: 15.0 + 20.0 * t,
            },
        );
    }
    let (absorbed, estimated) = engine.process_pending();
    assert_eq!(absorbed, cells as usize);
    assert_eq!(estimated, cells as usize);
    let stats = engine.stats();
    assert_eq!(stats.reporting, cells as usize);
    assert!(stats.min_soc.is_finite() && stats.max_soc.is_finite());
}
