//! Flight-recorder integration: the engine's traced ticks must form a
//! complete engine_tick → pass → stage causal tree, and tracing must
//! never perturb estimates (bit-identity) or record anything when the
//! recorder is disabled.

use pinnsoc_battery::CellParams;
use pinnsoc_fleet::{testing::untrained_model, CellConfig, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_obs::{FlightRecorder, TraceSpan};
use std::collections::HashMap;

const CELLS: u64 = 64;

fn engine() -> FleetEngine {
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 4,
            micro_batch: 8,
            workers: 1,
            ekf_fallback: Some(CellParams::nmc_18650()),
            ..FleetConfig::default()
        },
    );
    for id in 0..CELLS {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    engine
}

fn drive(engine: &mut FleetEngine, ticks: std::ops::RangeInclusive<u64>) {
    for tick in ticks {
        for id in 0..CELLS {
            engine.ingest(
                id,
                Telemetry {
                    time_s: tick as f64 * 10.0,
                    voltage_v: 3.4 + id as f64 * 0.01,
                    current_a: 0.5 + (tick % 3) as f64,
                    temperature_c: 20.0 + id as f64 * 0.1,
                },
            );
        }
        engine.process_pending();
    }
}

fn estimates(engine: &FleetEngine) -> Vec<(u64, u64)> {
    engine
        .ids()
        .into_iter()
        .map(|id| {
            let (soc, _) = engine.estimate(id).expect("estimate");
            (id, soc.to_bits())
        })
        .collect()
}

#[test]
fn traced_ticks_form_complete_span_trees() {
    let recorder = FlightRecorder::new(16_384);
    let mut engine = engine();
    engine.attach_tracer(&recorder, 1);
    assert!(engine.tracer_attached());
    drive(&mut engine, 1..=3);
    let spans = recorder.drain();
    let by_id: HashMap<u64, &TraceSpan> = spans.iter().map(|s| (s.id, s)).collect();
    let ticks: Vec<_> = spans.iter().filter(|s| s.name == "engine_tick").collect();
    assert_eq!(ticks.len(), 3, "one engine_tick span per process_pending");
    let passes: Vec<_> = spans.iter().filter(|s| s.name == "pass").collect();
    // Every cell reports every tick, so all 4 shards pass each tick.
    assert_eq!(passes.len(), 12, "4 shard passes per tick");
    for pass in &passes {
        let parent = by_id.get(&pass.parent).expect("pass parent present");
        assert_eq!(parent.name, "engine_tick");
        assert_eq!(pass.pid, 1, "lane pid propagates to shard spans");
        assert!(pass.tid < 4, "tid is the shard index");
    }
    for stage_name in ["gather", "gemm", "scatter"] {
        let stages: Vec<_> = spans.iter().filter(|s| s.name == stage_name).collect();
        assert_eq!(stages.len(), 12, "one {stage_name} per pass");
        for stage in stages {
            assert_eq!(by_id[&stage.parent].name, "pass");
        }
    }
    // The pool run nests inside the tick too.
    let pool_runs: Vec<_> = spans.iter().filter(|s| s.name == "pool_run").collect();
    assert_eq!(pool_runs.len(), 3);
    for run in pool_runs {
        assert_eq!(by_id[&run.parent].name, "engine_tick");
    }
    // Worker attribution: every span carries a non-zero recording thread.
    assert!(spans.iter().all(|s| s.worker != 0));
}

#[test]
fn tracing_never_perturbs_estimates() {
    let mut control = engine();
    drive(&mut control, 1..=5);
    let recorder = FlightRecorder::new(4096);
    let mut traced = engine();
    traced.attach_tracer(&recorder, 7);
    drive(&mut traced, 1..=5);
    assert_eq!(
        estimates(&control),
        estimates(&traced),
        "estimates must be bit-identical with tracing attached"
    );
    assert!(!recorder.is_empty(), "tracing actually recorded");
}

#[test]
fn disabled_recorder_records_nothing() {
    let recorder = FlightRecorder::new(4096);
    recorder.set_enabled(false);
    let mut engine = engine();
    engine.attach_tracer(&recorder, 1);
    drive(&mut engine, 1..=3);
    assert!(recorder.is_empty());
    assert_eq!(recorder.dropped_total(), 0);
    // Flipping it back on mid-flight starts recording at the next tick.
    recorder.set_enabled(true);
    drive(&mut engine, 4..=4);
    let spans = recorder.drain();
    assert!(spans.iter().any(|s| s.name == "engine_tick"));
    assert!(spans.iter().any(|s| s.name == "pass"));
}
