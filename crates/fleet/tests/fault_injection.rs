//! Fault-injection engine tests: corrupted telemetry aimed at one cell must
//! never panic, never leak into any other cell's state (bit-match against a
//! clean run), and must be surfaced in the engine's telemetry accounting
//! rather than silently dropped.

use pinnsoc_battery::CellParams;
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry, TelemetryStats};

const CELLS: u64 = 40;
const VICTIM: u64 = 17;

fn engine() -> FleetEngine {
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 4,
            micro_batch: 8,
            workers: 1,
            ekf_fallback: Some(CellParams::nmc_18650()),
            ..FleetConfig::default()
        },
    );
    for id in 0..CELLS {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    engine
}

fn clean_report(id: u64, tick: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.4 + id as f64 * 0.01,
        current_a: 0.5 + (tick % 3) as f64,
        temperature_c: 20.0 + id as f64 * 0.1,
    }
}

/// Streams ten clean ticks into the engine, optionally injecting faulty
/// reports for the victim cell via `inject`, and returns the per-cell
/// estimate/breakdown state.
fn run(mut inject: impl FnMut(&mut FleetEngine, u64)) -> (FleetEngine, Vec<String>) {
    let mut engine = engine();
    for tick in 1..=10 {
        for id in 0..CELLS {
            engine.ingest(id, clean_report(id, tick));
        }
        inject(&mut engine, tick);
        engine.process_pending();
    }
    // Bit-exact state fingerprint per cell: best estimate bits, source, and
    // the full estimator breakdown (network / coulomb / EKF).
    let state = (0..CELLS)
        .map(|id| {
            let (soc, source) = engine.estimate(id).expect("all cells report");
            let b = engine.estimate_breakdown(id).expect("breakdown");
            format!(
                "{:x} {source:?} {:x?} {} {:x} {:x?}",
                soc.to_bits(),
                b.network.map(f64::to_bits),
                b.network_fresh,
                b.coulomb.to_bits(),
                b.ekf.map(f64::to_bits),
            )
        })
        .collect();
    (engine, state)
}

/// Faulty reports for one cell must not perturb any other cell, bit for bit.
fn assert_unaffected_others(faulty: &[String], clean: &[String]) {
    for id in 0..CELLS {
        if id == VICTIM {
            continue;
        }
        assert_eq!(
            faulty[id as usize], clean[id as usize],
            "cell {id}: corrupted by cell {VICTIM}'s faulty telemetry"
        );
    }
}

#[test]
fn non_finite_telemetry_never_panics_or_leaks() {
    let (_, clean) = run(|_, _| {});
    let (engine, faulty) = run(|engine, tick| {
        for field in 0..4u32 {
            let mut bad = clean_report(VICTIM, tick);
            // Stagger the timestamps so the coalesce loop sees the bad
            // reports in several positions relative to the clean stream.
            bad.time_s += field as f64;
            match field {
                0 => bad.time_s = f64::NAN,
                1 => bad.voltage_v = f64::INFINITY,
                2 => bad.current_a = f64::NEG_INFINITY,
                _ => bad.temperature_c = f64::NAN,
            }
            engine.ingest(VICTIM, bad);
        }
    });
    // Rejected wholesale: the victim's state bit-matches the clean run too.
    assert_unaffected_others(&faulty, &clean);
    assert_eq!(faulty[VICTIM as usize], clean[VICTIM as usize]);
    let stats = engine.telemetry_stats();
    assert_eq!(stats.rejected_non_finite, 40, "4 bad reports x 10 ticks");
    assert_eq!(stats.accepted, CELLS * 10);
}

#[test]
fn out_of_order_telemetry_never_panics_or_leaks() {
    let (_, clean) = run(|_, _| {});
    let (engine, faulty) = run(|engine, tick| {
        // A stale report from two ticks ago, after the fresh one.
        if tick >= 2 {
            engine.ingest(VICTIM, clean_report(VICTIM, tick - 2));
        }
    });
    assert_unaffected_others(&faulty, &clean);
    assert_eq!(
        faulty[VICTIM as usize], clean[VICTIM as usize],
        "time-reversed reports must be rejected without a trace"
    );
    let stats = engine.telemetry_stats();
    assert_eq!(stats.rejected_time_reversed, 9);
    assert_eq!(stats.rejected_non_finite, 0);
}

#[test]
fn duplicate_telemetry_never_panics_or_leaks() {
    let (_, clean) = run(|_, _| {});
    let (engine, faulty) = run(|engine, tick| {
        engine.ingest(VICTIM, clean_report(VICTIM, tick));
    });
    // A byte-identical duplicate integrates nothing (dt = 0) and overwrites
    // the latest reading with the same values: even the victim bit-matches.
    assert_unaffected_others(&faulty, &clean);
    assert_eq!(faulty[VICTIM as usize], clean[VICTIM as usize]);
    let stats = engine.telemetry_stats();
    assert_eq!(stats.duplicate_timestamp, 10);
    assert_eq!(
        stats.accepted,
        CELLS * 10 + 10,
        "duplicates count as accepted"
    );
}

#[test]
fn mixed_fault_burst_keeps_the_whole_fleet_serving() {
    // Everything at once, against several victims, at high volume.
    let (engine, state) = run(|engine, tick| {
        for id in [VICTIM, 0, CELLS - 1] {
            let mut nan = clean_report(id, tick);
            nan.voltage_v = f64::NAN;
            engine.ingest(id, nan);
            engine.ingest(id, clean_report(id, tick)); // duplicate
            if tick >= 3 {
                engine.ingest(id, clean_report(id, tick - 2)); // stale
            }
        }
        engine.ingest(9_999_999, clean_report(0, tick)); // unknown id
    });
    for (id, s) in state.iter().enumerate() {
        assert!(!s.is_empty(), "cell {id} lost its estimate");
        let (soc, source) = engine.estimate(id as u64).unwrap();
        assert!((0.0..=1.0).contains(&soc));
        assert_eq!(source, SocEstimate::Network, "cell {id}");
    }
    let stats = engine.telemetry_stats();
    let expected = TelemetryStats {
        accepted: CELLS * 10 + 30,
        duplicate_timestamp: 30,
        rejected_non_finite: 30,
        rejected_time_reversed: 24,
        unknown_cell: 10,
    };
    assert_eq!(stats, expected);
    assert_eq!(
        stats.rejected(),
        30 + 24 + 10,
        "rejected() sums every rejection cause"
    );
}
