//! Thin host crate for the pinnsoc workspace's top-level `tests/` and
//! `examples/`.
//!
//! The reproduction itself lives in the `crates/` members (see the crate
//! map in `pinnsoc`'s documentation); this package exists so that
//! `cargo test` compiles and runs the workspace-level integration suite and
//! `cargo run --example` finds the walkthroughs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pinnsoc;
pub use pinnsoc_battery;
pub use pinnsoc_cycles;
pub use pinnsoc_data;
pub use pinnsoc_fleet;
pub use pinnsoc_nn;
