//! End-to-end train → serve: models produced by the pool-parallel trainer
//! hot-swap into a running fleet engine between micro-batches, and the
//! engine's post-swap outputs are bit-identical to scalar calls on the
//! freshly trained model.

use pinnsoc::{train, train_many, PinnVariant, TrainConfig, TrainTask};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig, SocDataset};
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry};
use std::sync::Arc;

fn dataset() -> SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    })
}

fn quick(variant: PinnVariant, seed: u64) -> TrainConfig {
    TrainConfig {
        b1_epochs: 10,
        b2_epochs: 10,
        batch_size: 32,
        ..TrainConfig::sandia(variant, seed)
    }
}

#[test]
fn train_many_output_hot_swaps_into_a_running_engine() {
    let ds = Arc::new(dataset());
    // Bootstrap model serves while the candidates train.
    let (bootstrap, _) = train(&ds, &quick(PinnVariant::PhysicsOnly, 1));
    let mut engine = FleetEngine::new(
        bootstrap,
        FleetConfig {
            shards: 4,
            micro_batch: 16,
            workers: 1,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..100u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.8,
                capacity_ah: 3.0,
            },
        );
    }
    let feed = |engine: &mut FleetEngine, t: f64| {
        for id in 0..100u64 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: t,
                    voltage_v: 3.4 + (id % 10) as f64 * 0.05,
                    current_a: (id % 4) as f64,
                    temperature_c: 24.0,
                },
            );
        }
        engine.process_pending()
    };
    assert_eq!(feed(&mut engine, 1.0), (100, 100));
    let v1 = engine.registry().version();

    // Pool-parallel candidates; the equivalence with serial train() is
    // covered in pinnsoc's unit tests — here we care about the wiring.
    let trained = train_many(
        vec![
            TrainTask::new(Arc::clone(&ds), quick(PinnVariant::NoPinn, 7)),
            TrainTask::new(
                Arc::clone(&ds),
                quick(PinnVariant::pinn_all(&[120.0, 240.0]), 8),
            ),
        ],
        1,
    );
    assert_eq!(trained.len(), 2);
    let (pinn, _) = trained.into_iter().nth(1).expect("second candidate");
    let reference = pinn.clone();
    assert_eq!(engine.registry().swap(pinn), v1 + 1);

    // Next tick runs against the swapped model: every estimate must match
    // a scalar call on the trained model bit-for-bit (through the fleet's
    // [0, 1] clamp), and no cell is dropped across the swap.
    assert_eq!(feed(&mut engine, 2.0), (100, 100));
    for id in 0..100u64 {
        let (soc, source) = engine.estimate(id).expect("estimated");
        assert_eq!(source, SocEstimate::Network);
        let scalar = reference
            .estimate(3.4 + (id % 10) as f64 * 0.05, (id % 4) as f64, 24.0)
            .clamp(0.0, 1.0);
        assert_eq!(soc.to_bits(), scalar.to_bits(), "cell {id}");
    }
}
