//! End-to-end online adaptation: drift injected → detector triggers →
//! background fine-tune on the pool → promotion gate → hot-swap — with the
//! gate-failure path leaving the serving model untouched, and the whole
//! loop bit-identical across worker counts.

use pinnsoc::{PinnVariant, TrainConfig};
use pinnsoc_adapt::{
    AdaptOutcome, AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig, HarvestConfig,
    QuantizeConfig,
};
use pinnsoc_battery::{CellParams, CellSim, Soc};
use pinnsoc_bench::demo_training_dataset;
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry};
use pinnsoc_scenario::{gate_suite, EngineSpec};
use std::sync::Arc;

const CELLS: u64 = 8;

fn adaptation_config(workers: usize) -> AdaptationConfig {
    // A small gate: the standard gate scenarios, shrunk CI-size.
    let suite = gate_suite(42)
        .into_iter()
        .map(|mut s| {
            s.population.cells = 4;
            s.timing.duration_s = 120.0;
            s
        })
        .collect();
    AdaptationConfig {
        drift: DriftConfig {
            window: 128,
            threshold: 0.05,
            min_samples: 32,
        },
        harvest: HarvestConfig {
            reservoir_capacity: 512,
            seed: 9,
            min_dt_s: 1.0,
            rated_capacity_ah: 3.0,
            ..HarvestConfig::default()
        },
        fine_tune: TrainConfig {
            b1_epochs: 20,
            b2_epochs: 0, // Branch-1-only fine-tune
            batch_size: 32,
            ..TrainConfig::sandia(PinnVariant::NoPinn, 0)
        },
        candidate_seeds: vec![1],
        gate: GateConfig {
            suite,
            runner_workers: workers,
            engine: EngineSpec {
                shards: 2,
                micro_batch: 16,
                workers,
            },
            min_improvement: 0.0,
        },
        train_workers: workers,
        lab_cycles: 1,
        min_reservoir: 64,
        cooldown_ticks: 50,
        quantize: None,
    }
}

/// Drives a fleet of ground-truth simulators for `seconds` of telemetry
/// under a time-varying load, processing and observing every 10 s, and
/// returns the engine plus the adaptation engine's outcomes.
fn run_session(
    adapt: &mut AdaptationEngine,
    workers: usize,
    seconds: usize,
) -> (FleetEngine, Vec<AdaptOutcome>) {
    let params = CellParams::nmc_18650();
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 2,
            micro_batch: 16,
            workers,
            ekf_fallback: Some(params.clone()),
            ..FleetConfig::default()
        },
    );
    let mut sims = Vec::new();
    for id in 0..CELLS {
        let initial = 0.95 - id as f64 * 0.02;
        engine.register(
            id,
            CellConfig {
                initial_soc: initial,
                capacity_ah: params.capacity_ah,
            },
        );
        sims.push(CellSim::new(params.clone(), Soc::clamped(initial), 25.0));
    }
    let mut outcomes = Vec::new();
    for t in 1..=seconds {
        // A dynamic load regime the lab model never saw: per-cell phase-
        // shifted current swings between regen and ~2C discharge.
        for (i, sim) in sims.iter_mut().enumerate() {
            let current = 2.5 + 2.0 * ((t as f64 / 25.0) + i as f64 * 0.7).sin();
            let rec = sim.step(current, 1.0);
            engine.ingest(
                i as u64,
                Telemetry {
                    time_s: t as f64,
                    voltage_v: rec.voltage_v,
                    current_a: rec.current_a,
                    temperature_c: rec.temperature_c,
                },
            );
        }
        if t % 10 == 0 {
            engine.process_pending();
            outcomes.push(adapt.observe_tick(&engine));
        }
    }
    (engine, outcomes)
}

#[test]
fn drift_triggers_fine_tune_gate_and_hot_swap() {
    let lab = Arc::new(demo_training_dataset());
    let mut adapt = AdaptationEngine::new(adaptation_config(0), Arc::clone(&lab));
    let (mut engine, outcomes) = run_session(&mut adapt, 0, 400);

    let promoted_at = outcomes
        .iter()
        .position(|o| matches!(o, AdaptOutcome::Promoted { .. }))
        .expect("drift on an untrained network must promote a candidate");
    let AdaptOutcome::Promoted {
        version,
        incumbent_mae,
        candidate_mae,
        ..
    } = &outcomes[promoted_at]
    else {
        unreachable!()
    };
    assert_eq!(*version, 2, "first swap bumps the registry to v2");
    assert!(
        candidate_mae < incumbent_mae,
        "gate passed without improvement: {candidate_mae} vs {incumbent_mae}"
    );
    assert_eq!(engine.registry().version(), 2);
    let report = adapt.report();
    assert_eq!(report.triggers, 1, "cooldown paces further rounds");
    assert_eq!((report.gate_passes, report.swaps), (1, 1));
    assert!(report.harvest.harvested >= 64);
    let promoted = engine.registry().current();
    assert!(promoted.label.starts_with("untrained+adapt"));

    // Post-swap estimates bit-match scalar calls on the promoted model.
    for id in 0..CELLS {
        engine.ingest(
            id,
            Telemetry {
                time_s: 1e6,
                voltage_v: 3.5 + id as f64 * 0.02,
                current_a: 1.5,
                temperature_c: 24.0,
            },
        );
    }
    engine.process_pending();
    for id in 0..CELLS {
        let (soc, source) = engine.estimate(id).expect("estimated");
        assert_eq!(source, SocEstimate::Network);
        let scalar = promoted
            .estimate(3.5 + id as f64 * 0.02, 1.5, 24.0)
            .clamp(0.0, 1.0);
        assert_eq!(soc.to_bits(), scalar.to_bits(), "cell {id}");
    }

    // Rollback restores the displaced incumbent.
    let rolled = adapt.rollback(&engine).expect("a swap happened");
    assert_eq!(rolled, 3);
    assert_eq!(engine.registry().current().label, "untrained");
    assert_eq!(adapt.report().rollbacks, 1);
    assert_eq!(adapt.rollback(&engine), None, "nothing left to roll back");
}

#[test]
fn failed_gate_leaves_serving_model_untouched() {
    let lab = Arc::new(demo_training_dataset());
    let mut config = adaptation_config(0);
    // An impassable gate: a candidate would need MAE strictly below zero.
    config.gate.min_improvement = 1.0;
    let mut adapt = AdaptationEngine::new(config, lab);
    let (engine, outcomes) = run_session(&mut adapt, 0, 400);

    let rejected = outcomes
        .iter()
        .find(|o| matches!(o, AdaptOutcome::Rejected { .. }))
        .expect("the round must run and be rejected");
    let AdaptOutcome::Rejected {
        incumbent_mae,
        best_candidate_mae,
        ..
    } = rejected
    else {
        unreachable!()
    };
    assert!(incumbent_mae.is_finite() && best_candidate_mae.is_finite());
    // The serving model never changed: same registry version, same label,
    // and no swap recorded.
    assert_eq!(engine.registry().version(), 1);
    assert_eq!(engine.registry().current().label, "untrained");
    let report = adapt.report();
    assert_eq!(report.gate_failures, 1);
    assert_eq!((report.swaps, report.gate_passes), (0, 0));
    assert!(!outcomes
        .iter()
        .any(|o| matches!(o, AdaptOutcome::Promoted { .. })));
}

#[test]
fn adapt_loop_is_bit_identical_across_worker_counts() {
    let lab = Arc::new(demo_training_dataset());
    let mut fingerprints = Vec::new();
    for workers in [0usize, 2] {
        let mut adapt = AdaptationEngine::new(adaptation_config(workers), Arc::clone(&lab));
        let (engine, outcomes) = run_session(&mut adapt, workers, 300);
        let model = engine.registry().current();
        let fingerprint = (
            serde_json::to_string(&*model).expect("serializable"),
            serde_json::to_string(&outcomes).expect("serializable"),
            serde_json::to_string(&adapt.report()).expect("serializable"),
            engine.registry().version(),
        );
        fingerprints.push(fingerprint);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "adaptation loop must be bit-identical across worker counts"
    );
}

#[test]
fn promotion_with_quantize_config_installs_gated_int8_shadow() {
    let lab = Arc::new(demo_training_dataset());
    let mut config = adaptation_config(0);
    config.quantize = Some(QuantizeConfig {
        // The promoted network's suite MAE is clamp-dominated at this
        // training budget, so (as in the scenario-level gate tests) a
        // small absolute band is the meaningful check.
        tolerance: pinnsoc_fleet::GateTolerance {
            rel: 0.05,
            abs: 0.02,
        },
        calibration_rows: 256,
    });
    let mut adapt = AdaptationEngine::new(config, lab);
    let (mut engine, outcomes) = run_session(&mut adapt, 0, 400);

    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, AdaptOutcome::Promoted { .. })),
        "drift on an untrained network must promote a candidate"
    );
    // The quantize follow-up is its own event at the promotion tick.
    let followup = adapt
        .events()
        .iter()
        .find(|e| {
            matches!(
                e.outcome,
                AdaptOutcome::QuantizedInstalled { .. }
                    | AdaptOutcome::QuantizedRejected { .. }
                    | AdaptOutcome::QuantizedSkipped { .. }
            )
        })
        .expect("a promotion with quantize configured runs a quantize round");
    let AdaptOutcome::QuantizedInstalled {
        version,
        incumbent_mae,
        quantized_mae,
    } = &followup.outcome
    else {
        panic!("well-calibrated int8 build should pass: {:?}", followup);
    };
    assert_eq!(*version, 2, "shadow installs under the promoted version");
    assert!(incumbent_mae.is_finite() && quantized_mae.is_finite());
    assert_eq!(adapt.report().quantize_gate_passes, 1);
    assert_eq!(adapt.report().quantize_gate_failures, 0);

    // The registry now serves the promoted f32 model with its certified
    // int8 shadow; the shadow was quantized from exactly that model.
    let snapshot = engine.registry().snapshot();
    let shadow = snapshot.quantized.expect("shadow installed");
    assert_eq!(
        shadow.fingerprint(),
        pinnsoc::model_fingerprint(&snapshot.model)
    );

    // A later f32 promotion (here: rollback, same registry path) evicts
    // the shadow — a certificate never outlives its incumbent.
    adapt.rollback(&engine).expect("a swap happened");
    assert!(engine.registry().snapshot().quantized.is_none());
    engine.process_pending();
}

#[test]
fn impassable_quantize_gate_leaves_serving_f32_only() {
    let lab = Arc::new(demo_training_dataset());
    let mut config = adaptation_config(0);
    // rel 0 / abs 0 demands the int8 build match f32 exactly — impossible.
    config.quantize = Some(QuantizeConfig {
        tolerance: pinnsoc_fleet::GateTolerance { rel: 0.0, abs: 0.0 },
        calibration_rows: 256,
    });
    let mut adapt = AdaptationEngine::new(config, lab);
    let (engine, _) = run_session(&mut adapt, 0, 400);

    let followup = adapt
        .events()
        .iter()
        .find_map(|e| match &e.outcome {
            AdaptOutcome::QuantizedRejected {
                incumbent_mae,
                quantized_mae,
            } => Some((*incumbent_mae, *quantized_mae)),
            _ => None,
        })
        .expect("the int8 build must be rejected by the exact-match gate");
    assert!(followup.0.is_finite() && followup.1.is_finite());
    assert_eq!(adapt.report().quantize_gate_failures, 1);
    assert_eq!(adapt.report().quantize_gate_passes, 0);
    // No certificate, no shadow: the registry stays f32-only.
    assert!(engine.registry().snapshot().quantized.is_none());
}
