//! End-to-end integration test on the LG-like dataset: drive-cycle data
//! generation, training, horizon generalization, and autoregressive
//! rollout.

use pinnsoc::{autoregressive_rollout, eval_prediction, train, PinnVariant, TrainConfig};
use pinnsoc_data::{generate_lg, LgConfig, NoiseConfig};

fn dataset() -> pinnsoc_data::SocDataset {
    generate_lg(&LgConfig {
        train_mixed: 3,
        train_temps_c: vec![10.0, 25.0],
        test_temps_c: vec![25.0],
        mixed_segments: 3,
        noise: NoiseConfig::default(),
        ..LgConfig::default()
    })
}

fn config(variant: PinnVariant, seed: u64) -> TrainConfig {
    TrainConfig {
        b1_epochs: 10,
        b2_epochs: 8,
        ..TrainConfig::lg(variant, seed)
    }
}

#[test]
fn lg_split_matches_paper_protocol() {
    let ds = dataset();
    assert_eq!(ds.train.len(), 3);
    assert_eq!(ds.test.len(), 5); // 4 schedules + MIXED at one temperature
    for c in &ds.train {
        assert!(c.final_soc() < 0.15, "{} is not a full discharge", c.meta);
    }
}

#[test]
fn pinn_beats_no_pinn_at_the_longest_horizon() {
    let ds = dataset();
    let mut no_pinn = 0.0;
    let mut pinn = 0.0;
    for seed in 0..2 {
        no_pinn += eval_prediction(
            &train(&ds, &config(PinnVariant::NoPinn, seed)).0,
            &ds.test,
            70.0,
        )
        .mae;
        pinn += eval_prediction(
            &train(
                &ds,
                &config(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), seed),
            )
            .0,
            &ds.test,
            70.0,
        )
        .mae;
    }
    assert!(
        pinn < no_pinn,
        "PINN-All at 70s ({:.4}) should beat No-PINN ({:.4})",
        pinn / 2.0,
        no_pinn / 2.0
    );
}

#[test]
fn rollout_tracks_a_full_discharge() {
    let ds = dataset();
    let (model, _) = train(&ds, &config(PinnVariant::pinn_single(30.0), 4));
    let cycle = &ds.test[0];
    let rollout = autoregressive_rollout(&model, cycle, 30.0);
    assert!(
        rollout.steps() > 20,
        "rollout too short: {} steps",
        rollout.steps()
    );
    // Paper Fig. 5: trajectories drift but stay in a sane band; we check the
    // trajectory MAE rather than the (noisier) final point.
    assert!(
        rollout.trajectory_mae() < 0.35,
        "trajectory MAE {:.3} out of band",
        rollout.trajectory_mae()
    );
    // Predictions must actually descend (it is a discharge).
    let first = rollout.predicted.first().unwrap();
    let last = rollout.predicted.last().unwrap();
    assert!(last < first, "rollout did not discharge: {first} -> {last}");
}

#[test]
fn branch2_horizon_input_matters_after_pinn_training() {
    // With physics over multiple horizons, the network must use its N input:
    // a longer horizon at the same current must shed more charge.
    let ds = dataset();
    let (model, _) = train(&ds, &config(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), 5));
    let s30 = model.predict_from(0.8, 6.0, 25.0, 30.0);
    let s70 = model.predict_from(0.8, 6.0, 25.0, 70.0);
    assert!(
        s70 < s30 - 0.01,
        "70s under 2C ({s70:.4}) should be well below 30s ({s30:.4})"
    );
}

#[test]
fn temperature_affects_lg_test_difficulty() {
    // Table I: 0 °C rows have higher MAE than 25 °C rows.
    let ds = generate_lg(&LgConfig {
        train_mixed: 3,
        train_temps_c: vec![0.0, 10.0, 25.0],
        test_temps_c: vec![0.0, 25.0],
        mixed_segments: 3,
        ..LgConfig::default()
    });
    let (model, _) = train(&ds, &config(PinnVariant::NoPinn, 6));
    let cold: Vec<_> = ds.test_at_temperature(0.0).into_iter().cloned().collect();
    let warm: Vec<_> = ds.test_at_temperature(25.0).into_iter().cloned().collect();
    let cold_mae = eval_prediction(&model, &cold, 30.0).mae;
    let warm_mae = eval_prediction(&model, &warm, 30.0).mae;
    assert!(
        cold_mae > warm_mae * 0.8,
        "cold ({cold_mae:.4}) should not be dramatically easier than warm ({warm_mae:.4})"
    );
}
