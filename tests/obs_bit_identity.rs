//! Property test for the observability layer's core contract: attaching a
//! live [`ObsHub`] to a fleet engine and its riding adaptation engine
//! records real series **without changing a single bit** of what the
//! uninstrumented control computes — per-cell estimates, adaptation
//! outcomes, events, and reports — at worker counts 0 and 2 alike.
//!
//! The sessions are real closed loops: ground-truth simulators feed the
//! engine drifted telemetry, the adaptation engine harvests and (when the
//! reservoir fills) fine-tunes, gates, and swaps. The property varies the
//! fleet size, session length, load shape, and harvest seed.

use pinnsoc_adapt::{
    AdaptOutcome, AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig, HarvestConfig,
};
use pinnsoc_battery::{CellParams, CellSim, Soc};
use pinnsoc_bench::demo_training_dataset;
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry};
use pinnsoc_obs::ObsHub;
use pinnsoc_scenario::{gate_suite, EngineSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// One sampled session shape.
#[derive(Debug, Clone)]
struct SessionCase {
    cells: u64,
    seconds: usize,
    base_current_a: f64,
    swing_a: f64,
    phase: f64,
    harvest_seed: u64,
}

fn session_case() -> impl Strategy<Value = SessionCase> {
    (
        4u64..=8,
        200usize..=400,
        2.0f64..3.0,
        1.0f64..2.5,
        0.3f64..1.2,
        0u64..1000,
    )
        .prop_map(
            |(cells, seconds, base_current_a, swing_a, phase, harvest_seed)| SessionCase {
                cells,
                seconds,
                base_current_a,
                swing_a,
                phase,
                harvest_seed,
            },
        )
}

fn adaptation_config(case: &SessionCase, workers: usize) -> AdaptationConfig {
    let suite = gate_suite(42)
        .into_iter()
        .map(|mut s| {
            s.population.cells = 4;
            s.timing.duration_s = 120.0;
            s
        })
        .collect();
    AdaptationConfig {
        drift: DriftConfig {
            window: 128,
            threshold: 0.05,
            min_samples: 32,
        },
        harvest: HarvestConfig {
            reservoir_capacity: 512,
            seed: case.harvest_seed,
            min_dt_s: 1.0,
            rated_capacity_ah: 3.0,
            ..HarvestConfig::default()
        },
        fine_tune: pinnsoc::TrainConfig {
            b1_epochs: 20,
            b2_epochs: 0,
            batch_size: 32,
            ..pinnsoc::TrainConfig::sandia(pinnsoc::PinnVariant::NoPinn, 0)
        },
        candidate_seeds: vec![1],
        gate: GateConfig {
            suite,
            runner_workers: workers,
            engine: EngineSpec {
                shards: 2,
                micro_batch: 16,
                workers,
            },
            min_improvement: 0.0,
        },
        train_workers: workers,
        lab_cycles: 1,
        min_reservoir: 64,
        cooldown_ticks: 50,
        quantize: None,
    }
}

/// Everything deterministic a session produces, bit-exact.
#[derive(Debug, PartialEq)]
struct SessionResult {
    estimate_bits: Vec<u64>,
    outcomes: Vec<AdaptOutcome>,
    fingerprint: String,
    ticks: u64,
}

/// Runs one closed-loop session; `hub` instruments both engines when set.
fn run_session(case: &SessionCase, workers: usize, hub: Option<&Arc<ObsHub>>) -> SessionResult {
    let params = CellParams::nmc_18650();
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: 2,
            micro_batch: 16,
            workers,
            ekf_fallback: Some(params.clone()),
            ..FleetConfig::default()
        },
    );
    let lab = Arc::new(demo_training_dataset());
    let mut adapt = AdaptationEngine::new(adaptation_config(case, workers), lab);
    if let Some(hub) = hub {
        engine.attach_obs(hub);
        adapt.attach_obs(hub);
    }
    let mut sims = Vec::new();
    for id in 0..case.cells {
        let initial = 0.95 - id as f64 * 0.02;
        engine.register(
            id,
            CellConfig {
                initial_soc: initial,
                capacity_ah: params.capacity_ah,
            },
        );
        sims.push(CellSim::new(params.clone(), Soc::clamped(initial), 25.0));
    }
    let mut outcomes = Vec::new();
    let mut ticks = 0u64;
    for t in 1..=case.seconds {
        for (i, sim) in sims.iter_mut().enumerate() {
            let current = case.base_current_a
                + case.swing_a * ((t as f64 / 25.0) + i as f64 * case.phase).sin();
            let rec = sim.step(current, 1.0);
            engine.ingest(
                i as u64,
                Telemetry {
                    time_s: t as f64,
                    voltage_v: rec.voltage_v,
                    current_a: rec.current_a,
                    temperature_c: rec.temperature_c,
                },
            );
        }
        if t % 10 == 0 {
            engine.process_pending();
            ticks += 1;
            outcomes.push(adapt.observe_tick(&engine));
        }
    }
    let estimate_bits = (0..case.cells)
        .map(|id| engine.estimate(id).expect("registered").0.to_bits())
        .collect();
    let promoted = adapt
        .promoted()
        .map(|m| serde_json::to_string(&**m).expect("serializable"))
        .unwrap_or_default();
    let events = serde_json::to_string(&adapt.events().to_vec()).expect("serializable");
    let report = serde_json::to_string(&adapt.report()).expect("serializable");
    SessionResult {
        estimate_bits,
        outcomes,
        fingerprint: format!("{promoted}|{events}|{report}"),
        ticks,
    }
}

proptest! {
    // Each case runs four full closed-loop sessions (control + observed,
    // at two worker counts) with a potential fine-tune round inside —
    // keep the case count low, the per-case coverage is deep.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn observed_sessions_are_bit_identical_to_controls(case in session_case()) {
        let mut results = Vec::new();
        for workers in [0usize, 2] {
            let control = run_session(&case, workers, None);
            let hub = ObsHub::new();
            let observed = run_session(&case, workers, Some(&hub));

            // The hub really was live: every engine tick and every adapt
            // tick landed in the registry.
            let snapshot = hub.snapshot();
            prop_assert_eq!(
                snapshot.metrics.counter_total("pinnsoc_fleet_ticks_total"),
                control.ticks,
                "fleet tick counter (workers {})", workers
            );
            prop_assert_eq!(
                snapshot.metrics.counter_total("pinnsoc_adapt_ticks_total"),
                control.outcomes.len() as u64,
                "adapt tick counter (workers {})", workers
            );

            // ...and recording changed nothing, bit for bit.
            prop_assert_eq!(&control, &observed, "workers {}", workers);
            results.push(control);
        }
        // The determinism contract holds across worker counts too, so the
        // instrumented runs above were compared against one true answer.
        prop_assert_eq!(&results[0], &results[1], "workers 0 vs 2");
    }
}
