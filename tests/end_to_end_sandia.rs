//! End-to-end integration test on the Sandia-like dataset: the full
//! pipeline from cell simulation through training to evaluation, checking
//! the paper's headline qualitative claims on a reduced configuration.

use pinnsoc::{eval_estimation, eval_prediction, train, PinnVariant, SecondStage, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, SandiaConfig};

fn dataset() -> pinnsoc_data::SocDataset {
    // Two ambient temperatures so the temperature feature has a usable
    // spread (test cycles self-heat well beyond any single training
    // temperature's within-cycle variation).
    generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![15.0, 35.0],
        cycles_per_condition: 2,
        ..SandiaConfig::default()
    })
}

fn config(variant: PinnVariant, seed: u64) -> TrainConfig {
    // The reduced dataset has few records, so use small batches and more
    // epochs to reach a comparable optimizer-step count to the full runs.
    TrainConfig {
        b1_epochs: 80,
        b2_epochs: 80,
        batch_size: 16,
        ..TrainConfig::sandia(variant, seed)
    }
}

#[test]
fn model_has_paper_architecture() {
    let ds = dataset();
    let (model, _) = train(&ds, &config(PinnVariant::NoPinn, 0));
    // §III-A: 2,322 trainable parameters ≈ 9 kB fp32.
    assert_eq!(model.param_count(), 2322);
    assert_eq!(model.cost().memory_bytes, 9288);
}

#[test]
fn pinn_generalizes_to_unseen_horizons_better_than_no_pinn() {
    // The paper's central claim (Fig. 3): with the physics loss, MAE at
    // horizons absent from the training data stays near the training-horizon
    // MAE, while the purely data-driven model degrades. Averaged over
    // 3 seeds to be robust.
    let ds = dataset();
    let mut no_pinn_360 = 0.0;
    let mut pinn_360 = 0.0;
    for seed in 0..3 {
        let (no_pinn, _) = train(&ds, &config(PinnVariant::NoPinn, seed));
        let (pinn, _) = train(
            &ds,
            &config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]), seed),
        );
        no_pinn_360 += eval_prediction(&no_pinn, &ds.test, 360.0).mae;
        pinn_360 += eval_prediction(&pinn, &ds.test, 360.0).mae;
    }
    assert!(
        pinn_360 < no_pinn_360 * 0.6,
        "PINN-All at the unseen 360s horizon ({:.4}) should be far below No-PINN ({:.4})",
        pinn_360 / 3.0,
        no_pinn_360 / 3.0
    );
}

#[test]
fn estimation_mae_is_reasonable_on_unseen_rates() {
    let ds = dataset();
    let (model, _) = train(&ds, &config(PinnVariant::NoPinn, 1));
    let report = eval_estimation(&model, &ds.test);
    // Test cycles are 2C/3C (unseen); the paper's Sandia numbers put the
    // total prediction error below 0.1, so estimation must be too.
    assert!(report.mae < 0.1, "estimation MAE {:.4}", report.mae);
}

#[test]
fn physics_only_matches_trained_pinn_at_single_step_on_lab_data() {
    // On constant-current data, Coulomb counting is nearly exact up to the
    // datasheet-vs-actual capacity mismatch; the trained PINN should be in
    // the same error band at the data horizon (and both well under No-PINN
    // at longer ones).
    let ds = dataset();
    let (physics, _) = train(&ds, &config(PinnVariant::PhysicsOnly, 2));
    assert!(matches!(physics.stage2, SecondStage::Coulomb { .. }));
    let (pinn, _) = train(
        &ds,
        &config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]), 2),
    );
    let p_mae = eval_prediction(&physics, &ds.test, 120.0).mae;
    let n_mae = eval_prediction(&pinn, &ds.test, 120.0).mae;
    assert!(
        (p_mae - n_mae).abs() < 0.05,
        "Physics-Only {p_mae:.4} and PINN {n_mae:.4} should be in the same band"
    );
}

#[test]
fn multi_chemistry_training_works() {
    // All three Sandia chemistries (different capacities!) in one model;
    // the physics loss must use per-cycle capacities.
    let ds = generate_sandia(&SandiaConfig {
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        ..SandiaConfig::default()
    });
    assert_eq!(ds.train.len(), 3);
    let (model, report) = train(&ds, &config(PinnVariant::pinn_all(&[120.0, 240.0]), 3));
    assert!(report.b2_loss.last().unwrap() < report.b2_loss.first().unwrap());
    let eval = eval_prediction(&model, &ds.test, 120.0);
    assert!(eval.mae < 0.2, "multi-chemistry MAE {:.4}", eval.mae);
}
