//! Model persistence: a trained model must survive a save/load round trip
//! bit-exactly, so a BMS can ship weights trained offline.

use pinnsoc::{train, PinnVariant, SocModel, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, SandiaConfig};
use pinnsoc_nn::{load_json, save_json};

fn trained_model(variant: PinnVariant) -> SocModel {
    let ds = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        ..SandiaConfig::default()
    });
    let config = TrainConfig {
        b1_epochs: 15,
        b2_epochs: 15,
        ..TrainConfig::sandia(variant, 9)
    };
    train(&ds, &config).0
}

#[test]
fn trained_network_roundtrips_through_disk() {
    let model = trained_model(PinnVariant::pinn_all(&[120.0, 240.0]));
    let dir = std::env::temp_dir().join("pinnsoc_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pinn_all.json");
    save_json(&model, &path).expect("save");
    let loaded: SocModel = load_json(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.label, model.label);
    assert_eq!(loaded.param_count(), model.param_count());
    for (v, i, t) in [(3.8, 2.0, 25.0), (3.2, 6.0, 15.0), (4.1, -1.5, 35.0)] {
        assert_eq!(model.estimate(v, i, t), loaded.estimate(v, i, t));
    }
    for (soc, i, t, n) in [(0.9, 3.0, 25.0, 120.0), (0.2, 9.0, 20.0, 360.0)] {
        assert_eq!(
            model.predict_from(soc, i, t, n),
            loaded.predict_from(soc, i, t, n)
        );
    }
}

#[test]
fn physics_only_model_roundtrips() {
    let model = trained_model(PinnVariant::PhysicsOnly);
    let json = serde_json::to_string(&model).expect("serialize");
    let loaded: SocModel = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(
        model.predict_from(0.7, 3.0, 25.0, 240.0),
        loaded.predict_from(0.7, 3.0, 25.0, 240.0)
    );
}

#[test]
fn persisted_model_is_small_enough_for_a_bms_flash_page_budget() {
    // §III-A argues the model fits a PMIC/BMS: the raw weights are ~9 kB;
    // even the debuggable JSON form must stay comfortably small.
    let model = trained_model(PinnVariant::NoPinn);
    let json = serde_json::to_string(&model).expect("serialize");
    assert!(
        json.len() < 200_000,
        "JSON model unexpectedly large: {} bytes",
        json.len()
    );
}
