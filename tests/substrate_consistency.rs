//! Cross-crate consistency: the dataset layer, cell simulator, drive-cycle
//! generator, and physics equation must agree with each other.

use pinnsoc_battery::{coulomb_predict, CellParams, CellSim, Soc};
use pinnsoc_cycles::{DriveSchedule, Vehicle};
use pinnsoc_data::{
    generate_lg, generate_sandia, prediction_pairs, LgConfig, NoiseConfig, SandiaConfig,
};

#[test]
fn dataset_ground_truth_equals_current_integral() {
    // The SoC label in every generated record must be the exact Coulomb
    // integral of the *true* (noise-free) applied current over the true
    // capacity. Verify on a noise-free Sandia cycle.
    let ds = generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        true_capacity_factor: 1.0,
        ..SandiaConfig::default()
    });
    let cycle = &ds.train[0];
    let capacity = cycle.meta.capacity_ah;
    for w in cycle.records.windows(2) {
        let dt = w[1].time_s - w[0].time_s;
        let from = Soc::clamped(w[0].soc);
        let predicted = coulomb_predict(from, w[0].current_a, dt, capacity);
        // Within the constant-current segments this must be exact; at the
        // discharge→charge transition the current changes mid-window, so
        // allow the corresponding slack.
        let err = (predicted.value() - w[1].soc).abs();
        let slack = if (w[0].current_a - w[1].current_a).abs() > 1e-9 {
            0.05
        } else {
            1e-6
        };
        assert!(
            err < slack,
            "Coulomb mismatch at t={}: {} vs {}",
            w[1].time_s,
            predicted.value(),
            w[1].soc
        );
    }
}

#[test]
fn window_averages_are_consistent_with_record_means() {
    let ds = generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nca],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    });
    let cycle = &ds.train[0];
    let pairs = prediction_pairs(cycle, 240.0);
    // Recompute one window average by hand.
    let p = &pairs[3];
    let manual = (cycle.records[4].current_a + cycle.records[5].current_a) / 2.0;
    assert!((p.avg_current_a - manual).abs() < 1e-12);
    assert_eq!(p.soc_now, cycle.records[3].soc);
    assert_eq!(p.soc_next, cycle.records[5].soc);
}

#[test]
fn drive_cycle_to_cell_chain_is_energetically_sane() {
    // Speed profile -> vehicle -> current -> cell: the energy drawn from the
    // cell must exceed the wheel energy divided by pack size (drivetrain
    // losses + aux), and the cell must deplete monotonically on average.
    let vehicle = Vehicle::compact_ev();
    let speeds = DriveSchedule::Hwfet.generate_with_dt(3, 0.1);
    let currents = vehicle.current_profile(&speeds);
    // Start below full so early regen cannot trip the charge cutoff (this
    // test exercises the raw simulator without the BMS regen clamp the LG
    // generator applies).
    let initial_soc = 0.9;
    let mut sim = CellSim::new(
        CellParams::lg_hg2(),
        Soc::new(initial_soc).expect("valid"),
        25.0,
    );
    let run = sim.run_profile(currents.currents().iter().copied(), 0.1, 10.0);
    let first = run.records.first().expect("records");
    let last = run.records.last().expect("records");
    assert!(last.soc < first.soc, "HWFET must net-discharge the cell");
    // Net charge from the profile equals the SoC drop times capacity.
    let expected_drop = currents.net_charge_ah() * (last.time_s - first.time_s + 10.0)
        / currents.duration_s()
        / sim.params().capacity_ah;
    let actual_drop = initial_soc - last.soc;
    assert!(
        (actual_drop - expected_drop).abs() < 0.05,
        "SoC drop {actual_drop:.3} vs integral {expected_drop:.3}"
    );
}

#[test]
fn lg_moving_average_reduces_measurement_variance() {
    let noisy = generate_lg(&LgConfig {
        train_mixed: 1,
        mixed_segments: 2,
        test_temps_c: vec![25.0],
        moving_avg_s: 1.0, // identity
        ..LgConfig::default()
    });
    let smoothed = generate_lg(&LgConfig {
        train_mixed: 1,
        mixed_segments: 2,
        test_temps_c: vec![25.0],
        moving_avg_s: 30.0,
        ..LgConfig::default()
    });
    let high_freq_power = |records: &[pinnsoc_battery::SimRecord]| -> f64 {
        records
            .windows(2)
            .map(|w| (w[1].current_a - w[0].current_a).powi(2))
            .sum::<f64>()
            / records.len() as f64
    };
    let raw = high_freq_power(&noisy.train[0].records);
    let smooth = high_freq_power(&smoothed.train[0].records);
    assert!(
        smooth < raw * 0.5,
        "30s moving average should halve sample-to-sample current power: {smooth} vs {raw}"
    );
}

#[test]
fn sandia_test_rates_produce_deeper_voltage_sag() {
    let ds = generate_sandia(&SandiaConfig {
        chemistries: vec![pinnsoc_battery::Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    });
    let min_v = |c: &pinnsoc_data::Cycle| {
        c.records
            .iter()
            .map(|r| r.voltage_v)
            .fold(f64::MAX, f64::min)
    };
    let mean_mid_v = |c: &pinnsoc_data::Cycle| {
        let mids: Vec<f64> = c
            .records
            .iter()
            .filter(|r| r.soc > 0.4 && r.soc < 0.6 && r.current_a > 0.0)
            .map(|r| r.voltage_v)
            .collect();
        mids.iter().sum::<f64>() / mids.len() as f64
    };
    let train_v = mean_mid_v(&ds.train[0]);
    let test3c = ds
        .test
        .iter()
        .find(|c| matches!(c.meta.kind, pinnsoc_data::CycleKind::Lab { discharge_c } if discharge_c == 3.0))
        .expect("3C cycle present");
    assert!(
        mean_mid_v(test3c) < train_v - 0.05,
        "3C mid-SoC voltage should sag well below 1C"
    );
    assert!(min_v(test3c) <= min_v(&ds.train[0]) + 0.05);
}
