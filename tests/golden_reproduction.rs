//! Golden paper-reproduction regression tests.
//!
//! These pin the Table-1 / Fig.-3 / Fig.-4 headline metrics — Sandia and LG
//! prediction MAE per PINN variant, plus the shared Branch-1 estimation MAE
//! — at seed 42 on the reduced end-to-end reproduction configurations, as
//! **exact bit patterns**. The trainer refactor in PR 3 had to be
//! golden-pinned after the fact; these tests make the whole reproduction
//! pipeline (dataset generation → training → evaluation) drift-proof up
//! front: any refactor that silently changes a single bit of the headline
//! numbers fails here.
//!
//! The values were captured at the commit that introduced this file. If a
//! *deliberate* numerical change lands (new RNG, retuned hyper-parameters),
//! regenerate them with:
//!
//! ```text
//! cargo test --release --test golden_reproduction -- --ignored --nocapture
//! ```
//!
//! and update the tables below, noting the reason in the commit message.

use pinnsoc::{eval_estimation, eval_prediction, train, PinnVariant, SocModel, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_lg, generate_sandia, LgConfig, NoiseConfig, SandiaConfig, SocDataset};

const SEED: u64 = 42;

/// The reduced Sandia-like protocol of `tests/end_to_end_sandia.rs`.
fn sandia_dataset() -> SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![15.0, 35.0],
        cycles_per_condition: 2,
        ..SandiaConfig::default()
    })
}

fn sandia_config(variant: PinnVariant) -> TrainConfig {
    TrainConfig {
        b1_epochs: 80,
        b2_epochs: 80,
        batch_size: 16,
        ..TrainConfig::sandia(variant, SEED)
    }
}

/// The reduced LG-like protocol of `tests/end_to_end_lg.rs`.
fn lg_dataset() -> SocDataset {
    generate_lg(&LgConfig {
        train_mixed: 3,
        train_temps_c: vec![10.0, 25.0],
        test_temps_c: vec![25.0],
        mixed_segments: 3,
        noise: NoiseConfig::default(),
        ..LgConfig::default()
    })
}

fn lg_config(variant: PinnVariant) -> TrainConfig {
    TrainConfig {
        b1_epochs: 10,
        b2_epochs: 8,
        ..TrainConfig::lg(variant, SEED)
    }
}

/// One pinned variant: prediction MAE bits at the three figure horizons.
struct GoldenVariant {
    variant: PinnVariant,
    mae_bits: [u64; 3],
}

/// Fig. 3 shape on the reduced Sandia protocol: the purely data-driven
/// model degrades hard at the unseen 240 s / 360 s horizons while the
/// physics-informed variants stay flat — the paper's central claim.
fn sandia_variants() -> Vec<GoldenVariant> {
    vec![
        GoldenVariant {
            variant: PinnVariant::NoPinn,
            // 0.054375 / 0.136901 / 0.252127
            mae_bits: [0x3fabd6fa9f8bddf3, 0x3fc185fa157e4c3a, 0x3fd022d77b56c655],
        },
        GoldenVariant {
            variant: PinnVariant::PhysicsOnly,
            // 0.066600 / 0.067783 / 0.069102
            mae_bits: [0x3fb10cbabf6a25f4, 0x3fb15a3b6d688d03, 0x3fb1b0a7edc751a4],
        },
        GoldenVariant {
            variant: PinnVariant::pinn_all(&[120.0, 240.0, 360.0]),
            // 0.066723 / 0.075162 / 0.076969
            mae_bits: [0x3fb114c44348a0a0, 0x3fb33dcbd501dc63, 0x3fb3b4428c2863f9],
        },
    ]
}

/// Fig. 4 shape on the reduced LG protocol (same story at 30/50/70 s).
fn lg_variants() -> Vec<GoldenVariant> {
    vec![
        GoldenVariant {
            variant: PinnVariant::NoPinn,
            // 0.023189 / 0.101702 / 0.214819
            mae_bits: [0x3f97bec1844fb02b, 0x3fba0922857e00e9, 0x3fcb7f2de9e24c19],
        },
        GoldenVariant {
            variant: PinnVariant::PhysicsOnly,
            // 0.019007 / 0.019101 / 0.019245
            mae_bits: [0x3f93768c1270edfc, 0x3f938f43bf7982c4, 0x3f93b4f6f1ea82a1],
        },
        GoldenVariant {
            variant: PinnVariant::pinn_all(&[30.0, 50.0, 70.0]),
            // 0.025045 / 0.020145 / 0.023911
            mae_bits: [0x3f99a562b6d7daad, 0x3f94a0f24b7010c1, 0x3f987c0034cd8b23],
        },
    ]
}

/// Branch-1 estimation MAE bits (identical across variants: Branch 1 trains
/// from the same RNG stream before any variant-specific step).
const SANDIA_ESTIMATION_MAE_BITS: u64 = 0x3fb0b4be050690a7; // 0.065258
const LG_ESTIMATION_MAE_BITS: u64 = 0x3f936c146f0e0894; // 0.018967

fn check_dataset(
    label: &str,
    dataset: &SocDataset,
    horizons: [f64; 3],
    variants: &[GoldenVariant],
    make_config: impl Fn(PinnVariant) -> TrainConfig,
    estimation_bits: u64,
) {
    let mut estimation_checked = false;
    for golden in variants {
        let (model, _) = train(dataset, &make_config(golden.variant.clone()));
        if !estimation_checked && !matches!(golden.variant, PinnVariant::PhysicsOnly) {
            let est = eval_estimation(&model, &dataset.test);
            assert_eq!(
                est.mae.to_bits(),
                estimation_bits,
                "{label} estimation MAE drifted: {:.6} (bits 0x{:016x})",
                est.mae,
                est.mae.to_bits()
            );
            estimation_checked = true;
        }
        for (h, &expected) in horizons.iter().zip(&golden.mae_bits) {
            let report = eval_prediction(&model, &dataset.test, *h);
            assert_eq!(
                report.mae.to_bits(),
                expected,
                "{label} {} MAE at {h}s drifted: {:.6} (bits 0x{:016x})",
                model.label,
                report.mae,
                report.mae.to_bits()
            );
        }
    }
}

#[test]
fn golden_sandia_headline_metrics_at_seed_42() {
    check_dataset(
        "Sandia",
        &sandia_dataset(),
        [120.0, 240.0, 360.0],
        &sandia_variants(),
        sandia_config,
        SANDIA_ESTIMATION_MAE_BITS,
    );
}

#[test]
fn golden_lg_headline_metrics_at_seed_42() {
    check_dataset(
        "LG",
        &lg_dataset(),
        [30.0, 50.0, 70.0],
        &lg_variants(),
        lg_config,
        LG_ESTIMATION_MAE_BITS,
    );
}

/// Regeneration helper (ignored): prints the current bit patterns in the
/// exact shape of the tables above.
#[test]
#[ignore = "regenerates the golden tables; run with --ignored --nocapture"]
fn print_golden_values() {
    let print = |label: &str,
                 dataset: &SocDataset,
                 horizons: [f64; 3],
                 variants: &[GoldenVariant],
                 make_config: &dyn Fn(PinnVariant) -> TrainConfig| {
        let mut estimation: Option<SocModel> = None;
        for golden in variants {
            let (model, _) = train(dataset, &make_config(golden.variant.clone()));
            let bits: Vec<String> = horizons
                .iter()
                .map(|h| {
                    let report = eval_prediction(&model, &dataset.test, *h);
                    format!("0x{:016x} /* {:.6} */", report.mae.to_bits(), report.mae)
                })
                .collect();
            println!("{label} {}: mae_bits: [{}]", model.label, bits.join(", "));
            if estimation.is_none() && !matches!(golden.variant, PinnVariant::PhysicsOnly) {
                estimation = Some(model);
            }
        }
        let est = eval_estimation(
            estimation.as_ref().expect("non-physics variant"),
            &dataset.test,
        );
        println!(
            "{label} estimation: 0x{:016x} /* {:.6} */",
            est.mae.to_bits(),
            est.mae
        );
    };
    print(
        "Sandia",
        &sandia_dataset(),
        [120.0, 240.0, 360.0],
        &sandia_variants(),
        &sandia_config,
    );
    print(
        "LG",
        &lg_dataset(),
        [30.0, 50.0, 70.0],
        &lg_variants(),
        &lg_config,
    );
}
